"""LFU replacement (least frequently used), with LRU tie-breaking.

Not part of the paper's evaluation quartet, but a classic frequency-based
policy that exercises a different corner of the virtual-order API: victim
order is (access count, recency), so ACE's Writer sees an eviction order
that can change wholesale after a single hit.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["LFUPolicy"]


class LFUPolicy(ReplacementPolicy):
    """Least Frequently Used with least-recently-used tie-breaking."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        # Insertion/access order doubles as the recency tie-breaker:
        # earlier = less recently used.
        self._order: OrderedDict[int, None] = OrderedDict()
        self._frequency: dict[int, int] = {}

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already tracked")
        self._order[page] = None
        if cold:
            self._order.move_to_end(page, last=False)
        # Cold (prefetched) pages start at frequency 0: first to go.
        self._frequency[page] = 0 if cold else 1

    def remove(self, page: int) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        del self._order[page]
        del self._frequency[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        self._frequency[page] += 1
        self._order.move_to_end(page)

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> list[int]:
        return list(self._order)

    def frequency(self, page: int) -> int:
        """Access count of a tracked page (diagnostics/tests)."""
        return self._frequency[page]

    # -- decisions ---------------------------------------------------------

    def _ranked(self) -> list[int]:
        """Pages by (frequency, recency): the LFU virtual order."""
        recency = {page: index for index, page in enumerate(self._order)}
        return sorted(
            self._order,
            key=lambda page: (self._frequency[page], recency[page]),
        )

    def select_victim(self) -> int | None:
        for page in self._ranked():
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        for page in self._ranked():
            if not self._view.is_pinned(page):
                yield page
