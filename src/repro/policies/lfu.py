"""LFU replacement (least frequently used), with LRU tie-breaking.

Not part of the paper's evaluation quartet, but a classic frequency-based
policy that exercises a different corner of the virtual-order API: victim
order is (access count, recency), so ACE's Writer sees an eviction order
that can change wholesale after a single hit.

Recency is tracked with a monotonic tick counter rather than list
positions: every insert/access stamps the page with the next tick, and cold
(prefetched) inserts take decreasing negative ticks so they rank before all
current residents — the same total order an ordered list would give, with
O(1) updates and no per-call position scan.  ``select_victim`` is a single
min-scan; ``eviction_order`` lazily pops a heap, so ACE's ``next_dirty(n)``
costs O(pool + consumed·log pool) instead of a full sort per call.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["LFUPolicy"]


class LFUPolicy(ReplacementPolicy):
    """Least Frequently Used with least-recently-used tie-breaking."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        # page -> recency stamp: larger = more recently used.  Stamps are
        # unique, so (frequency, stamp) is a total order.
        self._recency: dict[int, int] = {}
        self._frequency: dict[int, int] = {}
        self._tick = 0
        self._cold_tick = 0

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._recency:
            raise ValueError(f"page {page} already tracked")
        if cold:
            # Eviction end: less recent than every current resident, and
            # each successive cold insert colder than the last.
            self._cold_tick -= 1
            self._recency[page] = self._cold_tick
        else:
            self._tick += 1
            self._recency[page] = self._tick
        # Cold (prefetched) pages start at frequency 0: first to go.
        self._frequency[page] = 0 if cold else 1

    def remove(self, page: int) -> None:
        if page not in self._recency:
            raise KeyError(f"page {page} not tracked")
        del self._recency[page]
        del self._frequency[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page not in self._recency:
            raise KeyError(f"page {page} not tracked")
        self._frequency[page] += 1
        self._tick += 1
        self._recency[page] = self._tick

    def __contains__(self, page: int) -> bool:
        return page in self._recency

    def __len__(self) -> int:
        return len(self._recency)

    def pages(self) -> list[int]:
        return list(self._recency)

    def frequency(self, page: int) -> int:
        """Access count of a tracked page (diagnostics/tests)."""
        return self._frequency[page]

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        if not self._recency:
            return None
        frequency = self._frequency
        recency = self._recency
        victim = min(
            recency, key=lambda page: (frequency[page], recency[page])
        )
        if not self._view.is_pinned(victim):
            return victim
        # Rare path: the overall minimum is pinned — walk the full order.
        for page in self.eviction_order():
            return page
        return None

    def eviction_order(self) -> Iterator[int]:
        frequency = self._frequency
        recency = self._recency
        heap = [
            (frequency[page], recency[page], page) for page in recency
        ]
        heapq.heapify(heap)
        is_pinned = self._view.is_pinned
        pop = heapq.heappop
        while heap:
            _, _, page = pop(heap)
            if not is_pinned(page):
                yield page
