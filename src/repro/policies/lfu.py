"""LFU replacement (least frequently used), with LRU tie-breaking.

Not part of the paper's evaluation quartet, but a classic frequency-based
policy that exercises a different corner of the virtual-order API: victim
order is (access count, recency), so ACE's Writer sees an eviction order
that can change wholesale after a single hit.

Recency is tracked with a monotonic tick counter rather than list
positions: every insert/access stamps the page with the next tick, and cold
(prefetched) inserts take decreasing negative ticks so they rank before all
current residents — the same total order an ordered list would give, with
O(1) updates and no per-call position scan.

The order itself is kept in a *lazy min-heap*: each insert/access pushes
the page's fresh ``(frequency, recency, page)`` stamp and leaves the old
entry behind as garbage.  Recency ticks are unique and never reused, so an
entry is live iff its recency matches the page's current stamp — stale
entries are skipped on the way down, and the heap is compacted whenever
the garbage outweighs the live entries.  ``select_victim`` prunes stale
entries in place (it is the stateful call); the
``peek``/``next_dirty``/``next_clean`` bulk reads pop a shallow copy of
the maintained heap, so they stay pure while avoiding the reference
path's per-call stamp-tuple rebuild.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["LFUPolicy"]


class LFUPolicy(ReplacementPolicy):
    """Least Frequently Used with least-recently-used tie-breaking."""

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        # page -> recency stamp: larger = more recently used.  Stamps are
        # unique, so (frequency, stamp) is a total order.
        self._recency: dict[int, int] = {}
        self._frequency: dict[int, int] = {}
        self._tick = 0
        self._cold_tick = 0
        # Lazy min-heap of (frequency, recency, page) stamps.  Contains the
        # current stamp of every tracked page plus stale garbage; an entry
        # is live iff its recency equals the page's current stamp.
        self._heap: list[tuple[int, int, int]] = []

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._recency:
            raise ValueError(f"page {page} already tracked")
        if cold:
            # Eviction end: less recent than every current resident, and
            # each successive cold insert colder than the last.
            self._cold_tick -= 1
            self._recency[page] = self._cold_tick
        else:
            self._tick += 1
            self._recency[page] = self._tick
        # Cold (prefetched) pages start at frequency 0: first to go.
        frequency = 0 if cold else 1
        self._frequency[page] = frequency
        self._push(frequency, self._recency[page], page)

    def remove(self, page: int) -> None:
        if page not in self._recency:
            raise KeyError(f"page {page} not tracked")
        del self._recency[page]
        del self._frequency[page]
        # The heap entry goes stale and is skipped/compacted later.

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page not in self._recency:
            raise KeyError(f"page {page} not tracked")
        frequency = self._frequency[page] + 1
        self._frequency[page] = frequency
        self._tick += 1
        self._recency[page] = self._tick
        self._push(frequency, self._tick, page)

    def __contains__(self, page: int) -> bool:
        return page in self._recency

    def __len__(self) -> int:
        return len(self._recency)

    def pages(self) -> list[int]:
        return list(self._recency)

    def frequency(self, page: int) -> int:
        """Access count of a tracked page (diagnostics/tests)."""
        return self._frequency[page]

    # -- heap maintenance --------------------------------------------------

    def _push(self, frequency: int, recency: int, page: int) -> None:
        heap = self._heap
        heapq.heappush(heap, (frequency, recency, page))
        if len(heap) > 2 * len(self._recency) + 64:
            self._compact()

    def _compact(self) -> None:
        frequency = self._frequency
        recency = self._recency
        self._heap = [
            (frequency[page], stamp, page) for page, stamp in recency.items()
        ]
        heapq.heapify(self._heap)

    def _pop_live(self, n: int, want) -> list[int]:
        """Up to ``n`` live unpinned pages satisfying ``want``, heap order.

        Pops a shallow *copy* of the maintained heap (a copy of a heap is
        still a heap), skipping stale entries on the way down.  The
        maintained heap itself is untouched, so the bulk reads inherit
        ``eviction_order()``'s purity; the copy is a pointer memcpy,
        cheaper than rebuilding the stamp tuples per call as the reference
        does.
        """
        selected: list[int] = []
        if n == 0:
            return selected
        heap = self._heap.copy()
        recency = self._recency
        is_pinned = self._view.is_pinned
        pop = heapq.heappop
        while heap and len(selected) < n:
            _, stamp, page = pop(heap)
            if recency.get(page) != stamp:
                continue
            if not is_pinned(page) and (want is None or want(page)):
                selected.append(page)
        return selected

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        heap = self._heap
        recency = self._recency
        while heap:
            entry = heap[0]
            if recency.get(entry[2]) != entry[1]:
                heapq.heappop(heap)
                continue
            if not self._view.is_pinned(entry[2]):
                return entry[2]
            # Rare path: the overall minimum is pinned — walk the order.
            for page in self.eviction_order():
                return page
            return None
        return None

    def eviction_order(self) -> Iterator[int]:
        frequency = self._frequency
        recency = self._recency
        heap = [
            (frequency[page], recency[page], page) for page in recency
        ]
        heapq.heapify(heap)
        is_pinned = self._view.is_pinned
        pop = heapq.heappop
        while heap:
            _, _, page = pop(heap)
            if not is_pinned(page):
                yield page

    # -- maintained fast paths ---------------------------------------------
    #
    # The heap is maintained regardless of view notifications (membership
    # and stamps are policy-internal), so these paths are always on; pin
    # and dirty state are read through the view per live entry, exactly as
    # the reference does.

    def peek(self, n: int) -> list[int]:
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        return self._pop_live(n, None)

    def next_dirty(self, n: int) -> list[int]:
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        return self._pop_live(n, self._view.is_dirty)

    def next_clean(self, n: int) -> list[int]:
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        is_dirty = self._view.is_dirty
        return self._pop_live(n, lambda page: not is_dirty(page))
