"""Clock Sweep replacement — PostgreSQL's default algorithm.

Pages sit on a circular list with a usage count; the candidate hand rotates
clockwise.  If the candidate unpinned page's usage count is zero it becomes
the victim, otherwise its count is decremented and the hand moves on (paper
Figure 4a).  PostgreSQL caps usage counts at 5 and sets a freshly loaded
buffer's count to 1; we keep both conventions.

The ring is an append-only slot array with a free-slot list, so the hand's
position is stable across insertions and removals (like PostgreSQL's fixed
buffer array indexed by ``buffer_id``).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["ClockSweepPolicy"]

#: PostgreSQL's BM_MAX_USAGE_COUNT.
MAX_USAGE_COUNT = 5


class ClockSweepPolicy(ReplacementPolicy):
    """Clock Sweep with usage counts (a.k.a. generalised second chance)."""

    name = "clock"

    def __init__(self, max_usage: int = MAX_USAGE_COUNT) -> None:
        super().__init__()
        if max_usage < 1:
            raise ValueError("max usage count must be at least 1")
        self.max_usage = max_usage
        self._slots: list[int | None] = []
        self._slot_of: dict[int, int] = {}
        self._usage: dict[int, int] = {}
        self._free_slots: list[int] = []
        self._hand = 0

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._slot_of:
            raise ValueError(f"page {page} already tracked")
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slots[slot] = page
        else:
            slot = len(self._slots)
            self._slots.append(page)
        self._slot_of[page] = slot
        # A cold insert starts at usage 0, making the page an immediate
        # eviction candidate when the hand reaches it.
        self._usage[page] = 0 if cold else 1

    def remove(self, page: int) -> None:
        slot = self._slot_of.pop(page, None)
        if slot is None:
            raise KeyError(f"page {page} not tracked")
        self._slots[slot] = None
        self._free_slots.append(slot)
        del self._usage[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page not in self._usage:
            raise KeyError(f"page {page} not tracked")
        usage = self._usage[page]
        if usage < self.max_usage:
            self._usage[page] = usage + 1

    def __contains__(self, page: int) -> bool:
        return page in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def pages(self) -> list[int]:
        return list(self._slot_of)

    def usage_count(self, page: int) -> int:
        """Current usage count of ``page`` (for tests/diagnostics)."""
        return self._usage[page]

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        """Sweep the hand until a page with usage count 0 is found.

        Decrements usage counts along the way (this is the stateful side of
        Clock Sweep).  Pinned pages are skipped without decrementing, as in
        PostgreSQL.  Returns ``None`` if every page is pinned.
        """
        if not self._slot_of:
            return None
        total_slots = len(self._slots)
        # One decrement pass over all pages suffices: after at most
        # (max_usage * pages) steps some usage count reaches zero.
        max_steps = total_slots * (self.max_usage + 1)
        for _ in range(max_steps):
            slot = self._hand
            self._hand = (self._hand + 1) % total_slots
            page = self._slots[slot]
            if page is None or self._view.is_pinned(page):
                continue
            if self._usage[page] == 0:
                return page
            self._usage[page] -= 1
        return None

    def eviction_order(self) -> Iterator[int]:
        """Simulate the sweep on an overlay of the usage counts (pure).

        Yields pages in the order successive victims would be chosen,
        assuming no intervening accesses — the policy's virtual order.
        The simulated decrements go into a local overlay consulted before
        the live counts, so consumers that take only the first few pages
        pay for the slots the hand actually visited, not an O(pool) copy
        of the usage table per call.
        """
        if not self._slot_of:
            return
        usage = self._usage
        overlay: dict[int, int] = {}
        total_slots = len(self._slots)
        tracked = len(self._slot_of)
        hand = self._hand
        # Lazily discovered page states: consumers typically take only the
        # first few pages, so pinned checks are memoised on first touch
        # instead of pre-scanning the whole ring.
        done: set[int] = set()
        pinned: set[int] = set()
        is_pinned = self._view.is_pinned
        guard = total_slots * (self.max_usage + 2) * max(tracked, 1)
        steps = 0
        while len(done) + len(pinned) < tracked and steps < guard:
            steps += 1
            slot = hand
            hand = (hand + 1) % total_slots
            page = self._slots[slot]
            if page is None or page in done or page in pinned:
                continue
            if is_pinned(page):
                pinned.add(page)
                continue
            count = overlay.get(page)
            if count is None:
                count = usage[page]
            if count == 0:
                yield page
                done.add(page)
            else:
                overlay[page] = count - 1
