"""Adaptive Replacement Cache (Megiddo & Modha, FAST 2003) — paper §III-A.

ARC balances recency and frequency with four lists:

* ``T1``: resident pages seen once recently (recency side);
* ``T2``: resident pages seen at least twice (frequency side);
* ``B1`` / ``B2``: ghost lists remembering identifiers recently evicted
  from ``T1`` / ``T2``;
* an adaptation parameter ``p`` — the target size of ``T1`` — nudged up on
  ``B1`` ghost hits and down on ``B2`` ghost hits.

The canonical algorithm is phrased as a single ``request(x)`` operation; we
decompose it onto the insert / on_access / select_victim / remove lifecycle
used by the buffer manager, preserving the adaptation and replacement rules.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from itertools import islice

from repro.policies.base import ReplacementPolicy

__all__ = ["ARCPolicy"]


class ARCPolicy(ReplacementPolicy):
    """ARC with ghost-list driven adaptation of the recency target ``p``."""

    name = "arc"

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 2:
            raise ValueError("ARC needs capacity of at least 2")
        self.capacity = capacity
        self.p = 0.0  # target size of T1, adapted online
        self._t1: OrderedDict[int, None] = OrderedDict()
        self._t2: OrderedDict[int, None] = OrderedDict()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self:
            raise ValueError(f"page {page} already tracked")
        if cold:
            # Prefetched page: recency side, eviction end, no adaptation.
            self._t1[page] = None
            self._t1.move_to_end(page, last=False)
            self._trim_ghosts()
            return
        if page in self._b1:
            # Ghost hit in B1: the recency side was undersized.
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self.p = min(float(self.capacity), self.p + delta)
            del self._b1[page]
            self._t2[page] = None
        elif page in self._b2:
            # Ghost hit in B2: the frequency side was undersized.
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self.p = max(0.0, self.p - delta)
            del self._b2[page]
            self._t2[page] = None
        else:
            self._t1[page] = None
        self._trim_ghosts()

    def remove(self, page: int) -> None:
        if page in self._t1:
            del self._t1[page]
            self._b1[page] = None
        elif page in self._t2:
            del self._t2[page]
            self._b2[page] = None
        else:
            raise KeyError(f"page {page} not tracked")
        self._trim_ghosts()

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page in self._t1:
            del self._t1[page]
            self._t2[page] = None
        elif page in self._t2:
            self._t2.move_to_end(page)
        else:
            raise KeyError(f"page {page} not tracked")

    def _trim_ghosts(self) -> None:
        # Canonical ARC bounds: |T1|+|B1| <= c and |T1|+|T2|+|B1|+|B2| <= 2c.
        while self._b1 and len(self._t1) + len(self._b1) > self.capacity:
            self._b1.popitem(last=False)
        while self._b2 and (
            len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
            > 2 * self.capacity
        ):
            self._b2.popitem(last=False)

    def __contains__(self, page: int) -> bool:
        return page in self._t1 or page in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def pages(self) -> list[int]:
        return list(self._t1) + list(self._t2)

    def ghost_sizes(self) -> tuple[int, int]:
        """Sizes of (B1, B2) — diagnostics/tests."""
        return len(self._b1), len(self._b2)

    # -- decisions ---------------------------------------------------------

    def _replace_from_t1(self) -> bool:
        """ARC's REPLACE rule: evict from T1 when it exceeds target p."""
        if not self._t1:
            return False
        if not self._t2:
            return True
        return len(self._t1) > self.p

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            first, second = (
                (self._t1, self._t2)
                if self._replace_from_t1()
                else (self._t2, self._t1)
            )
            if first:
                return next(iter(first))
            return next(iter(second), None)
        queues = (
            (self._t1, self._t2) if self._replace_from_t1() else (self._t2, self._t1)
        )
        for queue in queues:
            for page in queue:
                if not self._view.is_pinned(page):
                    return page
        return None

    def eviction_order(self) -> Iterator[int]:
        if self._notified and not self._pinned_pages:
            # Nothing pinned: the unpinned lists are the queues themselves,
            # so the order streams lazily off the live OrderedDicts —
            # O(consumed) for ACE's short peeks instead of materialising
            # both queues per call.
            if self._replace_from_t1():
                overflow = max(1, len(self._t1) - int(self.p))
                t1_iter = iter(self._t1)
                yield from islice(t1_iter, overflow)
                yield from self._t2
                yield from t1_iter
            else:
                yield from self._t2
                yield from self._t1
            return
        t1 = [p for p in self._t1 if not self._view.is_pinned(p)]
        t2 = [p for p in self._t2 if not self._view.is_pinned(p)]
        if self._replace_from_t1():
            # T1 drains down to the target, then alternates with T2; the
            # static approximation yields the T1 overflow first.
            overflow = max(1, len(t1) - int(self.p))
            yield from t1[:overflow]
            yield from t2
            yield from t1[overflow:]
        else:
            yield from t2
            yield from t1
