"""FOR-inspired operation-aware replacement (paper §VII related work).

The paper cites FOR / FOR+ [40] as flash-friendly policies that weight
pages by the *operations* they absorb: evicting a dirty page costs a flash
write (``alpha`` reads worth of time), evicting a clean-but-hot page costs
future re-reads.  This module implements a simplified operation-aware
policy in that spirit:

* every page keeps exponentially-decayed read and write frequencies
  (decay per access, so old activity fades);
* a page's retention weight is ``read_freq + alpha * write_freq`` if it is
  dirty (re-dirtying is likely; evicting it costs a write now) and
  ``read_freq`` if clean;
* the victim is the page with the lowest weight, ties broken by recency.

Unlike CFLRU/LRU-WSR, which treat dirtiness as a binary hint, the weight
uses the device's measured asymmetry directly — so the policy itself is
storage-aware, and ACE composes with it like with any other policy (its
virtual order is just ascending weight).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["FORPolicy"]


class FORPolicy(ReplacementPolicy):
    """Operation-aware replacement with asymmetry-weighted frequencies."""

    name = "for"

    def __init__(self, alpha: float = 2.0, decay: float = 0.95) -> None:
        super().__init__()
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1: {alpha}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]: {decay}")
        self.alpha = alpha
        self.decay = decay
        self._order: OrderedDict[int, None] = OrderedDict()  # recency tie-break
        self._read_freq: dict[int, float] = {}
        self._write_freq: dict[int, float] = {}
        # Monotonic recency stamps (smaller = less recently used) replace
        # the per-call position enumeration the ranking used to build: the
        # stamps induce exactly the ``_order`` iteration order.
        self._stamp: dict[int, int] = {}
        self._tick = 0
        self._cold_tick = 0

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already tracked")
        self._order[page] = None
        if cold:
            self._order.move_to_end(page, last=False)
            self._cold_tick -= 1
            self._stamp[page] = self._cold_tick
        else:
            self._tick += 1
            self._stamp[page] = self._tick
        self._read_freq[page] = 0.0 if cold else 1.0
        self._write_freq[page] = 0.0

    def remove(self, page: int) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        del self._order[page]
        del self._read_freq[page]
        del self._write_freq[page]
        del self._stamp[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        self._order.move_to_end(page)
        self._tick += 1
        self._stamp[page] = self._tick
        self._read_freq[page] *= self.decay
        self._write_freq[page] *= self.decay
        if is_write:
            self._write_freq[page] += 1.0
        else:
            self._read_freq[page] += 1.0

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> list[int]:
        return list(self._order)

    # -- weights -----------------------------------------------------------

    def weight(self, page: int) -> float:
        """Retention weight: higher = keep longer.

        Dirty pages add their (asymmetry-scaled) write frequency: evicting
        them costs a flash write *now*, and frequent writers would be
        re-dirtied immediately.
        """
        retention = self._read_freq[page]
        if self._view.is_dirty(page):
            retention += self.alpha * self._write_freq[page]
        return retention

    def _ranked(self) -> list[int]:
        stamp = self._stamp
        return sorted(
            self._order,
            key=lambda page: (self.weight(page), stamp[page]),
        )

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        if not self._order:
            return None
        stamp = self._stamp
        victim = min(
            self._order, key=lambda page: (self.weight(page), stamp[page])
        )
        if not self._view.is_pinned(victim):
            return victim
        # Rare path: the overall minimum is pinned — walk the full order.
        for page in self.eviction_order():
            return page
        return None

    def eviction_order(self) -> Iterator[int]:
        for page in self._ranked():
            if not self._view.is_pinned(page):
                yield page
