"""2Q replacement (Johnson & Shasha, VLDB 1994) — paper Section III-A.

The full 2Q algorithm keeps three structures:

* ``A1in``: a FIFO queue of pages seen exactly once, sized ``Kin``;
* ``A1out``: a FIFO *ghost* queue of page identifiers recently evicted from
  ``A1in`` (no frames held), sized ``Kout``;
* ``Am``: an LRU list of "hot" pages — pages re-referenced while their
  identifier was still in ``A1out``.

A first access puts a page in ``A1in``.  A hit in ``A1in`` does nothing
(correlated references).  A miss whose identifier is found in ``A1out``
promotes the page straight to ``Am``.  Victims come from ``A1in`` while it
is over its target size, otherwise from the LRU end of ``Am``.

Defaults follow the paper's recommendation: ``Kin = 25%`` and
``Kout = 50%`` of the page slots.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from itertools import islice

from repro.policies.base import ReplacementPolicy

__all__ = ["TwoQPolicy"]


class TwoQPolicy(ReplacementPolicy):
    """Full-version 2Q with A1in/A1out/Am queues."""

    name = "twoq"

    def __init__(
        self,
        capacity: int,
        kin_fraction: float = 0.25,
        kout_fraction: float = 0.5,
    ) -> None:
        super().__init__()
        if capacity < 2:
            raise ValueError("2Q needs capacity of at least 2")
        if not 0.0 < kin_fraction < 1.0:
            raise ValueError(f"kin fraction must be in (0, 1): {kin_fraction}")
        if kout_fraction <= 0.0:
            raise ValueError(f"kout fraction must be positive: {kout_fraction}")
        self.capacity = capacity
        self.kin = max(1, int(capacity * kin_fraction))
        self.kout = max(1, int(capacity * kout_fraction))
        self._a1in: OrderedDict[int, None] = OrderedDict()
        self._a1out: OrderedDict[int, None] = OrderedDict()  # ghosts only
        self._am: OrderedDict[int, None] = OrderedDict()

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self:
            raise ValueError(f"page {page} already tracked")
        if cold:
            # Prefetched pages go to the front of A1in: first to leave.
            self._a1in[page] = None
            self._a1in.move_to_end(page, last=False)
            return
        if page in self._a1out:
            del self._a1out[page]
            self._am[page] = None
        else:
            self._a1in[page] = None

    def remove(self, page: int) -> None:
        if page in self._a1in:
            del self._a1in[page]
            self._remember_ghost(page)
        elif page in self._am:
            del self._am[page]
        else:
            raise KeyError(f"page {page} not tracked")

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page in self._am:
            self._am.move_to_end(page)
        elif page in self._a1in:
            # 2Q deliberately ignores repeated hits inside A1in.
            pass
        else:
            raise KeyError(f"page {page} not tracked")

    def _remember_ghost(self, page: int) -> None:
        self._a1out[page] = None
        while len(self._a1out) > self.kout:
            self._a1out.popitem(last=False)

    def __contains__(self, page: int) -> bool:
        return page in self._a1in or page in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def pages(self) -> list[int]:
        return list(self._a1in) + list(self._am)

    def ghost_pages(self) -> list[int]:
        """Contents of the A1out ghost queue (tests/diagnostics)."""
        return list(self._a1out)

    # -- decisions ---------------------------------------------------------

    def _a1in_over_target(self) -> bool:
        return len(self._a1in) > self.kin

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            if self._a1in_over_target():
                return next(iter(self._a1in))
            if self._am:
                return next(iter(self._am))
            # Fall back to A1in even under target if Am is empty.
            return next(iter(self._a1in), None)
        if self._a1in_over_target():
            for page in self._a1in:
                if not self._view.is_pinned(page):
                    return page
        for page in self._am:
            if not self._view.is_pinned(page):
                return page
        # Fall back to A1in even under target if Am is empty/pinned.
        for page in self._a1in:
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        # Lazy: the A1in overflow (counted on the raw queue length, as in
        # select_victim) is sliced off a shared unpinned iterator that the
        # tail then resumes, so consumers pay O(consumed), not a full
        # materialisation of both queues per call.
        is_pinned = self._view.is_pinned
        overflow = len(self._a1in) - self.kin
        a1in_iter = (p for p in self._a1in if not is_pinned(p))
        if overflow > 0:
            yield from islice(a1in_iter, overflow)
        yield from (p for p in self._am if not is_pinned(p))
        yield from a1in_iter
