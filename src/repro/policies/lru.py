"""Least Recently Used replacement.

The paper implements LRU in PostgreSQL as an "LRU freelist queue" and builds
CFLRU and LRU-WSR on top of it; we mirror that layering
(:class:`~repro.policies.cflru.CFLRUPolicy` and
:class:`~repro.policies.lru_wsr.LRUWSRPolicy` subclass this class).

The implementation is an ordered map: iteration order runs from the
least-recently-used page (eviction end) to the most-recently-used page.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an ordered map (O(1) hit/insert/remove)."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        # Front (first item) = least recently used = next eviction candidate.
        self._order: OrderedDict[int, None] = OrderedDict()

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already tracked")
        self._order[page] = None
        if cold:
            # Eviction end: the paper places prefetched pages in the
            # least-recently-used position so mispredictions drop cheaply.
            self._order.move_to_end(page, last=False)

    def remove(self, page: int) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        del self._order[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        try:
            self._order.move_to_end(page)
        except KeyError:
            raise KeyError(f"page {page} not tracked") from None

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> list[int]:
        return list(self._order)

    def lru_to_mru(self) -> list[int]:
        """Pages from least to most recently used (for subclasses/tests)."""
        return list(self._order)

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        for page in self._order:
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        # Iterate the live order directly: consumers materialise their
        # result before mutating the policy, and the copy-free path keeps
        # ACE's frequent virtual-order peeks O(consumed) not O(pool).
        for page in self._order:
            if not self._view.is_pinned(page):
                yield page
