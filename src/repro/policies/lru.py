"""Least Recently Used replacement.

The paper implements LRU in PostgreSQL as an "LRU freelist queue" and builds
CFLRU and LRU-WSR on top of it; we mirror that layering
(:class:`~repro.policies.cflru.CFLRUPolicy` and
:class:`~repro.policies.lru_wsr.LRUWSRPolicy` subclass this class).

The implementation is an ordered map: iteration order runs from the
least-recently-used page (eviction end) to the most-recently-used page.

When bound to a notifying view (the buffer manager), the policy also keeps
``_dirty_order`` — the dirty pages as a sub-order of the LRU list — updated
from the ``note_dirty`` / ``note_clean`` hooks.  This is valid in O(1)
because the manager only dirties a page immediately after ``on_access`` or
``insert`` placed it at the MRU end, so appending preserves the sub-order
invariant; ``note_dirty`` still verifies the position and rebuilds on the
(never observed) off-MRU case.  ``next_dirty(n)`` then reads the first
``n`` entries directly instead of filtering the whole LRU list through
per-page view calls.

The sub-order is maintained *lazily*: plain LRU never consults it for
victim selection, so a baseline (non-ACE) manager would pay per-write
bookkeeping for a structure nobody reads.  Tracking therefore switches on
at the first ``next_dirty``/``next_clean`` fast-path call (seeded with one
pass over the LRU order through the view) and stays incremental from then
on.  Subclasses whose ``select_victim`` depends on the sub-order (CFLRU's
window counter, LRU-WSR's cold-dirty probe) opt into eager tracking at
bind time via ``_EAGER_DIRTY_TRACKING``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from itertools import islice

from repro.policies.base import PageStateView, ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an ordered map (O(1) hit/insert/remove)."""

    name = "lru"

    #: Subclasses that read ``_dirty_order`` inside ``select_victim`` set
    #: this so tracking starts at bind time instead of on first bulk read.
    _EAGER_DIRTY_TRACKING = False

    def __init__(self) -> None:
        super().__init__()
        # Front (first item) = least recently used = next eviction candidate.
        self._order: OrderedDict[int, None] = OrderedDict()
        # Dirty pages in the same relative order as ``_order`` (front =
        # first write-back candidate).  Maintained only under a notifying
        # view and only once tracking is active; empty otherwise.
        self._dirty_order: OrderedDict[int, None] = OrderedDict()
        self._dirty_tracking = False

    def bind(self, view: PageStateView) -> None:
        super().bind(view)
        self._dirty_order.clear()
        self._dirty_tracking = self._EAGER_DIRTY_TRACKING and self._notified

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already tracked")
        self._order[page] = None
        if cold:
            # Eviction end: the paper places prefetched pages in the
            # least-recently-used position so mispredictions drop cheaply.
            self._order.move_to_end(page, last=False)

    def remove(self, page: int) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        del self._order[page]
        if self._dirty_tracking:
            self._dirty_order.pop(page, None)

    def on_access(self, page: int, is_write: bool = False) -> None:
        try:
            self._order.move_to_end(page)
        except KeyError:
            raise KeyError(f"page {page} not tracked") from None
        if self._dirty_tracking and page in self._dirty_order:
            self._dirty_order.move_to_end(page)

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> list[int]:
        return list(self._order)

    def lru_to_mru(self) -> list[int]:
        """Pages from least to most recently used (for subclasses/tests)."""
        return list(self._order)

    # -- notifications -----------------------------------------------------

    def note_dirty(self, page: int) -> None:
        if not self._dirty_tracking:
            return
        dirty = self._dirty_order
        if page in dirty:
            return
        dirty[page] = None
        # Pages are dirtied right after on_access/insert put them at the
        # MRU end, which is what makes the O(1) append order-preserving.
        if self._order and next(reversed(self._order)) != page:
            self._rebuild_dirty_order()

    def note_clean(self, page: int) -> None:
        if self._dirty_tracking:
            self._dirty_order.pop(page, None)

    def _rebuild_dirty_order(self) -> None:
        members = set(self._dirty_order)
        self._dirty_order.clear()
        for page in self._order:
            if page in members:
                self._dirty_order[page] = None

    def _activate_dirty_tracking(self) -> None:
        """Seed the dirty sub-order from the view and go incremental."""
        is_dirty = self._view.is_dirty
        dirty = self._dirty_order
        dirty.clear()
        for page in self._order:
            if is_dirty(page):
                dirty[page] = None
        self._dirty_tracking = True

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            return next(iter(self._order), None)
        for page in self._order:
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        # Iterate the live order directly: consumers materialise their
        # result before mutating the policy, and the copy-free path keeps
        # ACE's frequent virtual-order peeks O(consumed) not O(pool).
        for page in self._order:
            if not self._view.is_pinned(page):
                yield page

    # -- maintained fast paths ---------------------------------------------

    def peek(self, n: int) -> list[int]:
        if self._notified and not self._pinned_pages:
            if n < 0:
                raise ValueError(f"n must be non-negative: {n}")
            return list(islice(self._order, n))
        return self._reference_peek(n)

    def next_dirty(self, n: int) -> list[int]:
        if self._notified and not self._pinned_pages:
            if n < 0:
                raise ValueError(f"n must be non-negative: {n}")
            if not self._dirty_tracking:
                self._activate_dirty_tracking()
            return list(islice(self._dirty_order, n))
        return self._reference_next_dirty(n)

    def next_clean(self, n: int) -> list[int]:
        if self._notified and not self._pinned_pages:
            if n < 0:
                raise ValueError(f"n must be non-negative: {n}")
            if not self._dirty_tracking:
                self._activate_dirty_tracking()
            dirty = self._dirty_order
            if not dirty:
                return list(islice(self._order, n))
            selected: list[int] = []
            if n == 0:
                return selected
            for page in self._order:
                if page not in dirty:
                    selected.append(page)
                    if len(selected) == n:
                        break
            return selected
        return self._reference_next_clean(n)
