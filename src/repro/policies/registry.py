"""Name-based construction of replacement policies.

Benchmarks and examples refer to policies by name ("clock", "lru", "cflru",
"lru_wsr", ...).  Factories receive the bufferpool capacity because some
policies (CFLRU's window, 2Q's queue targets, ARC's adaptation bound) are
sized relative to it.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.policies.arc import ARCPolicy
from repro.policies.base import ReplacementPolicy
from repro.policies.cflru import CFLRUPolicy
from repro.policies.clock import ClockSweepPolicy
from repro.policies.fifo import FIFOPolicy, SecondChancePolicy
from repro.policies.flash_for import FORPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lirs import LIRSPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.lru_wsr import LRUWSRPolicy
from repro.policies.twoq import TwoQPolicy

__all__ = [
    "POLICY_NAMES",
    "PAPER_POLICIES",
    "make_policy",
    "register_policy",
]

PolicyFactory = Callable[[int], ReplacementPolicy]

_FACTORIES: dict[str, PolicyFactory] = {
    "lru": lambda capacity: LRUPolicy(),
    "clock": lambda capacity: ClockSweepPolicy(),
    "cflru": lambda capacity: CFLRUPolicy(capacity),
    "lru_wsr": lambda capacity: LRUWSRPolicy(),
    "fifo": lambda capacity: FIFOPolicy(),
    "second_chance": lambda capacity: SecondChancePolicy(),
    "lfu": lambda capacity: LFUPolicy(),
    "twoq": lambda capacity: TwoQPolicy(capacity),
    "arc": lambda capacity: ARCPolicy(capacity),
    "for": lambda capacity: FORPolicy(),
    "lirs": lambda capacity: LIRSPolicy(capacity),
}

#: Display names used in reports, matching the paper's terminology.
DISPLAY_NAMES = {
    "lru": "LRU",
    "clock": "Clock Sweep",
    "cflru": "CFLRU",
    "lru_wsr": "LRU-WSR",
    "fifo": "FIFO",
    "second_chance": "Second Chance",
    "lfu": "LFU",
    "twoq": "2Q",
    "arc": "ARC",
    "for": "FOR",
    "lirs": "LIRS",
}

#: All registered policy names.
POLICY_NAMES = tuple(_FACTORIES)

#: The four policies the paper evaluates, in the paper's order.
PAPER_POLICIES = ("clock", "lru", "cflru", "lru_wsr")


def make_policy(name: str, capacity: int) -> ReplacementPolicy:
    """Instantiate the policy registered under ``name``.

    ``capacity`` is the bufferpool size in pages; policies that size
    internal structures relative to the pool use it.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}") from None
    return factory(capacity)


def register_policy(name: str, factory: PolicyFactory, display: str | None = None) -> None:
    """Register a user-defined policy factory under ``name``.

    This is the extension point the paper's "ease of adoption" goal implies:
    any replacement policy implementing :class:`ReplacementPolicy` can be
    registered and immediately gains an ACE counterpart.
    """
    if name in _FACTORIES:
        raise ValueError(f"policy {name!r} is already registered")
    _FACTORIES[name] = factory
    DISPLAY_NAMES[name] = display if display is not None else name


def display_name(name: str) -> str:
    """Human-readable policy name for reports."""
    return DISPLAY_NAMES.get(name, name)
