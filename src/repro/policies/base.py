"""Replacement-policy API: the "virtual order" at the heart of ACE.

The paper's key refactoring (Section III) is that a page replacement
algorithm defines a **virtual order** of pages — the order in which pages
would eventually be evicted — and that this single order should drive two
*separate* decisions:

* the **write-back policy** consumes the virtual order restricted to dirty
  pages (the next ``n_w`` dirty pages the policy would evict);
* the **eviction policy** consumes the virtual order itself (the next
  ``n_e`` pages to drop, which should be clean by then).

Accordingly, every policy here exposes two views of the same decision:

``select_victim()``
    The classical, *stateful* call: pick one page to replace.  It may
    mutate policy state (Clock Sweep decrements usage counts, LRU-WSR gives
    dirty hot pages a second chance).
``eviction_order()``
    A *side-effect-free* iterator over pages in the order the policy would
    evict them from its current state.  ACE's Writer and Evictor peek at
    this order without disturbing the policy, which is what lets ACE wrap
    any replacement algorithm unchanged.

Policies learn page dirty/pinned state through a :class:`PageStateView`
supplied by the buffer manager via :meth:`ReplacementPolicy.bind`; they never
track dirtiness themselves, mirroring how PostgreSQL's freelist code reads
buffer descriptor flags.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import Protocol

__all__ = ["PageStateView", "ReplacementPolicy", "NullPageStateView"]


class PageStateView(Protocol):
    """What a policy may ask the buffer manager about a buffered page."""

    def is_dirty(self, page: int) -> bool:
        """Whether the buffered page has unflushed modifications."""
        ...

    def is_pinned(self, page: int) -> bool:
        """Whether the page is pinned and therefore not evictable."""
        ...


class NullPageStateView:
    """A view for standalone policy use: nothing dirty, nothing pinned."""

    def is_dirty(self, page: int) -> bool:
        return False

    def is_pinned(self, page: int) -> bool:
        return False


class ReplacementPolicy(ABC):
    """Base class for page replacement algorithms.

    Subclasses maintain only page *membership and ordering*; dirty and pin
    state is read through the bound :class:`PageStateView`.

    The lifecycle calls a buffer manager makes:

    * :meth:`insert` when a page enters the pool (``cold=True`` places it at
      the eviction end — used by ACE for prefetched pages so that wrong
      predictions are cheap to drop);
    * :meth:`on_access` on every buffer hit;
    * :meth:`select_victim` when a frame must be freed;
    * :meth:`remove` when the page actually leaves the pool.
    """

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self) -> None:
        self._view: PageStateView = NullPageStateView()

    def bind(self, view: PageStateView) -> None:
        """Attach the buffer manager's page-state view."""
        self._view = view

    # -- membership -------------------------------------------------------

    @abstractmethod
    def insert(self, page: int, cold: bool = False) -> None:
        """Track a page that entered the bufferpool.

        ``cold=True`` requests placement at the eviction end of the virtual
        order (least-recently-used position or equivalent).
        """

    @abstractmethod
    def remove(self, page: int) -> None:
        """Stop tracking a page that left the bufferpool."""

    @abstractmethod
    def on_access(self, page: int, is_write: bool = False) -> None:
        """Record a buffer hit on ``page``."""

    @abstractmethod
    def __contains__(self, page: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def pages(self) -> list[int]:
        """All tracked pages (order unspecified)."""

    # -- decisions ---------------------------------------------------------

    @abstractmethod
    def select_victim(self) -> int | None:
        """Pick one page to replace (stateful; skips pinned pages).

        Returns ``None`` only if every tracked page is pinned.  The caller
        is responsible for write-back (if dirty) and for :meth:`remove`.
        """

    @abstractmethod
    def eviction_order(self) -> Iterator[int]:
        """Yield unpinned pages in eviction order, without side effects.

        This is the policy's *virtual order* (paper Section III): position
        ``i`` is the page that would be the victim after ``i`` evictions,
        assuming no intervening accesses.
        """

    # -- derived helpers used by ACE ---------------------------------------

    def next_dirty(self, n: int) -> list[int]:
        """The next ``n`` dirty pages in the virtual order (may be fewer).

        This is exactly the paper's ``populate_pages_to_writeback()``: the
        candidate set for ACE's concurrent write-back.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        if n == 0:
            return selected
        is_dirty = self._view.is_dirty
        for page in self.eviction_order():
            if is_dirty(page):
                selected.append(page)
                if len(selected) == n:
                    break
        return selected

    def next_evictable(self, n: int) -> list[int]:
        """The next ``n`` pages in the virtual order (may be fewer)."""
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        for page in self.eviction_order():
            selected.append(page)
            if len(selected) == n:
                break
        return selected

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pages={len(self)})"
