"""Replacement-policy API: the "virtual order" at the heart of ACE.

The paper's key refactoring (Section III) is that a page replacement
algorithm defines a **virtual order** of pages — the order in which pages
would eventually be evicted — and that this single order should drive two
*separate* decisions:

* the **write-back policy** consumes the virtual order restricted to dirty
  pages (the next ``n_w`` dirty pages the policy would evict);
* the **eviction policy** consumes the virtual order itself (the next
  ``n_e`` pages to drop, which should be clean by then).

Accordingly, every policy here exposes two views of the same decision:

``select_victim()``
    The classical, *stateful* call: pick one page to replace.  It may
    mutate policy state (Clock Sweep decrements usage counts, LRU-WSR gives
    dirty hot pages a second chance).
``eviction_order()``
    A *side-effect-free* iterator over pages in the order the policy would
    evict them from its current state.  ACE's Writer and Evictor peek at
    this order without disturbing the policy, which is what lets ACE wrap
    any replacement algorithm unchanged.

Policies learn page dirty/pinned state through a :class:`PageStateView`
supplied by the buffer manager via :meth:`ReplacementPolicy.bind`; the
manager's descriptors stay the authoritative record, mirroring how
PostgreSQL's freelist code reads buffer descriptor flags.  A view that
declares ``notifies_state_changes`` additionally pushes per-page
dirty/pin transitions into the policy's ``note_*`` hooks, which lets a
policy maintain its virtual order *incrementally* (a dirty sub-order, a
clean-first window counter) and answer the bulk fast paths —
:meth:`ReplacementPolicy.peek`, :meth:`ReplacementPolicy.next_dirty`,
:meth:`ReplacementPolicy.next_clean` — in O(answer) instead of
re-deriving the order per call.  ``eviction_order()`` remains the pure
reference implementation that the sanitizer and the differential tests
hold every fast path to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from itertools import islice
from typing import Protocol

__all__ = ["PageStateView", "ReplacementPolicy", "NullPageStateView"]


class PageStateView(Protocol):
    """What a policy may ask the buffer manager about a buffered page.

    A view may additionally expose a truthy ``notifies_state_changes``
    attribute, promising to call the policy's ``note_dirty`` /
    ``note_clean`` / ``note_pinned`` / ``note_unpinned`` hooks on every
    state transition.  Policies bound to such a view may maintain
    incremental virtual-order structures (dirty sub-orders, window
    counters) and serve :meth:`ReplacementPolicy.peek` /
    :meth:`ReplacementPolicy.next_dirty` / :meth:`ReplacementPolicy.next_clean`
    from them instead of filtering a fresh ``eviction_order()`` scan.
    Views without the attribute (tests, standalone use) get the reference
    behaviour unchanged.
    """

    def is_dirty(self, page: int) -> bool:
        """Whether the buffered page has unflushed modifications."""
        ...

    def is_pinned(self, page: int) -> bool:
        """Whether the page is pinned and therefore not evictable."""
        ...


class NullPageStateView:
    """A view for standalone policy use: nothing dirty, nothing pinned."""

    def is_dirty(self, page: int) -> bool:
        return False

    def is_pinned(self, page: int) -> bool:
        return False


class ReplacementPolicy(ABC):
    """Base class for page replacement algorithms.

    Subclasses maintain only page *membership and ordering*; dirty and pin
    state is read through the bound :class:`PageStateView`.

    The lifecycle calls a buffer manager makes:

    * :meth:`insert` when a page enters the pool (``cold=True`` places it at
      the eviction end — used by ACE for prefetched pages so that wrong
      predictions are cheap to drop);
    * :meth:`on_access` on every buffer hit;
    * :meth:`select_victim` when a frame must be freed;
    * :meth:`remove` when the page actually leaves the pool.
    """

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self) -> None:
        self._view: PageStateView = NullPageStateView()
        #: Whether the bound view promises ``note_*`` state-change
        #: callbacks; incremental fast paths engage only when it does.
        self._notified = False
        #: Pages currently pinned, mirrored from ``note_pinned`` /
        #: ``note_unpinned``.  Fast paths that assume "nothing pinned"
        #: gate on this set being empty and otherwise fall back to the
        #: reference scans, which consult the view per page.
        self._pinned_pages: set[int] = set()

    def bind(self, view: PageStateView) -> None:
        """Attach the buffer manager's page-state view."""
        self._view = view
        self._notified = bool(getattr(view, "notifies_state_changes", False))
        self._pinned_pages.clear()

    # -- state-change notifications ----------------------------------------
    #
    # Called by a view that declares ``notifies_state_changes`` on every
    # transition of the named page.  The base class tracks pins; policies
    # that maintain dirty sub-orders override the dirty pair (and call up).

    def note_dirty(self, page: int) -> None:
        """``page`` transitioned clean -> dirty."""

    def note_clean(self, page: int) -> None:
        """``page`` transitioned dirty -> clean (write-back landed)."""

    def note_pinned(self, page: int) -> None:
        """``page`` transitioned unpinned -> pinned."""
        self._pinned_pages.add(page)

    def note_unpinned(self, page: int) -> None:
        """``page`` transitioned pinned -> unpinned."""
        self._pinned_pages.discard(page)

    # -- membership -------------------------------------------------------

    @abstractmethod
    def insert(self, page: int, cold: bool = False) -> None:
        """Track a page that entered the bufferpool.

        ``cold=True`` requests placement at the eviction end of the virtual
        order (least-recently-used position or equivalent).
        """

    @abstractmethod
    def remove(self, page: int) -> None:
        """Stop tracking a page that left the bufferpool."""

    @abstractmethod
    def on_access(self, page: int, is_write: bool = False) -> None:
        """Record a buffer hit on ``page``."""

    @abstractmethod
    def __contains__(self, page: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def pages(self) -> list[int]:
        """All tracked pages (order unspecified)."""

    # -- decisions ---------------------------------------------------------

    @abstractmethod
    def select_victim(self) -> int | None:
        """Pick one page to replace (stateful; skips pinned pages).

        Returns ``None`` only if every tracked page is pinned.  The caller
        is responsible for write-back (if dirty) and for :meth:`remove`.
        """

    @abstractmethod
    def eviction_order(self) -> Iterator[int]:
        """Yield unpinned pages in eviction order, without side effects.

        This is the policy's *virtual order* (paper Section III): position
        ``i`` is the page that would be the victim after ``i`` evictions,
        assuming no intervening accesses.
        """

    # -- derived helpers used by ACE ---------------------------------------
    #
    # ``peek`` / ``next_dirty`` / ``next_clean`` are the bulk fast paths the
    # ACE Writer, Evictor, and the manager's degraded-eviction fallback
    # consume.  The ``_reference_*`` forms below are the definitional
    # implementations over ``eviction_order()``; policies with maintained
    # structures override the public methods and *must* return exactly the
    # reference result (the sanitizer and the differential suite check
    # this), using the reference as the fallback whenever the bound view
    # does not notify or pinned pages invalidate the maintained shortcut.

    def _reference_peek(self, n: int) -> list[int]:
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        return list(islice(self.eviction_order(), n))

    def _reference_next_dirty(self, n: int) -> list[int]:
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        if n == 0:
            return selected
        is_dirty = self._view.is_dirty
        for page in self.eviction_order():
            if is_dirty(page):
                selected.append(page)
                if len(selected) == n:
                    break
        return selected

    def _reference_next_clean(self, n: int) -> list[int]:
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        if n == 0:
            return selected
        is_dirty = self._view.is_dirty
        for page in self.eviction_order():
            if not is_dirty(page):
                selected.append(page)
                if len(selected) == n:
                    break
        return selected

    def peek(self, n: int) -> list[int]:
        """The next ``n`` pages in the virtual order (may be fewer)."""
        return self._reference_peek(n)

    def next_dirty(self, n: int) -> list[int]:
        """The next ``n`` dirty pages in the virtual order (may be fewer).

        This is exactly the paper's ``populate_pages_to_writeback()``: the
        candidate set for ACE's concurrent write-back.
        """
        return self._reference_next_dirty(n)

    def next_clean(self, n: int) -> list[int]:
        """The next ``n`` clean pages in the virtual order (may be fewer).

        The degraded-eviction fallback: when a write-back fails, the
        manager evicts the first clean page in the virtual order instead.
        """
        return self._reference_next_clean(n)

    def next_evictable(self, n: int) -> list[int]:
        """The next ``n`` pages in the virtual order (alias of :meth:`peek`)."""
        return self.peek(n)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pages={len(self)})"
