"""FIFO and Second Chance replacement (paper Section III-A related policies).

These are not part of the paper's evaluation quartet, but the paper's thesis
is that ACE wraps *any* replacement algorithm; including the simplest
policies lets the test suite and ablation benches demonstrate exactly that.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["FIFOPolicy", "SecondChancePolicy"]


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: eviction order is insertion order; hits are free."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[int, None] = OrderedDict()

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already tracked")
        self._order[page] = None
        if cold:
            self._order.move_to_end(page, last=False)

    def remove(self, page: int) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        del self._order[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        if page not in self._order:
            raise KeyError(f"page {page} not tracked")
        # FIFO ignores accesses by definition.

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> list[int]:
        return list(self._order)

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            return next(iter(self._order), None)
        for page in self._order:
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        # Live iteration (consumers materialise before mutating): the
        # virtual order costs O(consumed), not an O(pool) copy per call.
        for page in self._order:
            if not self._view.is_pinned(page):
                yield page


class SecondChancePolicy(FIFOPolicy):
    """FIFO with a reference bit: referenced pages get one more lap."""

    name = "second_chance"

    def __init__(self) -> None:
        super().__init__()
        self._referenced: dict[int, bool] = {}

    def insert(self, page: int, cold: bool = False) -> None:
        super().insert(page, cold=cold)
        self._referenced[page] = False

    def remove(self, page: int) -> None:
        super().remove(page)
        del self._referenced[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        super().on_access(page, is_write)
        self._referenced[page] = True

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            order = self._order
            referenced = self._referenced
            for _ in range(2 * len(order) + 1):
                candidate = next(iter(order), None)
                if candidate is None:
                    return None
                if not referenced[candidate]:
                    return candidate
                referenced[candidate] = False
                order.move_to_end(candidate)
            return None
        for _ in range(2 * len(self._order) + 1):
            candidate = None
            for page in self._order:
                if not self._view.is_pinned(page):
                    candidate = page
                    break
            if candidate is None:
                return None
            if not self._referenced[candidate]:
                return candidate
            self._referenced[candidate] = False
            self._order.move_to_end(candidate)
        return None

    def eviction_order(self) -> Iterator[int]:
        deferred: list[int] = []
        for page in self._order:
            if self._view.is_pinned(page):
                continue
            if self._referenced[page]:
                deferred.append(page)
            else:
                yield page
        yield from deferred
