"""LIRS: Low Inter-reference Recency Set replacement (Jiang & Zhang, 2002).

LIRS ranks pages by *reuse distance* (inter-reference recency, IRR) rather
than recency alone, which makes it scan-resistant where LRU collapses:

* **LIR** pages (low IRR — re-referenced quickly) own most of the cache;
* **HIR** pages (high IRR or seen once) pass through a small resident
  queue ``Q``;
* the **stack S** records recency of LIR pages, resident HIR pages, and a
  bounded set of *non-resident* HIR ghosts.  A hit on an HIR page that is
  still in S proves a low IRR, so the page is promoted to LIR and the LIR
  page at S's bottom is demoted.

This implementation keeps the canonical S/Q structures with stack pruning
and bounds non-resident ghosts to the cache size.  Victims always come
from the front of Q (resident HIR pages), falling back to demoting the
coldest LIR page when Q is empty.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.policies.base import ReplacementPolicy

__all__ = ["LIRSPolicy"]

_LIR = "lir"
_HIR = "hir"            # resident HIR
_GHOST = "ghost"        # non-resident HIR (metadata only)


class LIRSPolicy(ReplacementPolicy):
    """LIRS with a configurable HIR-queue share of the capacity."""

    name = "lirs"

    def __init__(self, capacity: int, hir_fraction: float = 0.05) -> None:
        super().__init__()
        if capacity < 2:
            raise ValueError("LIRS needs capacity of at least 2")
        if not 0.0 < hir_fraction < 1.0:
            raise ValueError(f"hir fraction must be in (0, 1): {hir_fraction}")
        self.capacity = capacity
        self.hir_target = max(1, int(capacity * hir_fraction))
        self.lir_target = capacity - self.hir_target
        # Stack S: recency order (front = coldest). Values: status string.
        self._stack: OrderedDict[int, str] = OrderedDict()
        # Queue Q: resident HIR pages in FIFO order.
        self._queue: OrderedDict[int, None] = OrderedDict()
        # All resident pages and their status (_LIR or _HIR).
        self._status: dict[int, str] = {}
        self._lir_count = 0
        # Ghost entries in the stack, maintained incrementally so bounding
        # them is O(1) when under budget instead of a full stack scan on
        # every insert.
        self._ghost_count = 0

    # ------------------------------------------------------------ helpers

    def _prune_stack(self) -> None:
        """Remove HIR/ghost entries from the stack bottom (canonical)."""
        while self._stack:
            page = next(iter(self._stack))
            status = self._stack[page]
            if status == _LIR:
                break
            if status == _GHOST:
                self._ghost_count -= 1
            del self._stack[page]

    def _bound_ghosts(self) -> None:
        excess = self._ghost_count - self.capacity
        if excess <= 0:
            return
        doomed: list[int] = []
        for page, status in self._stack.items():
            if status == _GHOST:
                doomed.append(page)
                if len(doomed) == excess:
                    break
        for page in doomed:
            del self._stack[page]
        self._ghost_count -= len(doomed)

    def _demote_coldest_lir(self) -> None:
        """Move the stack-bottom LIR page to the HIR queue."""
        for page, status in self._stack.items():
            if status == _LIR:
                del self._stack[page]
                self._status[page] = _HIR
                self._queue[page] = None
                self._lir_count -= 1
                self._prune_stack()
                return

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._status:
            raise ValueError(f"page {page} already tracked")
        was_ghost = self._stack.get(page) == _GHOST
        if cold:
            # Prefetched pages go straight to the HIR queue's front.
            self._status[page] = _HIR
            self._queue[page] = None
            self._queue.move_to_end(page, last=False)
            if self._stack.pop(page, None) == _GHOST:
                self._ghost_count -= 1
            return
        if self._lir_count < self.lir_target:
            # Warm-up: fill the LIR set first.
            self._status[page] = _LIR
            self._stack[page] = _LIR
            self._lir_count += 1
            return
        if was_ghost:
            # Reappearing within stack memory: low IRR, promote to LIR.
            self._ghost_count -= 1
            self._stack[page] = _LIR
            self._stack.move_to_end(page)
            self._status[page] = _LIR
            self._lir_count += 1
            if self._lir_count > self.lir_target:
                self._demote_coldest_lir()
        else:
            self._status[page] = _HIR
            self._stack[page] = _HIR
            self._stack.move_to_end(page)
            self._queue[page] = None
        self._bound_ghosts()

    def remove(self, page: int) -> None:
        status = self._status.pop(page, None)
        if status is None:
            raise KeyError(f"page {page} not tracked")
        self._queue.pop(page, None)
        if status == _LIR:
            self._lir_count -= 1
            self._stack.pop(page, None)
            self._prune_stack()
        elif page in self._stack:
            # Evicted HIR page leaves a ghost: its next appearance within
            # stack memory proves a low IRR.
            self._stack[page] = _GHOST
            self._ghost_count += 1

    def on_access(self, page: int, is_write: bool = False) -> None:
        status = self._status.get(page)
        if status is None:
            raise KeyError(f"page {page} not tracked")
        if status == _LIR:
            self._stack[page] = _LIR
            self._stack.move_to_end(page)
            self._prune_stack()
            return
        # Resident HIR hit.
        if page in self._stack:
            # Low IRR: promote to LIR, demote the coldest LIR page.
            self._stack[page] = _LIR
            self._stack.move_to_end(page)
            self._status[page] = _LIR
            self._lir_count += 1
            self._queue.pop(page, None)
            if self._lir_count > self.lir_target:
                self._demote_coldest_lir()
        else:
            # High IRR: stay HIR, refresh queue position and re-enter S.
            self._stack[page] = _HIR
            self._stack.move_to_end(page)
            self._queue.move_to_end(page)

    def __contains__(self, page: int) -> bool:
        return page in self._status

    def __len__(self) -> int:
        return len(self._status)

    def pages(self) -> list[int]:
        return list(self._status)

    def status_of(self, page: int) -> str:
        """"lir" or "hir" for a resident page (tests/diagnostics)."""
        return self._status[page]

    # -- decisions ---------------------------------------------------------

    def _victim_order(self) -> Iterator[int]:
        # Resident HIR pages leave first (FIFO), then LIR pages by stack
        # recency (coldest first).
        for page in self._queue:
            yield page
        for page, status in self._stack.items():
            if status == _LIR:
                yield page

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            # Nothing pinned: the victim is the queue's front (or, with an
            # empty queue, the coldest LIR page) — no per-page view calls.
            return next(self._victim_order(), None)
        for page in self._victim_order():
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        for page in self._victim_order():
            if not self._view.is_pinned(page):
                yield page
