"""LRU with Write Sequence Reordering (LRU-WSR) — paper Fig. 4c.

LRU-WSR delays evicting *cold dirty* pages to reduce flash writes.  Every
page carries a **cold flag**, cleared whenever the page is referenced.  At
eviction time:

* a clean candidate is evicted regardless of its cold flag;
* a dirty candidate with the cold flag **set** is evicted;
* a dirty candidate with the cold flag **clear** gets a second chance: the
  flag is set and the page moves to the most-recently-used position, and
  the search continues down the LRU order.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.policies.lru import LRUPolicy

__all__ = ["LRUWSRPolicy"]


class LRUWSRPolicy(LRUPolicy):
    """LRU-WSR: second chance for hot dirty pages via a cold flag."""

    name = "lru_wsr"

    def __init__(self) -> None:
        super().__init__()
        self._cold: dict[int, bool] = {}

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        super().insert(page, cold=cold)
        # A freshly inserted page starts "not cold": it was just referenced.
        # A prefetched (cold) insert starts with the flag set so that a
        # wrong prediction is evicted immediately even if it gets dirtied.
        self._cold[page] = cold

    def remove(self, page: int) -> None:
        super().remove(page)
        del self._cold[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        super().on_access(page, is_write)
        self._cold[page] = False

    def is_cold(self, page: int) -> bool:
        """Current cold-flag value (diagnostics/tests)."""
        return self._cold[page]

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        # At most one full pass can defer pages; after that every dirty page
        # has its cold flag set and the next candidate wins.
        for _ in range(2 * len(self._order) + 1):
            candidate = None
            for page in self._order:
                if not self._view.is_pinned(page):
                    candidate = page
                    break
            if candidate is None:
                return None
            if not self._view.is_dirty(candidate):
                return candidate
            if self._cold[candidate]:
                return candidate
            # Dirty and not cold: second chance.
            self._cold[candidate] = True
            self._order.move_to_end(candidate)
        return None

    def eviction_order(self) -> Iterator[int]:
        """Virtual order with simulated second chances (no side effects).

        First pass over the LRU order emits clean pages and cold dirty
        pages; dirty non-cold pages are deferred (they would be moved to
        the MRU position with the flag set) and emitted afterwards in the
        order they were deferred.
        """
        deferred: list[int] = []
        for page in self._order:
            if self._view.is_pinned(page):
                continue
            if not self._view.is_dirty(page) or self._cold[page]:
                yield page
            else:
                deferred.append(page)
        yield from deferred
