"""LRU with Write Sequence Reordering (LRU-WSR) — paper Fig. 4c.

LRU-WSR delays evicting *cold dirty* pages to reduce flash writes.  Every
page carries a **cold flag**, cleared whenever the page is referenced.  At
eviction time:

* a clean candidate is evicted regardless of its cold flag;
* a dirty candidate with the cold flag **set** is evicted;
* a dirty candidate with the cold flag **clear** gets a second chance: the
  flag is set and the page moves to the most-recently-used position, and
  the search continues down the LRU order.

Under a notifying view the inherited ``_dirty_order`` sub-order makes both
decisions cheap: ``select_victim`` probes candidates with dict lookups
instead of per-page view calls, and ``next_dirty(n)`` is two passes over
the dirty sub-order (cold dirty pages first — they are evicted where they
stand — then the not-cold ones in the order they would be deferred to the
MRU end).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.policies.lru import LRUPolicy

__all__ = ["LRUWSRPolicy"]


class LRUWSRPolicy(LRUPolicy):
    """LRU-WSR: second chance for hot dirty pages via a cold flag."""

    name = "lru_wsr"

    # select_victim probes dirty state via the sub-order, so tracking must
    # be live from the first eviction, not lazily from the first bulk read.
    _EAGER_DIRTY_TRACKING = True

    def __init__(self) -> None:
        super().__init__()
        self._cold: dict[int, bool] = {}

    # -- membership -------------------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        super().insert(page, cold=cold)
        # A freshly inserted page starts "not cold": it was just referenced.
        # A prefetched (cold) insert starts with the flag set so that a
        # wrong prediction is evicted immediately even if it gets dirtied.
        self._cold[page] = cold

    def remove(self, page: int) -> None:
        super().remove(page)
        del self._cold[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        super().on_access(page, is_write)
        self._cold[page] = False

    def is_cold(self, page: int) -> bool:
        """Current cold-flag value (diagnostics/tests)."""
        return self._cold[page]

    # -- decisions ---------------------------------------------------------

    def _defer(self, candidate: int) -> None:
        """Second chance: set the cold flag, rotate to the MRU position."""
        self._cold[candidate] = True
        self._order.move_to_end(candidate)
        if candidate in self._dirty_order:
            self._dirty_order.move_to_end(candidate)

    def select_victim(self) -> int | None:
        # At most one full pass can defer pages; after that every dirty page
        # has its cold flag set and the next candidate wins.
        if self._notified and not self._pinned_pages:
            order = self._order
            dirty = self._dirty_order
            cold = self._cold
            for _ in range(2 * len(order) + 1):
                candidate = next(iter(order), None)
                if candidate is None:
                    return None
                if candidate not in dirty or cold[candidate]:
                    return candidate
                self._defer(candidate)
            return None
        for _ in range(2 * len(self._order) + 1):
            candidate = None
            for page in self._order:
                if not self._view.is_pinned(page):
                    candidate = page
                    break
            if candidate is None:
                return None
            if not self._view.is_dirty(candidate):
                return candidate
            if self._cold[candidate]:
                return candidate
            # Dirty and not cold: second chance.
            self._defer(candidate)
        return None

    def eviction_order(self) -> Iterator[int]:
        """Virtual order with simulated second chances (no side effects).

        First pass over the LRU order emits clean pages and cold dirty
        pages; dirty non-cold pages are deferred (they would be moved to
        the MRU position with the flag set) and emitted afterwards in the
        order they were deferred.
        """
        deferred: list[int] = []
        for page in self._order:
            if self._view.is_pinned(page):
                continue
            if not self._view.is_dirty(page) or self._cold[page]:
                yield page
            else:
                deferred.append(page)
        yield from deferred

    # -- maintained fast paths ---------------------------------------------
    #
    # next_clean is inherited from LRUPolicy: the deferred pages are all
    # dirty, so the clean subsequence of the virtual order is exactly the
    # clean pages in LRU order.

    def peek(self, n: int) -> list[int]:
        if not (self._notified and not self._pinned_pages):
            return self._reference_peek(n)
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        if n == 0:
            return selected
        dirty = self._dirty_order
        cold = self._cold
        deferred: list[int] = []
        for page in self._order:
            if page in dirty and not cold[page]:
                if len(deferred) < n:
                    deferred.append(page)
            else:
                selected.append(page)
                if len(selected) == n:
                    return selected
        for page in deferred:
            selected.append(page)
            if len(selected) == n:
                break
        return selected

    def next_dirty(self, n: int) -> list[int]:
        if not (self._notified and not self._pinned_pages):
            return self._reference_next_dirty(n)
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        if n == 0:
            return selected
        cold = self._cold
        dirty = self._dirty_order
        for page in dirty:
            if cold[page]:
                selected.append(page)
                if len(selected) == n:
                    return selected
        for page in dirty:
            if not cold[page]:
                selected.append(page)
                if len(selected) == n:
                    break
        return selected
