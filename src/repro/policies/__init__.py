"""Page replacement policies and the virtual-order API ACE builds on."""

from repro.policies.arc import ARCPolicy
from repro.policies.base import NullPageStateView, PageStateView, ReplacementPolicy
from repro.policies.cflru import CFLRUPolicy
from repro.policies.clock import ClockSweepPolicy
from repro.policies.fifo import FIFOPolicy, SecondChancePolicy
from repro.policies.flash_for import FORPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lirs import LIRSPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.lru_wsr import LRUWSRPolicy
from repro.policies.registry import (
    PAPER_POLICIES,
    POLICY_NAMES,
    display_name,
    make_policy,
    register_policy,
)
from repro.policies.twoq import TwoQPolicy

__all__ = [
    "ReplacementPolicy",
    "PageStateView",
    "NullPageStateView",
    "LRUPolicy",
    "ClockSweepPolicy",
    "CFLRUPolicy",
    "LRUWSRPolicy",
    "FIFOPolicy",
    "SecondChancePolicy",
    "LFUPolicy",
    "FORPolicy",
    "LIRSPolicy",
    "TwoQPolicy",
    "ARCPolicy",
    "make_policy",
    "register_policy",
    "display_name",
    "POLICY_NAMES",
    "PAPER_POLICIES",
]
