"""Clean-First LRU (CFLRU) — flash-friendly replacement (paper Fig. 4b).

CFLRU keeps the LRU order but splits the list into a *working region*
(recently used) and a *clean-first region* of window size ``W`` at the
eviction end.  Victims are chosen clean-first inside the window: evicting a
clean page avoids a flash write.  Only when the window contains no clean
page does CFLRU fall back to evicting the least-recently-used (dirty) page.

The paper sets the window to one third of the bufferpool, following the
CFLRU authors' recommendation; :class:`CFLRUPolicy` takes the fraction as a
parameter so the window-size ablation bench can sweep it.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.policies.lru import LRUPolicy

__all__ = ["CFLRUPolicy"]


class CFLRUPolicy(LRUPolicy):
    """CFLRU: LRU order with a clean-first eviction window."""

    name = "cflru"

    def __init__(self, capacity: int, window_fraction: float = 1.0 / 3.0) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(
                f"window fraction must be in (0, 1], got {window_fraction}"
            )
        self.capacity = capacity
        self.window_fraction = window_fraction
        #: Size of the clean-first region (fixed: capacity and fraction are
        #: construction-time constants).
        self.window_size = max(1, int(capacity * window_fraction))

    def select_victim(self) -> int | None:
        # Lazy scan: stop at the first clean page inside the window (the
        # common case), falling back to the window's LRU page when every
        # window page is dirty.
        is_pinned = self._view.is_pinned
        is_dirty = self._view.is_dirty
        window_size = self.window_size
        first_unpinned: int | None = None
        seen = 0
        for page in self._order:
            if is_pinned(page):
                continue
            if first_unpinned is None:
                first_unpinned = page
            if not is_dirty(page):
                return page
            seen += 1
            if seen == window_size:
                break
        return first_unpinned

    def eviction_order(self) -> Iterator[int]:
        """Virtual order: window clean pages, then window dirty, then rest.

        This is a static approximation of CFLRU's behaviour (the window
        boundary shifts as evictions happen), which is exactly what ACE
        needs: the *near-term* eviction candidates in priority order.
        Single pass over the LRU list: the window is collected once and the
        same iterator continues into the tail, so ``next_dirty(n)``-style
        consumers pay O(window + consumed), not O(pool) per call.
        """
        is_pinned = self._view.is_pinned
        is_dirty = self._view.is_dirty
        window_size = self.window_size
        dirty_window: list[int] = []
        seen = 0
        iterator = iter(self._order)  # front = LRU end
        for page in iterator:
            if is_pinned(page):
                continue
            if is_dirty(page):
                dirty_window.append(page)
            else:
                yield page
            seen += 1
            if seen == window_size:
                break
        yield from dirty_window
        for page in iterator:
            if not is_pinned(page):
                yield page
