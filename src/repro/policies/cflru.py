"""Clean-First LRU (CFLRU) — flash-friendly replacement (paper Fig. 4b).

CFLRU keeps the LRU order but splits the list into a *working region*
(recently used) and a *clean-first region* of window size ``W`` at the
eviction end.  Victims are chosen clean-first inside the window: evicting a
clean page avoids a flash write.  Only when the window contains no clean
page does CFLRU fall back to evicting the least-recently-used (dirty) page.

The paper sets the window to one third of the bufferpool, following the
CFLRU authors' recommendation; :class:`CFLRUPolicy` takes the fraction as a
parameter so the window-size ablation bench can sweep it.

The window scan is the policy's hot path (one per miss once the pool is
full), so the window boundary is maintained *incrementally*: ``_window``
and ``_rest`` are the two segments of the LRU list as ordered maps, with
the head of ``_rest`` being exactly the page that slides into the window
when a window page leaves.  Together with ``_window_dirty`` (the count of
dirty window pages, updated from the ``note_dirty``/``note_clean`` hooks)
victim selection is O(1) for the all-clean and all-dirty windows and a
dict-membership scan to the first clean page otherwise — no per-page view
calls.  The segments mirror ``_order``; the single authoritative
description of the clean-first order remains ``eviction_order()``, which
``select_victim`` consumes directly on the reference path.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

from repro.policies.base import PageStateView
from repro.policies.lru import LRUPolicy

__all__ = ["CFLRUPolicy"]


class CFLRUPolicy(LRUPolicy):
    """CFLRU: LRU order with a clean-first eviction window."""

    name = "cflru"

    # select_victim reads the dirty sub-order (window counter + membership
    # scan), so tracking must be live from the first eviction, not lazily
    # from the first bulk read.
    _EAGER_DIRTY_TRACKING = True

    def __init__(self, capacity: int, window_fraction: float = 1.0 / 3.0) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(
                f"window fraction must be in (0, 1], got {window_fraction}"
            )
        self.capacity = capacity
        self.window_fraction = window_fraction
        #: Size of the clean-first region (fixed: capacity and fraction are
        #: construction-time constants).
        self.window_size = max(1, int(capacity * window_fraction))
        # The LRU list's two segments: ``_window`` holds the first
        # min(window_size, len) pages (eviction end), ``_rest`` the
        # remainder, each in LRU order.  Invariant: ``_rest`` is non-empty
        # only while ``_window`` is full.
        self._window: OrderedDict[int, None] = OrderedDict()
        self._rest: OrderedDict[int, None] = OrderedDict()
        #: Number of window pages present in ``_dirty_order`` (meaningful
        #: only under a notifying view; stays 0 otherwise).
        self._window_dirty = 0

    def bind(self, view: PageStateView) -> None:
        super().bind(view)
        self._window_dirty = 0

    # -- segment maintenance ----------------------------------------------

    def insert(self, page: int, cold: bool = False) -> None:
        super().insert(page, cold=cold)
        window = self._window
        if cold:
            # Front of the LRU list = front of the window; a demoted page
            # (the old W-th) becomes the head of the rest segment.
            window[page] = None
            window.move_to_end(page, last=False)
            if len(window) > self.window_size:
                demoted, _ = window.popitem(last=True)
                rest = self._rest
                rest[demoted] = None
                rest.move_to_end(demoted, last=False)
                if demoted in self._dirty_order:
                    self._window_dirty -= 1
        elif len(window) < self.window_size:
            window[page] = None  # rest is empty: MRU end is the window end
        else:
            self._rest[page] = None

    def remove(self, page: int) -> None:
        was_dirty = page in self._dirty_order
        super().remove(page)
        window = self._window
        if page in window:
            del window[page]
            if was_dirty:
                self._window_dirty -= 1
            rest = self._rest
            if rest:
                head = next(iter(rest))
                del rest[head]
                window[head] = None
                if head in self._dirty_order:
                    self._window_dirty += 1
        else:
            del self._rest[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        super().on_access(page, is_write)
        rest = self._rest
        if page in rest:
            rest.move_to_end(page)
            return
        window = self._window
        if not rest:
            # Everything fits inside the window; its end is the MRU end.
            window.move_to_end(page)
            return
        del window[page]
        dirty = self._dirty_order
        if page in dirty:
            self._window_dirty -= 1
        head = next(iter(rest))
        del rest[head]
        window[head] = None
        if head in dirty:
            self._window_dirty += 1
        rest[page] = None

    # -- notifications -----------------------------------------------------

    def note_dirty(self, page: int) -> None:
        if page in self._dirty_order:
            return
        super().note_dirty(page)
        if page in self._dirty_order and page in self._window:
            self._window_dirty += 1

    def note_clean(self, page: int) -> None:
        if page in self._dirty_order and page in self._window:
            self._window_dirty -= 1
        super().note_clean(page)

    # -- decisions ---------------------------------------------------------

    def select_victim(self) -> int | None:
        if self._notified and not self._pinned_pages:
            window = self._window
            if not window:
                return None
            dirty_in_window = self._window_dirty
            if dirty_in_window == 0 or dirty_in_window >= len(window):
                # All clean: the LRU page is clean.  All dirty: CFLRU falls
                # back to the LRU page.  Either way: the window's front.
                return next(iter(window))
            dirty = self._dirty_order
            for page in window:
                if page not in dirty:
                    return page
            return next(iter(window))
        # The victim is by definition the head of the virtual order; the
        # clean-first window scan lives exactly once, in eviction_order().
        return next(iter(self.eviction_order()), None)

    def eviction_order(self) -> Iterator[int]:
        """Virtual order: window clean pages, then window dirty, then rest.

        This is a static approximation of CFLRU's behaviour (the window
        boundary shifts as evictions happen), which is exactly what ACE
        needs: the *near-term* eviction candidates in priority order.
        Single pass over the LRU list: the window is collected once and the
        same iterator continues into the tail, so ``next_dirty(n)``-style
        consumers pay O(window + consumed), not O(pool) per call.
        """
        is_pinned = self._view.is_pinned
        is_dirty = self._view.is_dirty
        window_size = self.window_size
        dirty_window: list[int] = []
        seen = 0
        iterator = iter(self._order)  # front = LRU end
        for page in iterator:
            if is_pinned(page):
                continue
            if is_dirty(page):
                dirty_window.append(page)
            else:
                yield page
            seen += 1
            if seen == window_size:
                break
        yield from dirty_window
        for page in iterator:
            if not is_pinned(page):
                yield page

    # -- maintained fast paths ---------------------------------------------
    #
    # next_dirty/next_clean are inherited from LRUPolicy: lifting clean
    # pages ahead of the window's dirty pages never reorders the dirty
    # pages among themselves (nor the clean ones), so CFLRU's dirty and
    # clean subsequences equal plain LRU's.

    def peek(self, n: int) -> list[int]:
        if not (self._notified and not self._pinned_pages):
            return self._reference_peek(n)
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        selected: list[int] = []
        if n == 0:
            return selected
        dirty = self._dirty_order
        deferred: list[int] = []
        for page in self._window:
            if page in dirty:
                if len(deferred) < n:
                    deferred.append(page)
            else:
                selected.append(page)
                if len(selected) == n:
                    return selected
        for page in deferred:
            selected.append(page)
            if len(selected) == n:
                return selected
        for page in self._rest:
            selected.append(page)
            if len(selected) == n:
                break
        return selected
