"""Overload harness: goodput-vs-offered-load sweeps and the breaker A/B.

The robustness claim this harness guards: with the serving layer in front,
the engine *degrades gracefully* under saturation — offered load beyond
capacity is shed at admission while goodput (on-time completions per
virtual second) stays near the service rate, instead of collapsing into a
queueing cliff where every request waits past its deadline.  The sweep
calibrates each stack's closed-loop service rate, then replays the same
multi-client trace open-loop at multiples of it (0.5x .. 2x), per shedding
policy and per {baseline, ACE} variant, and asserts the no-cliff property:
``goodput(max multiplier) >= graceful_threshold * peak goodput``.

A second experiment A/Bs the circuit breaker: a mistuned ACE stack
(``n_w = 4 * k_w``, so every write-back batch splits into four device
waves) serving near saturation under injected latency spikes, breaker off
vs on.  Tripping degrades batches back to one wave, which shortens both
the triggering request's stall and the queue wait it imposes on everything
behind it — p50/p99 drop deterministically.

Everything runs on seeded virtual time: the same seed reproduces the same
curves, cell by cell.  ``python -m repro overload [--smoke]`` prints the
tables and exits non-zero on any violated assertion.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.bench.runner import StackConfig, build_stack
from repro.engine.executor import ExecutionOptions, run_trace
from repro.engine.multiclient import interleave_traces
from repro.engine.serving import BreakerConfig, ServingConfig, SHED_POLICIES
from repro.faults import FaultPlan
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import WorkloadSpec, generate_trace
from repro.workloads.trace import Trace

__all__ = [
    "OverloadCell",
    "OverloadCurve",
    "BreakerABResult",
    "OverloadReport",
    "DEFAULT_MULTIPLIERS",
    "SMOKE_MULTIPLIERS",
    "make_overload_trace",
    "run_cell",
    "run_overload",
    "run_breaker_ab",
    "smoke_grid",
    "format_report",
    "main",
]

#: Offered-load multipliers of the calibrated service rate.
DEFAULT_MULTIPLIERS = (0.5, 0.75, 1.0, 1.5, 2.0)
SMOKE_MULTIPLIERS = (0.5, 1.0, 2.0)
DEFAULT_VARIANTS = ("baseline", "ace")

#: The sweep workload: write-heavy with 90/10 locality, the regime where
#: ACE's batched write-backs (and their stalls) matter.
_SWEEP_SPEC = WorkloadSpec(
    "overload-mix",
    read_fraction=0.6,
    locality=(0.9, 0.1),
    description="overload sweep mix",
)
_AB_SPEC = WorkloadSpec(
    "breaker-ab",
    read_fraction=0.3,
    locality=(0.9, 0.1),
    description="write-heavy breaker A/B mix",
)


@dataclass(frozen=True)
class OverloadCell:
    """One (stack, shed policy, offered-load multiplier) serving run."""

    policy: str
    variant: str
    shed_policy: str
    multiplier: float
    offered: int
    admitted: int
    shed: int
    expired: int
    requeued: int
    completed: int
    completed_late: int
    failed: int
    offered_per_s: float
    goodput_per_s: float
    p50_us: float
    p99_us: float


@dataclass(frozen=True)
class OverloadCurve:
    """Goodput vs offered load for one (policy, variant, shed policy)."""

    policy: str
    variant: str
    shed_policy: str
    service_rate_per_s: float
    cells: tuple[OverloadCell, ...]

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.variant}/{self.shed_policy}"

    @property
    def peak_goodput_per_s(self) -> float:
        return max(cell.goodput_per_s for cell in self.cells)

    @property
    def goodput_at_max_load_per_s(self) -> float:
        top = max(self.cells, key=lambda cell: cell.multiplier)
        return top.goodput_per_s

    def graceful(self, threshold: float = 0.7) -> bool:
        """No cliff: goodput at the highest offered load holds up."""
        peak = self.peak_goodput_per_s
        if peak <= 0:
            return False
        return self.goodput_at_max_load_per_s >= threshold * peak


@dataclass(frozen=True)
class BreakerABResult:
    """Breaker-off vs breaker-on under latency spikes, same stack and load."""

    policy: str
    p50_off_us: float
    p50_on_us: float
    p99_off_us: float
    p99_on_us: float
    completed_off: int
    completed_on: int
    trips: tuple[tuple[float, int], ...]
    restores: tuple[tuple[float, int], ...]
    recoveries: tuple[tuple[float, int], ...]

    @property
    def tripped(self) -> bool:
        return bool(self.trips)

    @property
    def improved(self) -> bool:
        """The acceptance criterion: the breaker reduced tail latency."""
        return self.tripped and self.p99_on_us < self.p99_off_us


@dataclass(frozen=True)
class OverloadReport:
    """All curves of one sweep plus the breaker A/B."""

    curves: tuple[OverloadCurve, ...]
    breaker: BreakerABResult
    seed: int
    graceful_threshold: float = 0.7

    @property
    def ok(self) -> bool:
        return (
            all(curve.graceful(self.graceful_threshold) for curve in self.curves)
            and self.breaker.improved
        )

    @property
    def failures(self) -> tuple[str, ...]:
        failed = tuple(
            f"cliff: {curve.label} goodput@max="
            f"{curve.goodput_at_max_load_per_s:.0f}/s < "
            f"{self.graceful_threshold:.0%} of peak {curve.peak_goodput_per_s:.0f}/s"
            for curve in self.curves
            if not curve.graceful(self.graceful_threshold)
        )
        if not self.breaker.improved:
            failed += (
                f"breaker: p99 on={self.breaker.p99_on_us:.0f}us !< "
                f"off={self.breaker.p99_off_us:.0f}us "
                f"(trips={len(self.breaker.trips)})",
            )
        return failed


def make_overload_trace(
    num_pages: int, ops: int, seed: int, clients: int = 4
) -> Trace:
    """A multi-client trace with unequal sessions and client attribution.

    Client 0 issues a double share; ``weights="remaining"`` keeps the
    heavy client interleaved proportionally (instead of dominating the
    tail), and the resulting ``client_ids`` let the serving layer bill
    each request to its session.
    """
    per_client = max(1, ops // (clients + 1))
    sizes = [2 * per_client] + [per_client] * (clients - 1)
    traces = [
        generate_trace(_SWEEP_SPEC, num_pages, size, seed=seed + index)
        for index, size in enumerate(sizes)
    ]
    return interleave_traces(
        traces, mode="random", seed=seed, weights="remaining", name="overload"
    )


def _stack_config(
    policy: str,
    variant: str,
    profile: DeviceProfile,
    num_pages: int,
    options: ExecutionOptions,
) -> StackConfig:
    return StackConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=num_pages,
        options=options,
    )


def _calibrate(config: StackConfig, trace: Trace) -> float:
    """Closed-loop service rate (requests per virtual second) of a stack."""
    manager = build_stack(config)
    metrics = run_trace(manager, trace, options=config.options)
    return metrics.ops_per_second


def run_cell(
    config: StackConfig,
    trace: Trace,
    shed_policy: str,
    multiplier: float,
    service_rate_per_s: float,
    queue_capacity: int = 32,
) -> OverloadCell:
    """One open-loop serving run at ``multiplier`` x the service rate."""
    mean_service_us = 1e6 / service_rate_per_s
    serving = ServingConfig(
        queue_capacity=queue_capacity,
        # Generous relative to the worst full-queue wait, so saturation
        # sheds at admission rather than expiring everything it admitted
        # (which is the cliff this harness exists to rule out).
        deadline_us=2.0 * queue_capacity * mean_service_us,
        shed_policy=shed_policy,
        arrival_interval_us=mean_service_us / multiplier,
    )
    manager = build_stack(config)
    metrics = run_trace(manager, trace, options=config.options, serving=serving)
    s = metrics.serving
    return OverloadCell(
        policy=config.policy,
        variant=config.variant,
        shed_policy=shed_policy,
        multiplier=multiplier,
        offered=s.offered,
        admitted=s.admitted,
        shed=s.shed,
        expired=s.expired,
        requeued=s.requeued,
        completed=s.completed,
        completed_late=s.completed_late,
        failed=s.failed,
        offered_per_s=s.offered_per_s,
        goodput_per_s=s.goodput_per_s,
        p50_us=s.latency.p50_us,
        p99_us=s.latency.p99_us,
    )


def run_overload(
    policies: tuple[str, ...] = ("lru",),
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    shed_policies: tuple[str, ...] = SHED_POLICIES,
    multipliers: tuple[float, ...] = DEFAULT_MULTIPLIERS,
    profile: DeviceProfile = PCIE_SSD,
    num_pages: int = 2_000,
    ops: int = 6_000,
    seed: int = 7,
    graceful_threshold: float = 0.7,
) -> OverloadReport:
    """Sweep goodput vs offered load and run the breaker A/B."""
    options = ExecutionOptions()
    trace = make_overload_trace(num_pages, ops, seed)
    curves: list[OverloadCurve] = []
    for policy in policies:
        for variant in variants:
            config = _stack_config(policy, variant, profile, num_pages, options)
            rate = _calibrate(config, trace)
            for shed_policy in shed_policies:
                cells = tuple(
                    run_cell(config, trace, shed_policy, multiplier, rate)
                    for multiplier in multipliers
                )
                curves.append(
                    OverloadCurve(
                        policy=policy,
                        variant=variant,
                        shed_policy=shed_policy,
                        service_rate_per_s=rate,
                        cells=cells,
                    )
                )
    breaker = run_breaker_ab(profile=profile, seed=seed)
    return OverloadReport(
        curves=tuple(curves),
        breaker=breaker,
        seed=seed,
        graceful_threshold=graceful_threshold,
    )


def run_breaker_ab(
    policy: str = "lru",
    profile: DeviceProfile = PCIE_SSD,
    num_pages: int = 4_000,
    ops: int = 6_000,
    seed: int = 7,
    spike_rate: float = 0.005,
    spike_us: float = 4_000.0,
    load: float = 1.0,
) -> BreakerABResult:
    """Deterministic A/B: latency spikes + mistuned ACE, breaker off vs on.

    The stack runs ACE with ``n_w = 4 * k_w`` (four device waves per
    write-back batch — a plausible mistuning when a cloud volume's
    concurrency drops under the configured value) at ``load`` x its
    calibrated service rate, with rare large latency spikes injected.
    Breaker-on degrades batches to one wave while tripped.
    """
    mistuned_n_w = 4 * profile.k_w
    plan = FaultPlan.spikes(spike_rate, spike_us=spike_us, seed=seed)
    options = ExecutionOptions()
    config = StackConfig(
        profile=profile,
        policy=policy,
        variant="ace",
        num_pages=num_pages,
        n_w=mistuned_n_w,
        n_e=mistuned_n_w,
        fault_plan=plan,
        options=options,
    )
    trace = generate_trace(_AB_SPEC, num_pages, ops, seed=seed)
    rate = _calibrate(config, trace)
    interval = 1e6 / (rate * load)
    base = dict(
        queue_capacity=256,
        deadline_us=0.0,  # measure completion latency, not goodput
        arrival_interval_us=interval,
    )
    off = ServingConfig(**base)
    on = ServingConfig(
        **base,
        breaker=BreakerConfig(
            p99_threshold_us=2_500.0,
            window=128,
            min_samples=16,
            eval_every=4,
            cooldown_us=1_000_000.0,
            probation=8,
            degraded_n_w=profile.k_w,
            degraded_n_e=profile.k_w,
        ),
    )
    metrics_off = run_trace(
        build_stack(config), trace, options=options, serving=off
    )
    metrics_on = run_trace(
        build_stack(config), trace, options=options, serving=on
    )
    s_off, s_on = metrics_off.serving, metrics_on.serving
    return BreakerABResult(
        policy=policy,
        p50_off_us=s_off.latency.p50_us,
        p50_on_us=s_on.latency.p50_us,
        p99_off_us=s_off.latency.p99_us,
        p99_on_us=s_on.latency.p99_us,
        completed_off=s_off.completed,
        completed_on=s_on.completed,
        trips=tuple(s_on.breaker_trips),
        restores=tuple(s_on.breaker_restores),
        recoveries=tuple(s_on.breaker_recoveries),
    )


def smoke_grid(seed: int = 7) -> OverloadReport:
    """The CI smoke sweep: one policy, both variants, all shed policies."""
    return run_overload(
        policies=("lru",),
        multipliers=SMOKE_MULTIPLIERS,
        num_pages=1_200,
        ops=4_000,
        seed=seed,
    )


# ------------------------------------------------------------------ report


def format_report(report: OverloadReport) -> str:
    lines: list[str] = []
    header = (
        f"{'stack':<28} {'mult':>5} {'offered/s':>10} {'goodput/s':>10} "
        f"{'shed':>6} {'expired':>8} {'requeued':>9} {'late':>6} "
        f"{'p50us':>8} {'p99us':>9}"
    )
    lines.append("overload sweep (seed %d)" % report.seed)
    lines.append(header)
    lines.append("-" * len(header))
    for curve in report.curves:
        for cell in curve.cells:
            lines.append(
                f"{curve.label:<28} {cell.multiplier:>5.2f} "
                f"{cell.offered_per_s:>10.0f} {cell.goodput_per_s:>10.0f} "
                f"{cell.shed:>6} {cell.expired:>8} {cell.requeued:>9} "
                f"{cell.completed_late:>6} {cell.p50_us:>8.0f} "
                f"{cell.p99_us:>9.0f}"
            )
        verdict = (
            "graceful"
            if curve.graceful(report.graceful_threshold)
            else "CLIFF"
        )
        lines.append(
            f"  -> {verdict}: goodput@max "
            f"{curve.goodput_at_max_load_per_s:.0f}/s vs peak "
            f"{curve.peak_goodput_per_s:.0f}/s "
            f"(threshold {report.graceful_threshold:.0%})"
        )
    ab = report.breaker
    lines.append("")
    lines.append(
        "breaker A/B (mistuned ACE + latency spikes, "
        f"{len(ab.trips)} trip(s), {len(ab.restores)} restore(s)):"
    )
    lines.append(
        f"  off: p50={ab.p50_off_us:.0f}us p99={ab.p99_off_us:.0f}us "
        f"completed={ab.completed_off}"
    )
    lines.append(
        f"  on:  p50={ab.p50_on_us:.0f}us p99={ab.p99_on_us:.0f}us "
        f"completed={ab.completed_on}"
    )
    lines.append(
        "  -> breaker "
        + (
            f"reduced p99 by {100 * (1 - ab.p99_on_us / ab.p99_off_us):.1f}%"
            if ab.improved
            else "DID NOT reduce p99"
        )
    )
    lines.append("")
    if report.ok:
        lines.append("OVERLOAD OK: graceful degradation + breaker win")
    else:
        for failure in report.failures:
            lines.append(f"OVERLOAD FAIL: {failure}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro overload",
        description=(
            "Saturation sweep: goodput vs offered load per shed policy x "
            "{baseline, ACE}, plus the circuit-breaker latency A/B."
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI grid (one policy, 3 multipliers)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--policies", default="lru",
        help="comma-separated replacement policies (full mode)",
    )
    parser.add_argument(
        "--ops", type=int, default=6_000,
        help="requests in the sweep trace (full mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = smoke_grid(seed=args.seed)
    else:
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
        report = run_overload(policies=policies, ops=args.ops, seed=args.seed)
    print(format_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
