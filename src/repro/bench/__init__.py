"""Benchmark harness: experiment runner, replication, reports, plots."""

from repro.bench.plot import heatmap, line_chart
from repro.bench.replication import ReplicatedResult, replicate, replicate_speedup
from repro.bench.report import format_series, format_table, results_dir, write_report
from repro.bench.runner import (
    VARIANTS,
    StackConfig,
    build_stack,
    compare_policies,
    run_config,
    run_config_transactions,
)
from repro.bench.summary import assemble_experiments_md

__all__ = [
    "StackConfig",
    "build_stack",
    "run_config",
    "run_config_transactions",
    "compare_policies",
    "VARIANTS",
    "format_table",
    "format_series",
    "results_dir",
    "write_report",
    "line_chart",
    "heatmap",
    "ReplicatedResult",
    "replicate",
    "replicate_speedup",
    "assemble_experiments_md",
]
