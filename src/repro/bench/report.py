"""Report rendering: ASCII tables and series, mirroring the paper's layout.

Every bench prints the rows/series its figure or table reports and also
writes them under ``results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from pathlib import Path

__all__ = ["format_table", "format_series", "results_dir", "write_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """Render named series against a shared x-axis (a figure's data)."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            row.append(series[name][index])
        rows.append(row)
    return format_table(headers, rows, title=title)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def results_dir() -> Path:
    """Directory where benches persist their reports.

    Defaults to ``results/`` under the current working directory;
    override with the ``REPRO_RESULTS_DIR`` environment variable.
    """
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_report(name: str, text: str) -> Path:
    """Persist a rendered report and echo it to stdout."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
    return path
