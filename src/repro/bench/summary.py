"""Assemble EXPERIMENTS.md from the persisted bench reports.

Each bench writes its rendered rows under ``results/``; this module stitches
those files into a single markdown document with the paper's reference
numbers alongside, so `EXPERIMENTS.md` always reflects the latest run:

    python -m repro.bench.summary [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.report import results_dir

__all__ = ["EXPERIMENT_SECTIONS", "assemble_experiments_md"]

#: (results file stem, section title, what the paper reports) per experiment.
EXPERIMENT_SECTIONS: tuple[tuple[str, str, str], ...] = (
    (
        "table1_devices",
        "Table I — device characteristics",
        "Paper (measured on hardware): Optane α=1.1 k_r=6 k_w=5; PCIe α=2.8 "
        "k_r=80 k_w=8; SATA α=1.5 k_r=25 k_w=9; Virtual α=2.0 k_r=11 k_w=19. "
        "Our probe measures the simulated devices through their public API "
        "and must recover the same values.",
    ),
    (
        "table2_workloads",
        "Table II — synthetic workloads",
        "Paper: MS 50/50 r/w @ 90/10 locality, WIS 10/90 @ 90/10, RIS 90/10 "
        "@ 90/10, MU 50/50 uniform. Generated mixes are validated "
        "empirically.",
    ),
    (
        "fig2_ideal_speedup",
        "Figure 2 — ideal speedup vs asymmetry",
        "Paper: ACE's ideal benefit over an LRU baseline grows with α, up "
        "to ~2.5x. Our closed-form model and emulated-device measurements "
        "must agree and land in the same range.",
    ),
    (
        "fig8_synthetic_runtime",
        "Figures 8a–d — synthetic workload runtime (PCIe SSD)",
        "Paper: ACE+PF cuts runtime by 21.8–26.1% (MS), 28.8–32.1% (WIS), "
        "8.1–13.9% (RIS), 14.5–15.7% (MU). Our gains are larger in absolute "
        "terms (fully synchronous I/O path; see the fidelity note) but must "
        "preserve the ordering WIS > MS > RIS and ACE never losing.",
    ),
    (
        "table3_overheads",
        "Table III — buffer-miss / write overheads",
        "Paper: |Δmiss| ≤ 0.009%, Δl-writes ≤ 0.14%, Δp-writes ≤ 0.17%. At "
        "our (much smaller) pool the re-dirtying effect is proportionally "
        "larger but stays in low single digits — negligible next to the "
        "runtime gains.",
    ),
    (
        "fig9_writes_over_time",
        "Figure 9 — logical vs physical writes over time",
        "Paper: physical writes ≈5–6x logical (GC + wear-leveling); ACE and "
        "baseline write counts nearly identical while ACE runs up to 1.35x "
        "faster.",
    ),
    (
        "fig10ab_low_asymmetry",
        "Figures 10a–b — low-asymmetry devices",
        "Paper: speedups 1.12–1.28x on the SATA SSD and 1.14–1.34x on the "
        "Virtual SSD — smaller than PCIe but always >1.",
    ),
    (
        "fig10cd_rw_ratio",
        "Figures 10c–d — read/write ratio sweep",
        "Paper: 1.57x at write-only (Clock Sweep), 1.34x at 50/50, "
        "vanishing towards read-only where ACE equals the baseline.",
    ),
    (
        "fig10ef_memory_pressure",
        "Figures 10e–f — memory pressure",
        "Paper: speedup peaks around a 6% pool, declines for larger pools "
        "(fewer evictions) and slightly for tiny pools (read-dominated "
        "misses); e.g. ACE-CFLRU 1.29x at 2% vs 1.25x at 10%.",
    ),
    (
        "fig10g_nw_sweep",
        "Figure 10g — write-back concurrency sweep",
        "Paper: speedup climbs with n_w, peaks at n_w = k_w = 8, then "
        "declines; already substantial (1.2–1.3x) at n_w ∈ {4, 6}.",
    ),
    (
        "fig10h_continuum",
        "Figure 10h — (α, n_w) continuum",
        "Paper: ideal speedup grows along both axes; maximum at the "
        "highest asymmetry with n_w = k_w.",
    ),
    (
        "fig10i_device_comparison",
        "Figure 10i — per-device gains vs write intensity",
        "Paper (write-only): PCIe 1.63x > Virtual 1.48x > SATA 1.41x > "
        "Optane 1.33x — ordering by asymmetry.",
    ),
    (
        "fig11_tpcc",
        "Figure 11 — TPC-C transactions",
        "Paper: mix 1.27–1.32x; Delivery up to 1.51x; no gain for the "
        "read-only OrderStatus and StockLevel.",
    ),
    (
        "fig12_tpcc_scaling",
        "Figure 12 — TPC-C scaling",
        "Paper: tpmC gain persists as warehouses grow: 1.33x at 125 "
        "warehouses, 1.24x at 1000.",
    ),
    (
        "ablation_prefetch_placement",
        "Ablation — prefetch placement (extension)",
        "LRU-end placement (paper's choice) must not lose to MRU placement "
        "on a workload with poor predictions.",
    ),
    (
        "ablation_cflru_window",
        "Ablation — CFLRU window size (extension)",
        "ACE helps at every window size; it wraps the policy instead of "
        "retuning it.",
    ),
    (
        "ablation_writeback_trigger",
        "Ablation — write-back trigger (extension)",
        "Demand-driven batching (ACE) vs periodic batched background "
        "flushing vs stock baseline.",
    ),
    (
        "ablation_ne_sweep",
        "Ablation — eviction width n_e (extension)",
        "Wider eviction costs locality; the paper picked n_e = k_w.",
    ),
    (
        "ablation_adaptive",
        "Ablation — adaptive n_w tuning (extension)",
        "The online tuner must converge to k_w and land near the oracle.",
    ),
    (
        "multiclient",
        "Extension — multi-client interleaving",
        "Interleaving 20 clients dilutes locality; ACE's gain persists.",
    ),
    (
        "latency_distribution",
        "Extension — request latency distribution",
        "Beyond the paper's total-runtime metric: ACE shifts cost from the "
        "many dirty-victim misses onto the few batch-triggering requests, "
        "so mean/p95 drop while the tail stays bounded by one batch.",
    ),
    (
        "ycsb",
        "Extension — YCSB core workloads",
        "Complementary access patterns (zipfian, read-latest, scans, RMW): "
        "gains scale with write intensity, read-only C is unchanged.",
    ),
    (
        "partitioned",
        "Extension — partitioned bufferpool",
        "Sharding the pool (as latch-partitioned engines do) costs a little "
        "hit ratio under skew; ACE's batching works unchanged inside each "
        "partition.",
    ),
    (
        "replication",
        "Extension — replication methodology",
        "The paper averages 5 iterations and reports std < 5%; repeated "
        "seeds through the simulator reproduce that stability.",
    ),
)

_HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (§VI), regenerated by
`pytest benchmarks/ --benchmark-only` on the simulated substrate.  Each
section quotes what the paper reports on its hardware, followed by this
repository's measured output (copied verbatim from `results/`).

**How to read the numbers.** Absolute runtimes are virtual-clock seconds,
not PostgreSQL wall-clock.  Because the simulator charges full device
latency synchronously on a single request stream, ACE's speedups land near
the paper's *ideal* analysis (Figure 2) rather than its end-to-end
PostgreSQL numbers, which are diluted by OS caching and 20-way client
overlap.  Every *comparative* claim is expected to hold exactly: ACE never
loses; gains order WIS > MS > RIS and grow with asymmetry and memory
pressure; the n_w optimum sits at k_w; read-only workloads are unchanged;
miss and write deltas stay negligible.  The bench suite asserts these
shapes on every run.

**Scale substitutions.** The paper runs a 15 GB pgbench database and a
50 GB TPC-C (500 warehouses) for 10 minutes per configuration; benches use
scaled-down page counts/op counts with identical pool:data:hot-set
proportions (6 % pool, 90/10 skew) and a TPC-C with reduced per-warehouse
cardinalities (`row_scale`), preserving relative table footprints and the
transaction mix.  StockLevel caps its stock probes at 60 per transaction
(spec: up to 200) to bound trace sizes.

**Known deviations (documented, asserted around).**

1. *Figure 10i, Virtual SSD*: the paper orders write-only gains strictly by
   asymmetry (PCIe 1.63x > Virtual 1.48x).  In our model the Virtual SSD's
   measured k_w = 19 (an IOPS-throttling artifact the paper itself notes
   under Table I) lets ACE amortize writes over a larger batch than PCIe's
   k_w = 8, so Virtual lands at or slightly above PCIe.  The asymmetry
   ordering holds among the NAND devices (PCIe > SATA > Optane) and the
   Virtual SSD still beats every lower-asymmetry device.
2. *Figure 12, absolute tpmC*: the paper sees tpmC decline mildly with data
   volume ("overhead of managing a high volume of data" — CPU-side costs
   the simulator deliberately does not model).  Our absolute tpmC drifts
   slightly the other way; the figure's headline — ACE's gain persisting
   across scales — reproduces.
3. *Magnitudes*: our MS/WIS gains (40-50 %) exceed the paper's end-to-end
   PostgreSQL numbers (20-32 %) and sit near its ideal analysis, as the
   fidelity note above explains; RIS gains (13-19 %) bracket the paper's
   8-14 %.
"""


def assemble_experiments_md(output: str | Path = "EXPERIMENTS.md") -> Path:
    """Build the experiments document from ``results/``; returns the path."""
    directory = results_dir()
    parts = [_HEADER]
    missing: list[str] = []
    for stem, title, paper_summary in EXPERIMENT_SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"{paper_summary}\n")
        report = directory / f"{stem}.txt"
        if report.exists():
            parts.append("```")
            parts.append(report.read_text().rstrip())
            parts.append("```")
        else:
            missing.append(stem)
            parts.append(
                "*(no measured output yet — run "
                f"`pytest benchmarks/ --benchmark-only` to produce "
                f"results/{stem}.txt)*"
            )
    if missing:
        parts.append(
            "\n---\n"
            f"Sections awaiting results: {', '.join(missing)}."
        )
    path = Path(output)
    path.write_text("\n".join(parts) + "\n")
    return path


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    print(f"wrote {assemble_experiments_md(target)}")
