"""One entry point per paper experiment (tables and figures of §VI).

Every function regenerates the rows/series of one table or figure, prints
them, persists them under ``results/``, and returns the structured data so
benchmarks and tests can assert on the *shape* of the result (who wins, by
roughly what factor, where crossovers fall).

Experiment scale
----------------
The paper runs a 15 GB pgbench database (~2M pages) for 10 minutes per
configuration on real hardware; the simulator runs scaled-down page counts
and op counts chosen so the full suite finishes in minutes while keeping the
pool:data:hot-set proportions (6 % pool, 90/10 skew) identical.  The
``PAPER_OPTIONS`` execution model charges 30 us of CPU per page request —
calibrated so the I/O-to-CPU balance resembles a DBMS request path; see
EXPERIMENTS.md for the fidelity discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import speedup_grid, speedup_vs_alpha
from repro.bench.parallel import GridJob, TraceSpec, run_grid
from repro.bench.plot import heatmap, line_chart
from repro.bench.report import format_series, format_table, write_report
from repro.bench.runner import StackConfig, build_stack, run_config
from repro.engine.executor import ExecutionOptions, run_trace
from repro.engine.metrics import RunMetrics, percent_delta, speedup
from repro.policies.registry import PAPER_POLICIES, display_name
from repro.storage.probe import probe_device
from repro.storage.profiles import (
    PAPER_DEVICES,
    PCIE_SSD,
    SATA_SSD,
    VIRTUAL_SSD,
    DeviceProfile,
    emulated_profile,
)
from repro.workloads.synthetic import (
    MS,
    PAPER_WORKLOADS,
    generate_trace,
    rw_ratio_spec,
)
from repro.workloads.tpcc.driver import TPCCWorkload
from repro.workloads.tpcc.transactions import TransactionType

__all__ = [
    "PAPER_OPTIONS",
    "SCALE",
    "table1_device_characteristics",
    "table2_workload_definitions",
    "fig2_ideal_speedup",
    "fig8_synthetic_runtime",
    "table3_overheads",
    "fig9_writes_over_time",
    "fig10ab_low_asymmetry_devices",
    "fig10cd_rw_ratio_sweep",
    "fig10ef_memory_pressure",
    "fig10g_nw_sweep",
    "fig10h_asymmetry_continuum",
    "fig10i_device_comparison",
    "fig11_tpcc_transactions",
    "fig12_tpcc_scaling",
]

#: Execution model for paper-replication runs (see module docstring).
PAPER_OPTIONS = ExecutionOptions(cpu_us_per_op=30.0)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how big the replication runs are."""

    num_pages: int = 20_000
    num_ops: int = 30_000
    pool_fraction: float = 0.06
    seed: int = 42


#: Default scale used by the bench suite.
SCALE = ExperimentScale()


def _synthetic_trace(spec, scale: ExperimentScale = SCALE):
    return generate_trace(spec, scale.num_pages, scale.num_ops, seed=scale.seed)


def _trace_spec(spec, scale: ExperimentScale = SCALE) -> TraceSpec:
    """Picklable recipe for the same trace ``_synthetic_trace`` builds."""
    return TraceSpec(spec, scale.num_pages, scale.num_ops, seed=scale.seed)


def _config(
    profile: DeviceProfile,
    policy: str,
    variant: str,
    scale: ExperimentScale = SCALE,
    pool_fraction: float | None = None,
    n_w: int | None = None,
    n_e: int | None = None,
    with_ftl: bool = False,
) -> StackConfig:
    return StackConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=scale.num_pages,
        pool_fraction=pool_fraction if pool_fraction is not None else scale.pool_fraction,
        n_w=n_w,
        n_e=n_e,
        with_ftl=with_ftl,
        options=PAPER_OPTIONS,
    )


def _run(
    profile: DeviceProfile,
    policy: str,
    variant: str,
    trace,
    scale: ExperimentScale = SCALE,
    pool_fraction: float | None = None,
    n_w: int | None = None,
    n_e: int | None = None,
    with_ftl: bool = False,
) -> RunMetrics:
    config = _config(
        profile, policy, variant, scale,
        pool_fraction=pool_fraction, n_w=n_w, n_e=n_e, with_ftl=with_ftl,
    )
    return run_config(config, trace)


def _run_grid(
    keyed_jobs: list[tuple[object, GridJob]],
    workers: int | None = None,
) -> dict[object, RunMetrics]:
    """Fan a keyed job list over :func:`run_grid`, preserving key order.

    The experiment functions batch every independent (config, trace) pair
    of a figure into one call, so the whole figure parallelises across
    ``workers`` processes (``REPRO_WORKERS`` / ``--workers``); results are
    identical to the serial path.
    """
    keys = [key for key, _ in keyed_jobs]
    metrics = run_grid([job for _, job in keyed_jobs], workers=workers)
    return dict(zip(keys, metrics))


# --------------------------------------------------------------- Table I


def table1_device_characteristics() -> dict[str, dict[str, float]]:
    """Table I: measured alpha, k_r, k_w of the four devices.

    The probe measures the simulated devices through their public API
    (latency ratios, throughput knees), regenerating the table rather than
    echoing configuration.
    """
    rows = []
    data: dict[str, dict[str, float]] = {}
    for profile in PAPER_DEVICES:
        measured = probe_device(profile, max_batch=96)
        rows.append(
            [
                measured.name,
                f"{measured.alpha:.1f}",
                measured.k_r,
                measured.k_w,
                f"{measured.read_latency_us:.0f}",
                f"{measured.write_latency_us:.0f}",
            ]
        )
        data[measured.name] = {
            "alpha": measured.alpha,
            "k_r": measured.k_r,
            "k_w": measured.k_w,
        }
    text = format_table(
        ["Device", "alpha", "k_r", "k_w", "read us", "write us"],
        rows,
        title="Table I: empirically measured device characteristics",
    )
    write_report("table1_devices", text)
    return data


# --------------------------------------------------------------- Table II


def table2_workload_definitions(
    scale: ExperimentScale = SCALE,
) -> dict[str, dict[str, float]]:
    """Table II: the four synthetic workloads, validated empirically."""
    rows = []
    data: dict[str, dict[str, float]] = {}
    for spec in PAPER_WORKLOADS:
        trace = _synthetic_trace(spec, scale)
        measured_locality = trace.locality(
            hot_fraction=0.1, total_pages=scale.num_pages
        )
        rows.append(
            [
                spec.name,
                spec.description,
                f"{trace.read_fraction:.3f}",
                f"{measured_locality:.3f}" if spec.locality else "uniform",
            ]
        )
        data[spec.name] = {
            "read_fraction": trace.read_fraction,
            "locality": measured_locality,
        }
    text = format_table(
        ["Workload", "Definition", "measured read frac", "measured locality"],
        rows,
        title="Table II: synthetic workload definitions (measured)",
    )
    write_report("table2_workloads", text)
    return data


# --------------------------------------------------------------- Figure 2


def fig2_ideal_speedup(
    scale: ExperimentScale | None = None,
    workers: int | None = None,
) -> dict[str, list[float]]:
    """Figure 2: ideal ACE-vs-LRU speedup as device asymmetry grows.

    Combines the closed-form model with measured runs on emulated
    (overhead-free) devices; the curves should agree and reach ~2.5x at
    high asymmetry, as the paper's motivation figure shows.
    """
    if scale is None:
        scale = ExperimentScale(num_pages=8_000, num_ops=12_000)
    alphas = [1.0, 1.5, 2.0, 2.8, 4.0, 6.0, 8.0]
    model_curve = speedup_vs_alpha(
        alphas, k_w=8, dirty_fraction=0.55, miss_ratio=0.55, cpu_per_read=0.33
    )
    spec = _trace_spec(MS, scale)
    jobs: list[tuple[object, GridJob]] = []
    for alpha in alphas:
        profile = emulated_profile(alpha=alpha, k_w=8)
        for variant in ("baseline", "ace"):
            config = _config(profile, "lru", variant, scale)
            jobs.append(((alpha, variant), GridJob(config, trace=spec)))
    results = _run_grid(jobs, workers=workers)
    measured_curve = [
        speedup(results[(alpha, "baseline")], results[(alpha, "ace")])
        for alpha in alphas
    ]
    text = format_series(
        "alpha",
        alphas,
        {"model speedup": model_curve, "measured speedup": measured_curve},
        title="Figure 2: ideal speedup of ACE (LRU baseline) vs asymmetry",
    )
    chart = line_chart(
        alphas,
        {"model": model_curve, "measured": measured_curve},
        title="speedup vs alpha",
        y_label="speedup",
    )
    write_report("fig2_ideal_speedup", text + "\n\n" + chart)
    return {"alphas": alphas, "model": model_curve, "measured": measured_curve}


# --------------------------------------------------------------- Figure 8


def fig8_synthetic_runtime(
    scale: ExperimentScale = SCALE,
    policies: tuple[str, ...] = PAPER_POLICIES,
    workers: int | None = None,
) -> dict[str, dict[tuple[str, str], RunMetrics]]:
    """Figures 8a-d: runtime of baseline/ACE/ACE+PF on MS, WIS, RIS, MU.

    PCIe SSD (alpha=2.8, k_w=8), bufferpool 6 % of the data.  The paper
    reports up to 32.1 % lower runtime, largest on the write-intensive
    workload.  All 48 (workload, policy, variant) runs fan out over one
    worker grid.
    """
    jobs: list[tuple[object, GridJob]] = []
    for spec in PAPER_WORKLOADS:
        trace_spec = _trace_spec(spec, scale)
        for policy in policies:
            for variant in ("baseline", "ace", "ace+pf"):
                config = _config(PCIE_SSD, policy, variant, scale)
                jobs.append(
                    ((spec.name, policy, variant), GridJob(config, trace=trace_spec))
                )
    flat = _run_grid(jobs, workers=workers)
    results: dict[str, dict[tuple[str, str], RunMetrics]] = {}
    for spec in PAPER_WORKLOADS:
        results[spec.name] = {
            (policy, variant): flat[(spec.name, policy, variant)]
            for policy in policies
            for variant in ("baseline", "ace", "ace+pf")
        }

    sections = []
    for spec in PAPER_WORKLOADS:
        per_workload = results[spec.name]
        rows = []
        for policy in policies:
            base = per_workload[(policy, "baseline")]
            ace = per_workload[(policy, "ace")]
            ace_pf = per_workload[(policy, "ace+pf")]
            rows.append(
                [
                    display_name(policy),
                    f"{base.runtime_s:.3f}",
                    f"{ace.runtime_s:.3f}",
                    f"{ace_pf.runtime_s:.3f}",
                    f"{100 * (1 - ace.elapsed_us / base.elapsed_us):.1f}%",
                    f"{100 * (1 - ace_pf.elapsed_us / base.elapsed_us):.1f}%",
                ]
            )
        sections.append(
            format_table(
                [
                    "Policy",
                    "baseline (s)",
                    "ACE (s)",
                    "ACE+PF (s)",
                    "ACE gain",
                    "ACE+PF gain",
                ],
                rows,
                title=f"Figure 8 ({spec.name}): workload runtime",
            )
        )
    write_report("fig8_synthetic_runtime", "\n\n".join(sections))
    return results


# --------------------------------------------------------------- Table III


def table3_overheads(
    scale: ExperimentScale = SCALE,
    policies: tuple[str, ...] = PAPER_POLICIES,
    workers: int | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Table III: Δ buffer miss, Δ logical writes, Δ physical writes.

    Compares ACE (with prefetching, per the paper's footnote — it is the
    variant causing the most writes) against the baseline.  All deltas
    should be fractions of a percent.
    """
    jobs: list[tuple[object, GridJob]] = []
    for spec in PAPER_WORKLOADS:
        trace_spec = _trace_spec(spec, scale)
        for policy in policies:
            for variant in ("baseline", "ace+pf"):
                config = _config(PCIE_SSD, policy, variant, scale, with_ftl=True)
                jobs.append(
                    ((spec.name, policy, variant), GridJob(config, trace=trace_spec))
                )
    flat = _run_grid(jobs, workers=workers)
    results: dict[str, dict[str, dict[str, float]]] = {}
    rows = []
    for spec in PAPER_WORKLOADS:
        results[spec.name] = {}
        for policy in policies:
            base = flat[(spec.name, policy, "baseline")]
            ace = flat[(spec.name, policy, "ace+pf")]
            deltas = {
                "miss": percent_delta(base.buffer.misses, ace.buffer.misses),
                "l_writes": percent_delta(base.logical_writes, ace.logical_writes),
                "p_writes": percent_delta(base.physical_writes, ace.physical_writes),
            }
            results[spec.name][policy] = deltas
            rows.append(
                [
                    spec.name,
                    display_name(policy),
                    f"{deltas['miss']:+.3f}%",
                    f"{deltas['l_writes']:+.3f}%",
                    f"{deltas['p_writes']:+.3f}%",
                ]
            )
    text = format_table(
        ["WL", "Policy", "Δmiss", "Δl-writes", "Δp-writes"],
        rows,
        title="Table III: ACE+PF overhead vs baseline (percent deltas)",
    )
    write_report("table3_overheads", text)
    return results


# --------------------------------------------------------------- Figure 9


def fig9_writes_over_time(
    scale: ExperimentScale | None = None,
    checkpoints: int = 6,
) -> dict[str, dict[str, list[float]]]:
    """Figure 9: logical vs physical writes over an extended run.

    LRU-WSR vs ACE-LRU-WSR on the FTL-backed PCIe SSD.  Physical writes run
    a constant factor above logical writes (GC/wear), and the two systems'
    write counts stay nearly identical while ACE finishes faster.
    """
    if scale is None:
        scale = ExperimentScale(num_pages=12_000, num_ops=48_000)
    trace = _synthetic_trace(MS, scale)
    segment = len(trace) // checkpoints
    data: dict[str, dict[str, list[float]]] = {}
    for variant in ("baseline", "ace+pf"):
        config = StackConfig(
            profile=PCIE_SSD,
            policy="lru_wsr",
            variant=variant,
            num_pages=scale.num_pages,
            pool_fraction=scale.pool_fraction,
            with_ftl=True,
            over_provision=0.08,
            options=PAPER_OPTIONS,
        )
        manager = build_stack(config)
        logical: list[float] = []
        physical: list[float] = []
        elapsed: list[float] = []
        for index in range(checkpoints):
            part = trace.slice(index * segment, (index + 1) * segment)
            run_trace(manager, part, options=PAPER_OPTIONS)
            logical.append(manager.device.stats.writes)
            physical.append(manager.device.ftl.counters.physical_writes)
            elapsed.append(manager.device.clock.now_us / 1e6)
        label = "LRU-WSR" if variant == "baseline" else "ACE-LRU-WSR"
        data[label] = {
            "logical": logical,
            "physical": physical,
            "elapsed_s": elapsed,
        }
    checkpoints_axis = list(range(1, checkpoints + 1))
    text = format_series(
        "segment",
        checkpoints_axis,
        {
            "LW (LRU-WSR)": data["LRU-WSR"]["logical"],
            "PW (LRU-WSR)": data["LRU-WSR"]["physical"],
            "LW (ACE)": data["ACE-LRU-WSR"]["logical"],
            "PW (ACE)": data["ACE-LRU-WSR"]["physical"],
            "t(s) base": data["LRU-WSR"]["elapsed_s"],
            "t(s) ACE": data["ACE-LRU-WSR"]["elapsed_s"],
        },
        title="Figure 9: logical/physical writes over an extended run (MS)",
    )
    write_report("fig9_writes_over_time", text)
    return data


# ------------------------------------------------------------ Figure 10a/b


def fig10ab_low_asymmetry_devices(
    scale: ExperimentScale = SCALE,
    policies: tuple[str, ...] = PAPER_POLICIES,
    workers: int | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Figures 10a-b: ACE speedup on the SATA and Virtual SSDs.

    Lower asymmetry than the PCIe device, so smaller — but still real —
    speedups (paper: 1.12-1.28x SATA, 1.14-1.34x Virtual).
    """
    jobs: list[tuple[object, GridJob]] = []
    for profile in (SATA_SSD, VIRTUAL_SSD):
        for spec in PAPER_WORKLOADS:
            trace_spec = _trace_spec(spec, scale)
            for policy in policies:
                for variant in ("baseline", "ace+pf"):
                    config = _config(profile, policy, variant, scale)
                    jobs.append((
                        (profile.name, spec.name, policy, variant),
                        GridJob(config, trace=trace_spec),
                    ))
    flat = _run_grid(jobs, workers=workers)
    data: dict[str, dict[str, dict[str, float]]] = {}
    sections = []
    for profile in (SATA_SSD, VIRTUAL_SSD):
        data[profile.name] = {}
        rows = []
        for spec in PAPER_WORKLOADS:
            per_policy: dict[str, float] = {}
            for policy in policies:
                base = flat[(profile.name, spec.name, policy, "baseline")]
                ace = flat[(profile.name, spec.name, policy, "ace+pf")]
                per_policy[policy] = speedup(base, ace)
            data[profile.name][spec.name] = per_policy
            rows.append(
                [spec.name]
                + [f"{per_policy[policy]:.2f}x" for policy in policies]
            )
        sections.append(
            format_table(
                ["Workload"] + [display_name(p) for p in policies],
                rows,
                title=f"Figure 10 ({profile.name}): ACE+PF speedup",
            )
        )
    write_report("fig10ab_low_asymmetry", "\n\n".join(sections))
    return data


# ------------------------------------------------------------ Figure 10c/d


def fig10cd_rw_ratio_sweep(
    scale: ExperimentScale = SCALE,
    policies: tuple[str, ...] = PAPER_POLICIES,
    read_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0),
    workers: int | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Figures 10c-d: speedup and runtime vs read/write ratio (PCIe).

    Locality fixed at 90/10.  Gains are largest write-only (paper: 1.57x for
    Clock Sweep), shrink towards read-only, and never go below 1.
    """
    jobs: list[tuple[object, GridJob]] = []
    for read_fraction in read_fractions:
        trace_spec = _trace_spec(rw_ratio_spec(read_fraction), scale)
        for policy in policies:
            for variant in ("baseline", "ace+pf"):
                config = _config(PCIE_SSD, policy, variant, scale)
                jobs.append((
                    (read_fraction, policy, variant),
                    GridJob(config, trace=trace_spec),
                ))
    flat = _run_grid(jobs, workers=workers)
    speedups: dict[str, list[float]] = {policy: [] for policy in policies}
    runtimes: dict[str, list[float]] = {}
    for policy in policies:
        runtimes[f"{policy} base"] = []
        runtimes[f"{policy} ace"] = []
    for read_fraction in read_fractions:
        for policy in policies:
            base = flat[(read_fraction, policy, "baseline")]
            ace = flat[(read_fraction, policy, "ace+pf")]
            speedups[policy].append(speedup(base, ace))
            runtimes[f"{policy} base"].append(base.runtime_s)
            runtimes[f"{policy} ace"].append(ace.runtime_s)
    ratio_labels = [f"{int(f * 100)}/{int(100 - f * 100)}" for f in read_fractions]
    text_c = format_series(
        "r/w ratio",
        ratio_labels,
        {display_name(p): [f"{s:.2f}x" for s in speedups[p]] for p in policies},
        title="Figure 10c: ACE+PF speedup vs read/write ratio (PCIe SSD)",
    )
    text_d = format_series(
        "r/w ratio",
        ratio_labels,
        {name: [f"{v:.3f}" for v in series] for name, series in runtimes.items()},
        title="Figure 10d: runtime (s) vs read/write ratio (PCIe SSD)",
    )
    write_report("fig10cd_rw_ratio", text_c + "\n\n" + text_d)
    return {"speedups": speedups, "read_fractions": list(read_fractions)}


# ------------------------------------------------------------ Figure 10e/f


def fig10ef_memory_pressure(
    scale: ExperimentScale = SCALE,
    policies: tuple[str, ...] = PAPER_POLICIES,
    pool_fractions: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
    workers: int | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Figures 10e-f: runtime and speedup vs bufferpool size (MS, PCIe).

    The hot set is 10 % of the data, so beyond a ~10 % pool the working set
    fits and both runtime and speedup collapse; the speedup peaks under
    memory pressure.
    """
    trace_spec = _trace_spec(MS, scale)
    jobs: list[tuple[object, GridJob]] = []
    for fraction in pool_fractions:
        for policy in policies:
            for variant in ("baseline", "ace+pf"):
                config = _config(
                    PCIE_SSD, policy, variant, scale, pool_fraction=fraction
                )
                jobs.append((
                    (fraction, policy, variant),
                    GridJob(config, trace=trace_spec),
                ))
    flat = _run_grid(jobs, workers=workers)
    runtimes: dict[str, list[float]] = {}
    speedups: dict[str, list[float]] = {policy: [] for policy in policies}
    for policy in policies:
        runtimes[f"{policy} base"] = []
        runtimes[f"{policy} ace"] = []
    for fraction in pool_fractions:
        for policy in policies:
            base = flat[(fraction, policy, "baseline")]
            ace = flat[(fraction, policy, "ace+pf")]
            runtimes[f"{policy} base"].append(base.runtime_s)
            runtimes[f"{policy} ace"].append(ace.runtime_s)
            speedups[policy].append(speedup(base, ace))
    labels = [f"{fraction:.0%}" for fraction in pool_fractions]
    text_e = format_series(
        "pool size",
        labels,
        {name: [f"{v:.3f}" for v in series] for name, series in runtimes.items()},
        title="Figure 10e: runtime (s) vs bufferpool size (MS, PCIe SSD)",
    )
    text_f = format_series(
        "pool size",
        labels,
        {display_name(p): [f"{s:.2f}x" for s in speedups[p]] for p in policies},
        title="Figure 10f: ACE+PF speedup vs bufferpool size (MS, PCIe SSD)",
    )
    write_report("fig10ef_memory_pressure", text_e + "\n\n" + text_f)
    return {
        "speedups": speedups,
        "pool_fractions": list(pool_fractions),
        "runtimes": runtimes,
    }


# -------------------------------------------------------------- Figure 10g


def fig10g_nw_sweep(
    scale: ExperimentScale = SCALE,
    policies: tuple[str, ...] = PAPER_POLICIES,
    n_ws: tuple[int, ...] = (1, 2, 4, 6, 8, 10, 12, 16),
    workers: int | None = None,
) -> dict[str, list[float]]:
    """Figure 10g: speedup vs write-back batch size n_w (MS, PCIe SSD).

    Speedup climbs with n_w, peaks at the device's k_w = 8, then declines
    (queue pressure past the device concurrency).
    """
    trace_spec = _trace_spec(MS, scale)
    jobs: list[tuple[object, GridJob]] = []
    for policy in policies:
        jobs.append((
            (policy, "baseline", None),
            GridJob(_config(PCIE_SSD, policy, "baseline", scale), trace=trace_spec),
        ))
        for n_w in n_ws:
            config = _config(PCIE_SSD, policy, "ace", scale, n_w=n_w, n_e=n_w)
            jobs.append(((policy, "ace", n_w), GridJob(config, trace=trace_spec)))
    flat = _run_grid(jobs, workers=workers)
    speedups: dict[str, list[float]] = {}
    for policy in policies:
        base = flat[(policy, "baseline", None)]
        speedups[policy] = [
            speedup(base, flat[(policy, "ace", n_w)]) for n_w in n_ws
        ]
    text = format_series(
        "n_w",
        list(n_ws),
        {display_name(p): [f"{s:.2f}x" for s in speedups[p]] for p in policies},
        title="Figure 10g: ACE speedup vs n_w (MS, PCIe SSD, k_w=8)",
    )
    chart = line_chart(
        list(n_ws),
        {display_name(p): speedups[p] for p in policies},
        title="speedup vs n_w (peak at k_w = 8)",
        y_label="speedup",
    )
    write_report("fig10g_nw_sweep", text + "\n\n" + chart)
    speedups["n_ws"] = list(n_ws)
    return speedups


# -------------------------------------------------------------- Figure 10h


def fig10h_asymmetry_continuum(
    scale: ExperimentScale | None = None,
    alphas: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    n_ws: tuple[int, ...] = (1, 2, 4, 8),
    workers: int | None = None,
) -> dict[str, object]:
    """Figure 10h: ideal speedup over the (alpha, n_w) continuum, k_w = 8.

    LRU vs ACE-LRU without prefetching on emulated overhead-free devices,
    next to the closed-form model grid.  The maximum sits at the corner
    where both asymmetry and concurrency are largest.
    """
    if scale is None:
        scale = ExperimentScale(num_pages=8_000, num_ops=12_000)
    trace_spec = _trace_spec(MS, scale)
    jobs: list[tuple[object, GridJob]] = []
    for alpha in alphas:
        profile = emulated_profile(alpha=alpha, k_w=8)
        jobs.append((
            (alpha, "baseline", None),
            GridJob(_config(profile, "lru", "baseline", scale), trace=trace_spec),
        ))
        for n_w in n_ws:
            config = _config(profile, "lru", "ace", scale, n_w=n_w, n_e=n_w)
            jobs.append(((alpha, "ace", n_w), GridJob(config, trace=trace_spec)))
    flat = _run_grid(jobs, workers=workers)
    measured: list[list[float]] = []
    for alpha in alphas:
        baseline = flat[(alpha, "baseline", None)]
        measured.append(
            [speedup(baseline, flat[(alpha, "ace", n_w)]) for n_w in n_ws]
        )
    model = speedup_grid(list(alphas), list(n_ws), k_w=8, dirty_fraction=0.55)
    rows = []
    for alpha, measured_row, model_row in zip(alphas, measured, model):
        rows.append(
            [f"alpha={alpha:g}"]
            + [f"{m:.2f}x ({i:.2f}x)" for m, i in zip(measured_row, model_row)]
        )
    text = format_table(
        ["", *[f"n_w={n}" for n in n_ws]],
        rows,
        title=(
            "Figure 10h: measured (model) speedup continuum, "
            "ACE-LRU no prefetch, k_w=8"
        ),
    )
    chart = heatmap(
        [f"alpha={a:g}" for a in alphas],
        [f"n_w={n}" for n in n_ws],
        measured,
        title="measured speedup heatmap",
    )
    write_report("fig10h_continuum", text + "\n\n" + chart)
    return {
        "alphas": list(alphas),
        "n_ws": list(n_ws),
        "measured": measured,
        "model": model,
    }


# -------------------------------------------------------------- Figure 10i


def fig10i_device_comparison(
    scale: ExperimentScale = SCALE,
    read_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    workers: int | None = None,
) -> dict[str, list[float]]:
    """Figure 10i: ACE-LRU-WSR speedup vs r/w ratio across all four devices.

    Higher-asymmetry devices gain more at every write intensity (paper:
    1.63x PCIe > 1.48x Virtual > 1.41x SATA > 1.33x Optane at write-only).
    """
    jobs: list[tuple[object, GridJob]] = []
    for profile in PAPER_DEVICES:
        for read_fraction in read_fractions:
            trace_spec = _trace_spec(rw_ratio_spec(read_fraction), scale)
            for variant in ("baseline", "ace+pf"):
                config = _config(profile, "lru_wsr", variant, scale)
                jobs.append((
                    (profile.name, read_fraction, variant),
                    GridJob(config, trace=trace_spec),
                ))
    flat = _run_grid(jobs, workers=workers)
    speedups: dict[str, list[float]] = {}
    for profile in PAPER_DEVICES:
        speedups[profile.name] = [
            speedup(
                flat[(profile.name, read_fraction, "baseline")],
                flat[(profile.name, read_fraction, "ace+pf")],
            )
            for read_fraction in read_fractions
        ]
    labels = [f"{int(f * 100)}/{int(100 - f * 100)}" for f in read_fractions]
    text = format_series(
        "r/w ratio",
        labels,
        {name: [f"{s:.2f}x" for s in series] for name, series in speedups.items()},
        title="Figure 10i: ACE-LRU-WSR speedup vs r/w ratio, per device",
    )
    write_report("fig10i_device_comparison", text)
    speedups["read_fractions"] = list(read_fractions)
    return speedups


# ---------------------------------------------------------------- Figure 11


def _tpcc_stream(workload: TPCCWorkload, count: int, only=None):
    return list(workload.transaction_stream(count, only=only))


def fig11_tpcc_transactions(
    warehouses: int = 8,
    row_scale: float = 0.05,
    mix_transactions: int = 900,
    single_transactions: int = 500,
    policies: tuple[str, ...] = PAPER_POLICIES,
    pool_fraction: float = 0.06,
    workers: int | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 11: TPC-C speedups for the mix and each transaction type.

    The paper: mix 1.27-1.32x, Delivery (write-heavy) up to 1.51x, and no
    gain for the read-only OrderStatus / StockLevel transactions.
    """
    seeds = {"db": 42}
    workload_cases: list[tuple[str, TransactionType | None, int]] = [
        ("Mix", None, mix_transactions),
        ("NewOrder", TransactionType.NEW_ORDER, single_transactions),
        ("Payment", TransactionType.PAYMENT, single_transactions),
        ("OrderStatus", TransactionType.ORDER_STATUS, single_transactions),
        ("StockLevel", TransactionType.STOCK_LEVEL, max(150, single_transactions // 3)),
        ("Delivery", TransactionType.DELIVERY, max(150, single_transactions // 3)),
    ]
    jobs: list[tuple[object, GridJob]] = []
    for case_name, only, count in workload_cases:
        # One transaction stream per case, shared by every configuration.
        reference = TPCCWorkload(
            warehouses=warehouses, row_scale=row_scale, seed=seeds["db"]
        )
        stream = tuple(_tpcc_stream(reference, count, only=only))
        num_pages = reference.total_pages
        for policy in policies:
            for variant in ("baseline", "ace+pf"):
                config = StackConfig(
                    profile=PCIE_SSD,
                    policy=policy,
                    variant=variant,
                    num_pages=num_pages,
                    pool_fraction=pool_fraction,
                    options=PAPER_OPTIONS,
                )
                jobs.append((
                    (case_name, policy, variant),
                    GridJob(
                        config,
                        transactions=stream,
                        label=f"tpcc/{case_name}/{policy}/{variant}",
                    ),
                ))
    flat = _run_grid(jobs, workers=workers)
    data: dict[str, dict[str, float]] = {}
    rows = []
    for case_name, _only, _count in workload_cases:
        per_policy = {
            policy: speedup(
                flat[(case_name, policy, "baseline")],
                flat[(case_name, policy, "ace+pf")],
            )
            for policy in policies
        }
        data[case_name] = per_policy
        rows.append(
            [case_name] + [f"{per_policy[p]:.2f}x" for p in policies]
        )
    text = format_table(
        ["Transaction"] + [display_name(p) for p in policies],
        rows,
        title=f"Figure 11: TPC-C speedup of ACE+PF ({warehouses} warehouses)",
    )
    write_report("fig11_tpcc", text)
    return data


# ---------------------------------------------------------------- Figure 12


def fig12_tpcc_scaling(
    warehouse_counts: tuple[int, ...] = (2, 4, 8, 16),
    row_scale: float = 0.05,
    transactions: int = 700,
    pool_fraction: float = 0.06,
    workers: int | None = None,
) -> dict[str, list[float]]:
    """Figure 12: tpmC of LRU vs ACE-LRU as the database grows.

    The bufferpool is kept at 6 % of the database size at every scale; the
    paper reports the gain persisting (1.33x at the smallest scale, 1.24x
    at the largest).
    """
    jobs: list[tuple[object, GridJob]] = []
    for warehouses in warehouse_counts:
        reference = TPCCWorkload(
            warehouses=warehouses, row_scale=row_scale, seed=42
        )
        stream = tuple(_tpcc_stream(reference, transactions))
        for variant, label in (("baseline", "LRU"), ("ace+pf", "ACE-LRU")):
            config = StackConfig(
                profile=PCIE_SSD,
                policy="lru",
                variant=variant,
                num_pages=reference.total_pages,
                pool_fraction=pool_fraction,
                options=PAPER_OPTIONS,
            )
            jobs.append((
                (warehouses, label),
                GridJob(
                    config,
                    transactions=stream,
                    label=f"tpcc-scale/{warehouses}/{label}",
                ),
            ))
    flat = _run_grid(jobs, workers=workers)
    tpmc: dict[str, list[float]] = {"LRU": [], "ACE-LRU": []}
    gains: list[float] = []
    for warehouses in warehouse_counts:
        base = flat[(warehouses, "LRU")]
        ace = flat[(warehouses, "ACE-LRU")]
        tpmc["LRU"].append(base.tpmc)
        tpmc["ACE-LRU"].append(ace.tpmc)
        gains.append(ace.tpmc / base.tpmc)
    text = format_series(
        "warehouses",
        list(warehouse_counts),
        {
            "tpmC LRU": [f"{v:.0f}" for v in tpmc["LRU"]],
            "tpmC ACE-LRU": [f"{v:.0f}" for v in tpmc["ACE-LRU"]],
            "gain": [f"{g:.2f}x" for g in gains],
        },
        title="Figure 12: tpmC scaling with data size (TPC-C mix)",
    )
    write_report("fig12_tpcc_scaling", text)
    return {"tpmc": tpmc, "gains": gains, "warehouses": list(warehouse_counts)}
