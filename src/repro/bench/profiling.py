"""Shared cProfile wrapper for ``repro run --profile`` and the perf bench.

Profiling a simulator run answers "where did the wall-clock go" — the
question behind every hot-path PR — without any external tooling: the
stdlib ``cProfile``/``pstats`` pair collects per-function timings, the
dump is written for later drill-down (``python -m pstats dump.pstats``,
snakeviz, gprof2dot, ...), and the top of the cumulative table is printed
immediately so the answer is one flag away.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from collections.abc import Callable
from typing import TypeVar

__all__ = ["run_profiled"]

T = TypeVar("T")


def run_profiled(
    func: Callable[[], T],
    output: str,
    top: int = 20,
    sort: str = "cumulative",
) -> T:
    """Run ``func`` under cProfile; dump stats to ``output`` and print.

    The pstats dump is written and the top ``top`` entries of the
    ``sort``-ordered table are printed even if ``func`` raises, so a
    crashing or interrupted run still yields its profile.  Returns
    ``func()``'s result.
    """
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        try:
            return func()
        finally:
            profiler.disable()
    finally:
        profiler.dump_stats(output)
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats(sort).print_stats(top)
        print(f"profile written to {output} (top {top} by {sort}):")
        print(stream.getvalue().rstrip())
