"""Cluster bench: shards x placement x policy sweep + throughput epoch.

The aggregate-throughput claim this bench records: splitting one trace
across N independent shard nodes multiplies wall-clock replay throughput
by roughly the shard count, because each shard replays its subtrace on
the PR 6 turbo path with a private bufferpool and no coordination.  The
sweep replays the same MS trace through every (policy, shard count,
placement) cell and reports two numbers per cell:

* **aggregate accesses/second** under the makespan model — total ops
  over the slowest shard's in-worker replay wall (what N true cores
  would sustain);
* the **(cut, imbalance) Pareto point** of the cell's placement on the
  trace's co-access graph — hash placement balances load but cuts
  locality edges blindly; the greedy districting partitioner trades a
  bounded imbalance for strictly fewer cut edges.

The bench asserts the placement claim (locality cut <= hash cut at every
shard count, strict at the headline shard count) and exits non-zero when
it fails.  ``--record`` appends a full perf epoch — including the
cluster section the ``CLUSTER_FLOORS`` CI gate reads — to
``BENCH_throughput.json`` via :mod:`repro.bench.perf`, so there is a
single epoch writer.

Everything is deterministic: seeded trace, deterministic router and
partitioner, and merged metrics that are byte-identical at any worker
count.  ``python -m repro cluster [--smoke]`` prints the tables.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from dataclasses import dataclass

from repro.bench.report import format_table
from repro.cluster.engine import ClusterConfig, ClusterMetrics, run_cluster
from repro.cluster.placement import (
    CoAccessGraph,
    coaccess_from_trace,
    hash_placement,
    imbalance,
    locality_placement,
    placement_report,
)
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import MS, generate_trace

__all__ = [
    "ClusterCell",
    "ClusterSweepReport",
    "DEFAULT_SHARDS",
    "DEFAULT_POLICIES",
    "run_cell",
    "run_sweep",
    "smoke_grid",
    "format_report",
    "main",
]

DEFAULT_SHARDS = (1, 2, 4)
DEFAULT_POLICIES = ("lru", "clock", "cflru")
DEFAULT_PLACEMENTS = ("hash", "locality")

#: The shard count whose locality-vs-hash cut must improve *strictly*
#: (the headline 4-shard configuration the perf epoch records).
HEADLINE_SHARDS = 4


@dataclass(frozen=True)
class ClusterCell:
    """One (policy, variant, shards, placement) cluster replay."""

    policy: str
    variant: str
    shards: int
    placement: str
    ops: int
    aggregate_accesses_per_sec: float
    makespan_wall_s: float
    ops_imbalance: float
    cut_edges: float
    cut_fraction: float
    load_imbalance: float
    elapsed_us: float
    hit_ratio: float

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.variant}/s{self.shards}/{self.placement}"


@dataclass(frozen=True)
class ClusterSweepReport:
    """Every cell of one sweep plus the placement-claim verdict."""

    seed: int
    num_pages: int
    num_ops: int
    cells: tuple[ClusterCell, ...]

    def cell(self, policy: str, variant: str, shards: int,
             placement: str) -> ClusterCell | None:
        for candidate in self.cells:
            if (candidate.policy, candidate.variant, candidate.shards,
                    candidate.placement) == (policy, variant, shards,
                                             placement):
                return candidate
        return None

    @property
    def placement_failures(self) -> list[str]:
        """Cells where locality placement cut MORE edges than hash."""
        failures = []
        for cell in self.cells:
            if cell.placement != "locality" or cell.shards == 1:
                continue
            hash_cell = self.cell(cell.policy, cell.variant, cell.shards,
                                  "hash")
            if hash_cell is None:
                continue
            if cell.cut_edges > hash_cell.cut_edges:
                failures.append(
                    f"{cell.label}: locality cut {cell.cut_edges:.0f} > "
                    f"hash cut {hash_cell.cut_edges:.0f}"
                )
            elif (cell.shards == HEADLINE_SHARDS
                    and cell.cut_edges >= hash_cell.cut_edges):
                failures.append(
                    f"{cell.label}: locality cut {cell.cut_edges:.0f} did "
                    f"not strictly beat hash cut {hash_cell.cut_edges:.0f}"
                )
        return failures

    @property
    def ok(self) -> bool:
        return not self.placement_failures


def _placement_assignment(
    graph: CoAccessGraph, num_shards: int, placement: str
) -> list[int]:
    if placement == "hash":
        return hash_placement(graph.num_pages, num_shards)
    if placement == "locality":
        # Equal-imbalance comparison: the partitioner gets exactly the
        # slack hash placement spends on this graph (at least the 10%
        # default), so the cut numbers trade on locality alone.
        hash_assignment = hash_placement(graph.num_pages, num_shards)
        slack = max(
            0.10, imbalance(graph, hash_assignment, num_shards) - 1.0
        )
        return locality_placement(graph, num_shards, balance_slack=slack)
    raise ValueError(f"unknown placement scheme: {placement!r}")


def run_cell(
    policy: str,
    variant: str,
    num_shards: int,
    placement: str,
    trace,
    graph: CoAccessGraph,
    profile: DeviceProfile = PCIE_SSD,
    workers: int | None = 1,
) -> tuple[ClusterCell, ClusterMetrics]:
    """Replay one sweep cell and score its placement on the graph."""
    assignment = _placement_assignment(graph, num_shards, placement)
    config = ClusterConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=graph.num_pages,
        num_shards=num_shards,
        # Single-shard hash and locality coincide; ClusterConfig models
        # the distinction, the sweep only runs the hash spelling for s=1.
        placement="locality" if placement == "locality" else "hash",
        assignment=tuple(assignment) if placement == "locality" else None,
    )
    metrics = run_cluster(config, trace, workers=workers)
    score = placement_report(graph, assignment, num_shards)
    cell = ClusterCell(
        policy=policy,
        variant=variant,
        shards=num_shards,
        placement=placement,
        ops=metrics.ops,
        aggregate_accesses_per_sec=metrics.aggregate_accesses_per_sec,
        makespan_wall_s=max(metrics.replay_wall_s),
        ops_imbalance=metrics.ops_imbalance,
        cut_edges=score["cut_edges"],
        cut_fraction=score["cut_fraction"],
        load_imbalance=score["imbalance"],
        elapsed_us=metrics.merged.elapsed_us,
        hit_ratio=metrics.merged.buffer.hit_ratio,
    )
    return cell, metrics


def run_sweep(
    shards: Sequence[int] = DEFAULT_SHARDS,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    variant: str = "baseline",
    num_pages: int = 20_000,
    num_ops: int = 30_000,
    seed: int = 42,
    profile: DeviceProfile = PCIE_SSD,
    workers: int | None = 1,
) -> ClusterSweepReport:
    """The full grid: each policy through every shards x placement cell."""
    trace = generate_trace(MS, num_pages, num_ops, seed=seed)
    graph = coaccess_from_trace(trace.pages, num_pages)
    cells = []
    for policy in policies:
        for num_shards in shards:
            for placement in placements:
                if num_shards == 1 and placement != "hash":
                    continue  # one shard: every placement is identical
                cell, _ = run_cell(
                    policy, variant, num_shards, placement, trace, graph,
                    profile=profile, workers=workers,
                )
                cells.append(cell)
    return ClusterSweepReport(
        seed=seed, num_pages=num_pages, num_ops=num_ops, cells=tuple(cells)
    )


def smoke_grid(seed: int = 42) -> ClusterSweepReport:
    """The CI-sized sweep: one policy, small trace, full shard grid."""
    return run_sweep(
        policies=("lru",), num_pages=4_000, num_ops=6_000, seed=seed
    )


def format_report(report: ClusterSweepReport) -> str:
    """Render the throughput table and the imbalance-vs-cut Pareto table."""
    rows = []
    for cell in report.cells:
        rows.append([
            cell.label,
            f"{cell.aggregate_accesses_per_sec:,.0f}",
            f"{cell.makespan_wall_s * 1e3:.2f}",
            f"{cell.ops_imbalance:.3f}",
            f"{cell.hit_ratio:.2%}",
        ])
    throughput = format_table(
        ["cell", "aggregate acc/s", "makespan (ms)", "ops imbal",
         "hit ratio"],
        rows,
        title=(f"Cluster sweep (seed={report.seed}, "
               f"{report.num_ops} ops over {report.num_pages} pages)"),
    )
    pareto_rows = []
    seen = set()
    for cell in report.cells:
        key = (cell.shards, cell.placement)
        if key in seen or cell.shards == 1:
            continue  # placement scores are policy-independent
        seen.add(key)
        pareto_rows.append([
            f"s{cell.shards}/{cell.placement}",
            f"{cell.cut_edges:,.0f}",
            f"{cell.cut_fraction:.2%}",
            f"{cell.load_imbalance:.3f}",
        ])
    pareto = format_table(
        ["placement", "cut edges", "cut fraction", "load imbal"],
        pareto_rows,
        title="Placement Pareto points (co-access graph)",
    )
    return f"{throughput}\n\n{pareto}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.cluster",
        description="Sharded cluster throughput sweep.",
    )
    parser.add_argument("--shards", default="1,2,4",
                        help="comma-separated shard counts")
    parser.add_argument("--placements", default="hash,locality",
                        help="comma-separated placement schemes")
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                        help="comma-separated replacement policies")
    parser.add_argument("--variant", default="baseline",
                        choices=("baseline", "ace", "ace+pf"))
    parser.add_argument("--pages", type=int, default=20_000)
    parser.add_argument("--ops", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for shard replay (1 = "
                             "in-process serial; merged metrics are "
                             "identical either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed grid for CI (one policy, small "
                             "trace; overrides the sweep options above)")
    parser.add_argument("--record", action="store_true",
                        help="append a perf epoch (fast mode, including "
                             "the cluster section the CI floors read) to "
                             "the benchmark file via repro.bench.perf")
    parser.add_argument("--label", default="",
                        help="note recorded with the --record epoch")
    args = parser.parse_args(argv)

    if args.smoke:
        report = smoke_grid(seed=args.seed)
    else:
        shards = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
        placements = tuple(
            part.strip() for part in args.placements.split(",")
            if part.strip()
        )
        policies = tuple(
            part.strip() for part in args.policies.split(",") if part.strip()
        )
        report = run_sweep(
            shards=shards,
            placements=placements,
            policies=policies,
            variant=args.variant,
            num_pages=args.pages,
            num_ops=args.ops,
            seed=args.seed,
            workers=args.workers,
        )
    print(format_report(report))
    for failure in report.placement_failures:
        print(f"FAIL {failure}")

    if args.record:
        from repro.bench.perf import measure, write_entry

        entry = measure(label=args.label, fast=True)
        write_entry(entry)
        headline = entry["cluster"].get("lru/baseline/s4/hash", {})
        print(
            f"recorded epoch: cluster lru/baseline/s4/hash "
            f"{headline.get('accesses_per_sec', 0.0):,.0f} aggregate "
            f"accesses/s"
        )

    if not report.ok:
        return 1
    print(f"all {len(report.cells)} cells swept; placement claim holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
