"""Terminal plots: line charts and heatmaps rendered in ASCII.

The benches persist their figure data as plain tables; these helpers add a
visual rendering so ``results/`` files read like the paper's figures.  No
plotting dependency is required.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["line_chart", "heatmap"]

_BLOCKS = " .:-=+*#%@"


def line_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series as an ASCII line chart.

    Each series is drawn with its own marker; a legend maps markers to
    names.  Values are linearly scaled into the plot box.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("plot box too small")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"x-axis has {len(x_values)}"
            )
    if len(x_values) < 2:
        raise ValueError("need at least two x positions")

    markers = "ox+*sd^v"
    all_values = [v for values in series.values() for v in values]
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = float(min(x_values))
    x_max = float(max(x_values))
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, values):
            col = round((float(x) - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(axis)
    x_axis = f"{x_min:.3g}".ljust(width // 2) + f"{x_max:.3g}".rjust(width // 2)
    lines.append(f"{' ' * label_width}  {x_axis}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def heatmap(
    row_labels: Sequence[object],
    column_labels: Sequence[object],
    values: Sequence[Sequence[float]],
    title: str = "",
    cell_width: int = 7,
) -> str:
    """Render a matrix as a shaded ASCII heatmap with numeric cells.

    Used for Figure 10h's (alpha, n_w) speedup continuum: darker shading
    (denser glyphs) means larger values.
    """
    if len(values) != len(row_labels):
        raise ValueError("one row of values per row label required")
    for row in values:
        if len(row) != len(column_labels):
            raise ValueError("one value per column label required")
    flat = [v for row in values for v in row]
    if not flat:
        raise ValueError("empty heatmap")
    v_min, v_max = min(flat), max(flat)
    span = (v_max - v_min) or 1.0

    def shade(value: float) -> str:
        level = int((value - v_min) / span * (len(_BLOCKS) - 1))
        return _BLOCKS[level]

    lines: list[str] = []
    if title:
        lines.append(title)
    header = " " * 10 + "".join(
        str(label).rjust(cell_width) for label in column_labels
    )
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = "".join(
            f"{shade(v)}{v:5.2f} ".rjust(cell_width) for v in row
        )
        lines.append(f"{str(label):>9s} {cells}")
    lines.append(f"scale: {_BLOCKS[0]!r} = {v_min:.3g} ... "
                 f"{_BLOCKS[-1]!r} = {v_max:.3g}")
    return "\n".join(lines)
