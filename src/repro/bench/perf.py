"""Wall-clock throughput harness: the repo's performance regression gate.

Everything else in ``repro.bench`` measures *virtual* time — the modelled
cost of I/O and CPU on the simulated clock.  This module measures the one
thing virtual time cannot: how fast the simulator itself executes on real
hardware.  It produces ``BENCH_throughput.json`` at the repo root with

* **single_stack** — wall-clock accesses/second of ``run_trace`` for each
  (policy, variant) pair on the paper's MS workload (the hot-path number:
  if a PR slows the per-request path, this drops);
* **suite** — wall-clock runtime of a figure-style experiment grid run
  serially vs through :func:`repro.bench.parallel.run_grid` (the fan-out
  number: if the parallel layer regresses, the speedup drops);
* a **history** of both across PRs, so future changes regress against a
  recorded trajectory instead of folklore.

Usage::

    PYTHONPATH=src python -m repro.bench.perf --label "my change"
    PYTHONPATH=src python -m repro.bench.perf --check --min-ratio 0.7
    PYTHONPATH=src python -m repro.bench.perf --fast --profile perf.pstats

The ``--check`` form re-measures quickly and exits non-zero if single-stack
accesses/second fell below ``min-ratio`` times the committed ``current``
entry, or if any stack in :data:`POLICY_FLOORS` fell below its per-policy
floor, or if any cluster stack in :data:`CLUSTER_FLOORS` fell below its
aggregate-throughput floor — the CI smoke gate.  ``--profile`` wraps the measurement in
cProfile (see :mod:`repro.bench.profiling`).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from collections.abc import Sequence
from pathlib import Path

from repro.bench.parallel import GridJob, TraceSpec, resolve_workers, run_grid
from repro.bench.runner import VARIANTS, StackConfig, build_stack
from repro.cluster.engine import ClusterConfig, build_shard_stack, run_cluster
from repro.cluster.placement import coaccess_from_trace, locality_placement
from repro.engine.executor import ExecutionOptions, run_trace
from repro.policies.registry import PAPER_POLICIES
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import MS, generate_trace

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_OUTPUT",
    "POLICY_FLOORS",
    "CLUSTER_FLOORS",
    "HEADLINE_CLUSTER_STACK",
    "measure_single_stack",
    "measure_cluster",
    "measure_suite",
    "measure",
    "write_entry",
    "load_report",
    "check_against",
    "check_policy_floors",
    "check_cluster_floors",
    "main",
]

SCHEMA_VERSION = 1

#: Committed at the repo root so the perf trajectory is versioned with the
#: code it measures.  Override with ``REPRO_BENCH_FILE`` or ``--output``.
DEFAULT_OUTPUT = "BENCH_throughput.json"

#: The policy/variant whose accesses/second is the headline regression
#: metric (LRU baseline exercises the bare hot path with no ACE machinery).
HEADLINE_STACK = "lru/baseline"

#: Execution model matching the paper-replication benches.
_OPTIONS = ExecutionOptions(cpu_us_per_op=30.0)

#: Per-policy regression floors for ``--check``: each stack's re-measured
#: accesses/second must stay above ``floor`` times its committed same-mode
#: rate.  The headline gate catches bare hot-path regressions; these catch
#: a policy-specific one (say, CFLRU's window scan quietly going quadratic
#: again) that the LRU headline would never see.  Floors are deliberately
#: loose — CI machines are noisy — but tight enough that an
#: order-of-complexity regression trips them.
POLICY_FLOORS: dict[str, float] = {
    "lru/baseline": 0.6,
    "lru/ace": 0.5,
    "clock/baseline": 0.5,
    "cflru/baseline": 0.5,
    "cflru/ace": 0.5,
    "lru_wsr/baseline": 0.5,
}

#: Cluster regression floors for ``--check``, keyed by the cluster stack
#: label ``policy/variant/s<shards>/<placement>``.  Gated on *aggregate*
#: accesses/second under the makespan model (total ops / slowest shard's
#: in-worker replay wall) — the sharded counterpart of the headline gate.
#: Matching is strictly like-for-like: a committed rate only serves as a
#: floor for a re-measurement with the same shard count, placement
#: scheme, replication factor, and translation backend (single-pool and
#: cluster epochs never compare against each other, and an unreplicated
#: rate never gates a replicated run — synchronous WAL shipping pays a
#: real per-commit cost).  Stack labels carry an optional ``/r<R>``
#: fifth segment; absent means unreplicated (R=0).
CLUSTER_FLOORS: dict[str, float] = {
    "lru/baseline/s4/hash": 0.5,
}

#: The cluster cell whose replicated (R=1, R=2) aggregate rates every
#: epoch also records, quantifying what synchronous replication costs.
HEADLINE_CLUSTER_STACK = "lru/baseline/s4/hash"


def _parse_cluster_stack(stack: str) -> tuple[str, str, int, str, int]:
    """Split ``policy/variant/s<shards>/<placement>[/r<R>]``."""
    parts = stack.split("/")
    replication = 0
    if len(parts) == 5:
        replication = int(parts.pop().lstrip("r"))
    policy, variant, shards, placement = parts
    return policy, variant, int(shards.lstrip("s")), placement, replication


def _output_path(output: str | Path | None) -> Path:
    if output is not None:
        return Path(output)
    return Path(os.environ.get("REPRO_BENCH_FILE", DEFAULT_OUTPUT))


def measure_single_stack(
    policy: str,
    variant: str,
    num_pages: int = 20_000,
    num_ops: int = 30_000,
    repeats: int = 3,
    profile: DeviceProfile = PCIE_SSD,
    seed: int = 42,
) -> dict[str, object]:
    """Best-of-``repeats`` wall-clock throughput of one stack on MS.

    A fresh stack is built per repeat (the measurement includes no build
    cost — timing starts after ``build_stack``), and the best run is kept:
    minimum wall time is the standard estimator for a deterministic
    workload under OS noise.
    """
    trace = generate_trace(MS, num_pages, num_ops, seed=seed)
    config = StackConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=num_pages,
        options=_OPTIONS,
    )
    best_s = float("inf")
    table_backend = None
    address_space = None
    for _ in range(max(1, repeats)):
        manager = build_stack(config)
        table = getattr(manager, "table", None)
        if table is not None:
            # Recorded per entry so --check can compare like with like:
            # an array-backed rate is not a fair bar for a dict-backed
            # run (and vice versa).
            table_backend = table.backend
            address_space = table.address_space
        start = time.perf_counter()
        run_trace(manager, trace, options=_OPTIONS)
        best_s = min(best_s, time.perf_counter() - start)
    return {
        "policy": policy,
        "variant": variant,
        # Epoch-schema fields shared with cluster entries: a single-pool
        # measurement is the degenerate 1-shard, unsharded placement.
        # --check floor matching keys off these so single-pool and
        # cluster rates never gate each other.
        "shards": 1,
        "placement": "single",
        "ops": num_ops,
        "wall_s": best_s,
        "accesses_per_sec": num_ops / best_s,
        "table_backend": table_backend,
        "address_space": address_space,
    }


def measure_cluster(
    policy: str = "lru",
    variant: str = "baseline",
    num_shards: int = 4,
    placement: str = "hash",
    num_pages: int = 20_000,
    num_ops: int = 30_000,
    repeats: int = 3,
    profile: DeviceProfile = PCIE_SSD,
    seed: int = 42,
    workers: int | None = 1,
    replication_factor: int = 0,
) -> dict[str, object]:
    """Best-of-``repeats`` aggregate cluster throughput on MS.

    The cluster replays the same MS trace split across ``num_shards``
    shard nodes; the recorded rate is the *aggregate* accesses/second
    under the makespan model — total ops over the slowest shard's replay
    wall, each shard's wall measured inside its own worker around
    ``run_trace`` alone.  ``workers=1`` (the default) replays the shards
    serially in process: on a single-core bench host that measures
    exactly what N true cores would sustain, without charging the shards
    for process spawn or oversubscription, and the merged metrics are
    byte-identical either way.
    """
    trace = generate_trace(MS, num_pages, num_ops, seed=seed)
    assignment = None
    if placement == "locality":
        graph = coaccess_from_trace(trace.pages, num_pages)
        assignment = tuple(locality_placement(graph, num_shards))
    config = ClusterConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=num_pages,
        num_shards=num_shards,
        placement=placement,
        assignment=assignment,
        options=_OPTIONS,
        replication_factor=replication_factor,
    )
    best = None
    for _ in range(max(1, repeats)):
        metrics = run_cluster(config, trace, workers=workers)
        if (
            best is None
            or metrics.aggregate_accesses_per_sec
            > best.aggregate_accesses_per_sec
        ):
            best = metrics
    table = getattr(build_shard_stack(config, 0), "table", None)
    return {
        "policy": policy,
        "variant": variant,
        "shards": num_shards,
        "placement": placement,
        # 0 = unreplicated (also what entries recorded before replication
        # existed mean); --check only gates like against like.
        "replication_factor": replication_factor,
        "ops": best.ops,
        "makespan_wall_s": max(best.replay_wall_s),
        "accesses_per_sec": best.aggregate_accesses_per_sec,
        "per_shard_ops": list(best.per_shard_ops),
        "ops_imbalance": best.ops_imbalance,
        "table_backend": table.backend if table is not None else None,
        "address_space": table.address_space if table is not None else None,
    }


def measure_suite(
    workers: int | None = None,
    num_pages: int = 10_000,
    num_ops: int = 15_000,
    policies: Sequence[str] = PAPER_POLICIES,
    variants: Sequence[str] = VARIANTS,
    seed: int = 42,
) -> dict[str, object]:
    """Wall-clock runtime of a fig8-style grid, serial vs parallel."""
    spec = TraceSpec(MS, num_pages, num_ops, seed=seed)
    jobs = [
        GridJob(
            StackConfig(
                profile=PCIE_SSD,
                policy=policy,
                variant=variant,
                num_pages=num_pages,
                options=_OPTIONS,
            ),
            trace=spec,
        )
        for policy in policies
        for variant in variants
    ]
    # Warm the in-process trace cache (and code paths) so the serial
    # timing is not charged for one-off trace materialisation.
    run_grid(jobs[:1], workers=1)
    start = time.perf_counter()
    run_grid(jobs, workers=1)
    serial_s = time.perf_counter() - start

    workers = resolve_workers(workers)
    start = time.perf_counter()
    run_grid(jobs, workers=workers)
    parallel_s = time.perf_counter() - start
    return {
        "jobs": len(jobs),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "workers": workers,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
    }


def measure(
    label: str = "",
    fast: bool = False,
    workers: int | None = None,
    policies: Sequence[str] = PAPER_POLICIES,
    variants: Sequence[str] = VARIANTS,
) -> dict[str, object]:
    """Produce one complete benchmark entry (single-stack grid + suite).

    ``fast=True`` shrinks the workload for smoke tests and the CI gate;
    the absolute numbers differ from a full run but track the same code
    paths.
    """
    if fast:
        stack_kwargs = {"num_pages": 4_000, "num_ops": 6_000, "repeats": 2}
        suite_kwargs = {"num_pages": 2_000, "num_ops": 3_000}
    else:
        stack_kwargs = {}
        suite_kwargs = {}
    single_stack = {
        f"{policy}/{variant}": measure_single_stack(
            policy, variant, **stack_kwargs
        )
        for policy in policies
        for variant in variants
    }
    headline = single_stack.get(HEADLINE_STACK) or next(iter(single_stack.values()))
    # The sharded counterpart of the headline stack: 4-shard bare LRU on
    # hash placement, recorded as aggregate makespan throughput.  Kept to
    # one configuration here (the full shards x placement x policy sweep
    # lives in repro.bench.cluster) so the perf entry stays cheap enough
    # for the CI gate.
    cluster = {}
    for floor_stack in CLUSTER_FLOORS:
        policy, variant, shards, placement, replication = (
            _parse_cluster_stack(floor_stack)
        )
        cluster[floor_stack] = measure_cluster(
            policy=policy,
            variant=variant,
            num_shards=shards,
            placement=placement,
            replication_factor=replication,
            **stack_kwargs,
        )
    # The replicated counterparts of the headline cluster stack: same
    # 4-shard bare-LRU hash cell with R=1 and R=2 replica groups under
    # synchronous WAL shipping, so each epoch records what fault
    # tolerance costs in aggregate throughput.  Not floored (yet) —
    # CLUSTER_FLOORS only gates the unreplicated stack — but recorded
    # like-for-like so a future floor can key off `/rN` directly.
    for replication in (1, 2):
        policy, variant, shards, placement, _ = _parse_cluster_stack(
            HEADLINE_CLUSTER_STACK
        )
        cluster[f"{HEADLINE_CLUSTER_STACK}/r{replication}"] = (
            measure_cluster(
                policy=policy,
                variant=variant,
                num_shards=shards,
                placement=placement,
                replication_factor=replication,
                **stack_kwargs,
            )
        )
    return {
        "label": label,
        "fast": fast,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "single_stack": single_stack,
        "headline_accesses_per_sec": headline["accesses_per_sec"],
        "cluster": cluster,
        "suite": measure_suite(workers=workers, **suite_kwargs),
    }


def load_report(output: str | Path | None = None) -> dict[str, object] | None:
    """Parse the committed benchmark file, or ``None`` if absent."""
    path = _output_path(output)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_entry(
    entry: dict[str, object], output: str | Path | None = None
) -> dict[str, object]:
    """Append ``entry`` to the benchmark file and return the full report.

    The file keeps the first entry ever recorded as ``baseline``, the
    latest as ``current``, every entry in ``history``, and the
    current/baseline headline ratio as ``improvement_vs_baseline`` — the
    number PR acceptance criteria quote.
    """
    path = _output_path(output)
    report = load_report(path) or {
        "schema_version": SCHEMA_VERSION,
        "history": [],
    }
    history = report.setdefault("history", [])
    history.append(entry)
    report["current"] = entry
    report.setdefault("baseline", history[0])
    baseline_rate = report["baseline"]["headline_accesses_per_sec"]
    if baseline_rate:
        report["improvement_vs_baseline"] = (
            entry["headline_accesses_per_sec"] / baseline_rate
        )
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return report


def _committed_stack_rate(
    report: dict[str, object],
    stack: str,
    fast: bool,
    backend: str | None = None,
) -> float | None:
    """The committed accesses/second for ``stack``, mode-matched.

    Prefers the latest entry measured in the same mode (``fast`` flag) so a
    fast check is never compared against full-size numbers; falls back to
    the ``current`` entry, and returns ``None`` when no committed entry
    records the stack at all.

    When ``backend`` is given, entries recorded under a *different*
    translation backend are skipped (like-for-like: an array-backed rate
    is not a fair floor for a dict-backed run).  Entries predating
    backend recording (no ``table_backend`` key) are accepted as
    a fallback.
    """
    current = report.get("current")
    if not current:
        raise ValueError("benchmark report has no `current` entry")
    candidates = [current]
    if fast != bool(current.get("fast")):
        for entry in reversed(report.get("history", [])):
            if bool(entry.get("fast")) == fast:
                candidates.insert(0, entry)
                break
    fallback: float | None = None
    for entry in candidates:
        recorded = entry.get("single_stack", {}).get(stack)
        if not recorded:
            continue
        if recorded.get("shards") not in (None, 1):
            # A sharded rate is an aggregate number — never a floor for a
            # single-pool re-measurement (and vice versa: cluster floors
            # gate via check_cluster_floors, not here).
            continue
        recorded_backend = recorded.get("table_backend")
        if backend is not None and recorded_backend not in (None, backend):
            continue
        if backend is not None and recorded_backend is None:
            if fallback is None:
                fallback = float(recorded["accesses_per_sec"])
            continue
        return float(recorded["accesses_per_sec"])
    return fallback


def _measure_stack_for_check(stack: str, fast: bool) -> dict[str, object]:
    policy, variant = stack.split("/")
    if fast:
        return measure_single_stack(
            policy, variant, num_pages=4_000, num_ops=6_000, repeats=2
        )
    return measure_single_stack(policy, variant)


def check_against(
    report: dict[str, object],
    min_ratio: float = 0.7,
    fast: bool = True,
) -> tuple[bool, float, float]:
    """Re-measure the headline stack and compare against ``report``.

    Returns ``(ok, measured, committed)`` where ``committed`` is the
    committed entry's headline accesses/second scaled to the measurement
    mode and translation backend: a ``fast`` check against a full-size
    committed entry compares like with like by re-deriving the committed
    rate from the same-mode (and, when recorded, same-backend) history
    entry when one exists, else the raw headline.
    """
    current = report.get("current")
    if not current:
        raise ValueError("benchmark report has no `current` entry")
    measured_entry = _measure_stack_for_check(HEADLINE_STACK, fast)
    measured = float(measured_entry["accesses_per_sec"])
    backend = measured_entry.get("table_backend")
    # The committed bar is always an entry's *headline* field (the
    # per-stack rates gate via the policy floors, not here); candidates
    # run newest-first with `current` ahead of history, and an entry only
    # qualifies when its mode matches and its recorded headline-stack
    # backend is not a *different* one than we just measured with.
    committed: float | None = None
    fallback: float | None = None
    for entry in [current, *reversed(report.get("history", []))]:
        if bool(entry.get("fast")) != fast:
            continue
        recorded = entry.get("single_stack", {}).get(HEADLINE_STACK, {})
        entry_backend = recorded.get("table_backend")
        if backend is not None and entry_backend not in (None, backend):
            continue
        rate = float(entry["headline_accesses_per_sec"])
        if backend is not None and entry_backend is None:
            if fallback is None:
                fallback = rate  # predates backend recording
            continue
        committed = rate
        break
    if committed is None:
        committed = fallback
    if committed is None:
        committed = float(current["headline_accesses_per_sec"])
    return measured >= min_ratio * committed, measured, committed


def check_policy_floors(
    report: dict[str, object],
    floors: dict[str, float] | None = None,
    fast: bool = True,
) -> list[dict[str, object]]:
    """Re-measure each floored stack and compare against its committed rate.

    Returns one result dict per stack in ``floors`` (default
    :data:`POLICY_FLOORS`) with keys ``stack``, ``floor``, ``measured``,
    ``committed``, ``ok``.  Stacks the committed report never recorded are
    skipped — a freshly seeded benchmark file gates only what it measured.
    """
    results: list[dict[str, object]] = []
    for stack, floor in (floors or POLICY_FLOORS).items():
        if _committed_stack_rate(report, stack, fast) is None:
            continue  # never recorded: nothing to gate (skip the measure)
        measured_entry = _measure_stack_for_check(stack, fast)
        measured = float(measured_entry["accesses_per_sec"])
        committed = _committed_stack_rate(
            report, stack, fast, backend=measured_entry.get("table_backend")
        )
        if committed is None:
            continue
        results.append({
            "stack": stack,
            "floor": floor,
            "measured": measured,
            "committed": committed,
            "table_backend": measured_entry.get("table_backend"),
            "ok": measured >= floor * committed,
        })
    return results


def _committed_cluster_rate(
    report: dict[str, object],
    stack: str,
    fast: bool,
    shards: int,
    placement: str,
    backend: str | None = None,
    replication: int = 0,
) -> float | None:
    """The committed aggregate accesses/second for a cluster ``stack``.

    Mirrors :func:`_committed_stack_rate` but reads the ``cluster``
    section and matches strictly like-for-like: an entry only qualifies
    when its recorded shard count, placement scheme, and replication
    factor equal the re-measurement's (so a 4-shard rate never gates an
    8-shard run, a locality rate never gates a hash run, and an
    unreplicated rate never gates a replicated one — entries recorded
    before replication existed carry no ``replication_factor`` key and
    count as R=0), in addition to the mode and backend matching the
    single-stack gate applies.
    """
    current = report.get("current")
    if not current:
        raise ValueError("benchmark report has no `current` entry")
    candidates = [current]
    if fast != bool(current.get("fast")):
        for entry in reversed(report.get("history", [])):
            if bool(entry.get("fast")) == fast:
                candidates.insert(0, entry)
                break
    fallback: float | None = None
    for entry in candidates:
        recorded = entry.get("cluster", {}).get(stack)
        if not recorded:
            continue
        if recorded.get("shards") != shards:
            continue
        if recorded.get("placement") != placement:
            continue
        if int(recorded.get("replication_factor") or 0) != replication:
            continue
        recorded_backend = recorded.get("table_backend")
        if backend is not None and recorded_backend not in (None, backend):
            continue
        if backend is not None and recorded_backend is None:
            if fallback is None:
                fallback = float(recorded["accesses_per_sec"])
            continue
        return float(recorded["accesses_per_sec"])
    return fallback


def _measure_cluster_for_check(stack: str, fast: bool) -> dict[str, object]:
    policy, variant, shards, placement, replication = (
        _parse_cluster_stack(stack)
    )
    kwargs: dict[str, object] = {
        "policy": policy,
        "variant": variant,
        "num_shards": shards,
        "placement": placement,
        "replication_factor": replication,
    }
    if fast:
        kwargs.update(num_pages=4_000, num_ops=6_000, repeats=2)
    return measure_cluster(**kwargs)


def check_cluster_floors(
    report: dict[str, object],
    floors: dict[str, float] | None = None,
    fast: bool = True,
) -> list[dict[str, object]]:
    """Re-measure each floored cluster stack against its committed rate.

    The cluster counterpart of :func:`check_policy_floors`: one result
    dict per stack in ``floors`` (default :data:`CLUSTER_FLOORS`) with
    keys ``stack``, ``floor``, ``measured``, ``committed``, ``ok``.
    Stacks the committed report never recorded are skipped, and matching
    is strictly like-for-like on shard count, placement, replication
    factor, mode, and translation backend — a single-pool rate can never
    serve as a cluster floor, nor an unreplicated rate for a replicated
    stack.
    """
    results: list[dict[str, object]] = []
    for stack, floor in (floors or CLUSTER_FLOORS).items():
        _, _, shards, placement, replication = _parse_cluster_stack(stack)
        if (
            _committed_cluster_rate(
                report, stack, fast, shards, placement,
                replication=replication,
            )
            is None
        ):
            continue  # never recorded: nothing to gate (skip the measure)
        measured_entry = _measure_cluster_for_check(stack, fast)
        measured = float(measured_entry["accesses_per_sec"])
        committed = _committed_cluster_rate(
            report,
            stack,
            fast,
            shards,
            placement,
            backend=measured_entry.get("table_backend"),
            replication=replication,
        )
        if committed is None:
            continue
        results.append({
            "stack": stack,
            "floor": floor,
            "measured": measured,
            "committed": committed,
            "table_backend": measured_entry.get("table_backend"),
            "ok": measured >= floor * committed,
        })
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.perf",
        description="Measure wall-clock simulator throughput.",
    )
    parser.add_argument("--output", default=None,
                        help=f"benchmark file (default {DEFAULT_OUTPUT})")
    parser.add_argument("--label", default="",
                        help="note recorded with the entry (e.g. the PR)")
    parser.add_argument("--fast", action="store_true",
                        help="small workload (smoke tests / CI)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-suite worker count")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: compare against the "
                             "committed file instead of appending")
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="minimum measured/committed ratio for --check")
    parser.add_argument("--no-policy-floors", action="store_true",
                        help="--check: gate only the headline stack, "
                             "skipping the per-policy floors")
    parser.add_argument("--require-backend", choices=("array", "dict"),
                        default=None,
                        help="fail unless the measured stacks resolve to "
                             "this translation backend (CI guard: the "
                             "committed floors are array-backed numbers)")
    parser.add_argument("--profile", metavar="PSTATS", default=None,
                        help="run the measurement under cProfile: write a "
                             "pstats dump to this path and print the "
                             "top-20 cumulative table")
    args = parser.parse_args(argv)

    if args.require_backend:
        from repro.bufferpool.table import resolve_backend

        resolved = resolve_backend(20_000)
        if resolved != args.require_backend:
            print(
                f"BACKEND MISMATCH: stacks resolve to {resolved!r}, "
                f"--require-backend demands {args.require_backend!r} "
                "(check REPRO_TABLE)"
            )
            return 2

    if args.check:
        report = load_report(args.output)
        if report is None:
            print(f"no benchmark file at {_output_path(args.output)}; "
                  "run without --check first")
            return 2
        ok, measured, committed = check_against(
            report, min_ratio=args.min_ratio, fast=True
        )
        verdict = "OK" if ok else "REGRESSION"
        print(
            f"{verdict}: measured {measured:,.0f} accesses/s vs committed "
            f"{committed:,.0f} (floor {args.min_ratio:.0%})"
        )
        if not args.no_policy_floors:
            for result in check_policy_floors(report, fast=True):
                stack_verdict = "OK" if result["ok"] else "REGRESSION"
                print(
                    f"{stack_verdict}: {result['stack']} measured "
                    f"{result['measured']:,.0f} accesses/s vs committed "
                    f"{result['committed']:,.0f} "
                    f"(floor {result['floor']:.0%})"
                )
                ok = ok and result["ok"]
            for result in check_cluster_floors(report, fast=True):
                stack_verdict = "OK" if result["ok"] else "REGRESSION"
                print(
                    f"{stack_verdict}: cluster {result['stack']} measured "
                    f"{result['measured']:,.0f} aggregate accesses/s vs "
                    f"committed {result['committed']:,.0f} "
                    f"(floor {result['floor']:.0%})"
                )
                ok = ok and result["ok"]
        return 0 if ok else 1

    if args.profile:
        from repro.bench.profiling import run_profiled

        entry = run_profiled(
            lambda: measure(
                label=args.label, fast=args.fast, workers=args.workers
            ),
            args.profile,
        )
    else:
        entry = measure(label=args.label, fast=args.fast, workers=args.workers)
    report = write_entry(entry, args.output)
    suite = entry["suite"]
    print(f"wrote {_output_path(args.output)}")
    print(f"  headline ({HEADLINE_STACK}): "
          f"{entry['headline_accesses_per_sec']:,.0f} accesses/s")
    print(f"  suite: serial {suite['serial_s']:.2f}s, parallel "
          f"{suite['parallel_s']:.2f}s with {suite['workers']} workers "
          f"({suite['parallel_speedup']:.2f}x)")
    if "improvement_vs_baseline" in report:
        print(f"  vs baseline entry: {report['improvement_vs_baseline']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
