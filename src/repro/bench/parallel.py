"""Parallel experiment execution: fan a grid of stacks over worker processes.

Every figure in the reproduction replays the same trace through a grid of
independent ``(policy, variant, device)`` stacks.  Each stack owns a private
:class:`~repro.storage.clock.VirtualClock` and a freshly formatted device,
so the grid is embarrassingly parallel: no job observes any other job's
state, and the metrics of a run are a pure function of its
:class:`~repro.bench.runner.StackConfig` and its trace.  This module
exploits that with a :class:`~concurrent.futures.ProcessPoolExecutor`
fan-out whose merged results are **identical** to the serial path — the
determinism test in ``tests/bench/test_parallel_determinism.py`` holds the
two byte-for-byte equal.

Worker count resolution (first match wins):

1. an explicit ``workers=`` argument (the CLI's ``--workers N``);
2. the ``REPRO_WORKERS`` environment variable;
3. ``os.cpu_count()``.

``workers <= 1`` (or a single job) short-circuits to an in-process loop, so
the serial path is always available and never pays pickling overhead.

Jobs ship a :class:`TraceSpec` rather than a materialised trace whenever
possible: the spec is a few dozen bytes to pickle, and each worker process
materialises and caches the trace once, however many jobs share it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.bench.runner import StackConfig, run_config, run_config_transactions
from repro.engine.metrics import RunMetrics
from repro.workloads.synthetic import WorkloadSpec, generate_trace
from repro.workloads.trace import PageRequest, Trace
from repro.workloads.tpcc.transactions import TransactionType

__all__ = ["TraceSpec", "GridJob", "resolve_workers", "run_grid"]

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"


@dataclass(frozen=True)
class TraceSpec:
    """A picklable recipe for a synthetic trace.

    ``generate_trace`` is fully determined by these four fields, so a spec
    stands in for the trace it describes: workers materialise it on first
    use and cache it for the rest of the grid (keyed by the spec itself).
    """

    spec: WorkloadSpec
    num_pages: int
    num_ops: int
    seed: int = 42

    def materialise(self) -> Trace:
        return generate_trace(
            self.spec, self.num_pages, self.num_ops, seed=self.seed
        )


@dataclass(frozen=True)
class GridJob:
    """One unit of the experiment grid: a stack plus the work to replay.

    Exactly one of ``trace`` (a :class:`Trace` or :class:`TraceSpec`) and
    ``transactions`` (a TPC-C-style ``(type, requests)`` stream) must be
    set.  ``label`` overrides the metrics label, mirroring the ``label``
    parameters of :func:`~repro.bench.runner.run_config`.
    """

    config: StackConfig
    trace: Trace | TraceSpec | None = None
    transactions: tuple[tuple[TransactionType, list[PageRequest]], ...] | None = (
        None
    )
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.trace is None) == (self.transactions is None):
            raise ValueError(
                "a GridJob needs exactly one of `trace` and `transactions`"
            )


#: Per-worker-process cache of materialised traces, keyed by spec.
_TRACE_CACHE: dict[TraceSpec, Trace] = {}


def _materialise(trace: Trace | TraceSpec) -> Trace:
    if isinstance(trace, TraceSpec):
        cached = _TRACE_CACHE.get(trace)
        if cached is None:
            cached = _TRACE_CACHE[trace] = trace.materialise()
        return cached
    return trace


def _execute_job(job: GridJob) -> RunMetrics:
    """Run one grid job to completion (worker-side entry point)."""
    if job.transactions is not None:
        return run_config_transactions(
            job.config, list(job.transactions), label=job.label
        )
    assert job.trace is not None
    return run_config(job.config, _materialise(job.trace), label=job.label)


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the worker count: argument > ``REPRO_WORKERS`` > cpu count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR)
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"worker count must be at least 1: {workers}")
    return workers


def run_grid(
    jobs: list[GridJob] | tuple[GridJob, ...],
    workers: int | None = None,
) -> list[RunMetrics]:
    """Run every job and return metrics in job order.

    The result list is positionally aligned with ``jobs`` regardless of
    completion order, and is byte-identical to running the jobs serially:
    each stack is rebuilt from its config inside the worker, on a private
    clock, so no cross-job state exists to diverge on.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    workers = min(resolve_workers(workers), len(jobs))
    if workers <= 1:
        return [_execute_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute_job, jobs))
