"""Parallel experiment execution: fan a grid of stacks over worker processes.

Every figure in the reproduction replays the same trace through a grid of
independent ``(policy, variant, device)`` stacks.  Each stack owns a private
:class:`~repro.storage.clock.VirtualClock` and a freshly formatted device,
so the grid is embarrassingly parallel: no job observes any other job's
state, and the metrics of a run are a pure function of its
:class:`~repro.bench.runner.StackConfig` and its trace.  This module
exploits that with a :class:`~concurrent.futures.ProcessPoolExecutor`
fan-out whose merged results are **identical** to the serial path — the
determinism test in ``tests/bench/test_parallel_determinism.py`` holds the
two byte-for-byte equal.

Worker count resolution (first match wins):

1. an explicit ``workers=`` argument (the CLI's ``--workers N``);
2. the ``REPRO_WORKERS`` environment variable;
3. ``os.cpu_count()``.

``workers <= 1`` (or a single job) short-circuits to an in-process loop, so
the serial path is always available and never pays pickling overhead.

Jobs ship a :class:`TraceSpec` rather than a materialised trace whenever
possible: the spec is a few dozen bytes to pickle, and each worker process
materialises and caches the trace once, however many jobs share it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.bench.runner import StackConfig, run_config, run_config_transactions
from repro.engine.metrics import RunMetrics
from repro.workloads.synthetic import WorkloadSpec, generate_trace
from repro.workloads.trace import PageRequest, Trace
from repro.workloads.tpcc.transactions import TransactionType

__all__ = ["TraceSpec", "GridJob", "GridFailure", "resolve_workers", "run_grid"]

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Total tries per job: the initial run plus two retries.  A crashed worker
#: (``BrokenProcessPool``) fails every job that was queued on the pool, so
#: innocent jobs get their retries on a fresh pool; a deterministic job
#: error burns its tries quickly and is reported instead of raised.
MAX_JOB_ATTEMPTS = 3


@dataclass(frozen=True)
class TraceSpec:
    """A picklable recipe for a synthetic trace.

    ``generate_trace`` is fully determined by these four fields, so a spec
    stands in for the trace it describes: workers materialise it on first
    use and cache it for the rest of the grid (keyed by the spec itself).
    """

    spec: WorkloadSpec
    num_pages: int
    num_ops: int
    seed: int = 42

    def materialise(self) -> Trace:
        return generate_trace(
            self.spec, self.num_pages, self.num_ops, seed=self.seed
        )


@dataclass(frozen=True)
class GridJob:
    """One unit of the experiment grid: a stack plus the work to replay.

    Exactly one of ``trace`` (a :class:`Trace` or :class:`TraceSpec`) and
    ``transactions`` (a TPC-C-style ``(type, requests)`` stream) must be
    set.  ``label`` overrides the metrics label, mirroring the ``label``
    parameters of :func:`~repro.bench.runner.run_config`.
    """

    config: StackConfig
    trace: Trace | TraceSpec | None = None
    transactions: tuple[tuple[TransactionType, list[PageRequest]], ...] | None = (
        None
    )
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if (self.trace is None) == (self.transactions is None):
            raise ValueError(
                "a GridJob needs exactly one of `trace` and `transactions`"
            )


@dataclass(frozen=True)
class GridFailure:
    """A grid job that still failed after :data:`MAX_JOB_ATTEMPTS` tries.

    Takes the failed job's slot in :func:`run_grid`'s result list, so one
    bad configuration (or one crashed worker process) no longer discards
    an entire grid's worth of finished work.
    """

    label: str | None
    config: StackConfig
    error: str
    attempts: int

    def __bool__(self) -> bool:
        # Lets callers split results with a truthiness check mirroring
        # "did this job produce metrics".
        return False


#: Per-worker-process cache of materialised traces, keyed by spec.
_TRACE_CACHE: dict[TraceSpec, Trace] = {}


def _materialise(trace: Trace | TraceSpec) -> Trace:
    if isinstance(trace, TraceSpec):
        cached = _TRACE_CACHE.get(trace)
        if cached is None:
            # Deliberate per-process memo: each worker warms its own copy.
            cached = _TRACE_CACHE[trace] = trace.materialise()  # lint: allow-shared-state
        return cached
    return trace


def _execute_job(job: GridJob) -> RunMetrics:
    """Run one grid job to completion (worker-side entry point)."""
    if job.transactions is not None:
        return run_config_transactions(
            job.config, list(job.transactions), label=job.label
        )
    assert job.trace is not None
    return run_config(job.config, _materialise(job.trace), label=job.label)


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the worker count: argument > ``REPRO_WORKERS`` > cpu count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR)  # lint: allow-wall-clock
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"worker count must be at least 1: {workers}")
    return workers


def _failure(job: GridJob, exc: BaseException, attempts: int) -> GridFailure:
    return GridFailure(
        label=job.label if job.label is not None else job.config.label,
        config=job.config,
        error=f"{type(exc).__name__}: {exc}",
        attempts=attempts,
    )


def run_grid(
    jobs: list[GridJob] | tuple[GridJob, ...],
    workers: int | None = None,
) -> list[RunMetrics | GridFailure]:
    """Run every job and return metrics in job order.

    The result list is positionally aligned with ``jobs`` regardless of
    completion order, and is byte-identical to running the jobs serially:
    each stack is rebuilt from its config inside the worker, on a private
    clock, so no cross-job state exists to diverge on.

    A job that raises — or whose worker process dies, which surfaces as
    ``BrokenProcessPool`` for every job queued on that pool — is retried
    on a **fresh** pool until its :data:`MAX_JOB_ATTEMPTS` tries are spent,
    then reported as a :class:`GridFailure` in its slot rather than
    aborting the grid.  The serial path applies the same retry-and-report
    semantics, so the two paths stay interchangeable.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    workers = min(resolve_workers(workers), len(jobs))
    results: list[RunMetrics | GridFailure | None] = [None] * len(jobs)
    attempts = [0] * len(jobs)
    pending = list(range(len(jobs)))

    if workers <= 1:
        for index in pending:
            job = jobs[index]
            while True:
                attempts[index] += 1
                try:
                    results[index] = _execute_job(job)
                    break
                except Exception as exc:
                    if attempts[index] >= MAX_JOB_ATTEMPTS:
                        results[index] = _failure(job, exc, attempts[index])
                        break
        return results  # type: ignore[return-value]

    while pending:
        still_failing: list[int] = []
        # A fresh pool per round: a BrokenProcessPool poisons the executor
        # it happened on, so retries must never reuse it.
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            submitted = []
            for index in pending:
                attempts[index] += 1
                try:
                    submitted.append((index, pool.submit(_execute_job, jobs[index])))
                except Exception as exc:
                    # submit() itself fails once the pool is already broken.
                    if attempts[index] >= MAX_JOB_ATTEMPTS:
                        results[index] = _failure(jobs[index], exc, attempts[index])
                    else:
                        still_failing.append(index)
            for index, future in submitted:
                try:
                    results[index] = future.result()
                except Exception as exc:
                    if attempts[index] >= MAX_JOB_ATTEMPTS:
                        results[index] = _failure(jobs[index], exc, attempts[index])
                    else:
                        still_failing.append(index)
        pending = still_failing
    return results  # type: ignore[return-value]
