"""Failover bench: node-failure rate x replication factor durability sweep.

The cluster-level robustness claim this bench asserts: with ``R``
replicas per shard and synchronous WAL shipping at group-commit
boundaries, the cluster loses **zero committed updates and replays zero
phantom redo** through an arbitrary seeded storm of node crashes,
permanent losses and delayed rejoins — for baseline and ACE stacks
alike — while availability degrades only by the in-flight windows that
died with a primary.

Every cell replays the same MS trace through a replicated cluster under
a deterministic :class:`~repro.faults.nodes.NodeFaultPlan` and reports:

* **failovers / crashes / rejoins** — the storm the group absorbed;
* **availability** — fraction of serve attempts not wasted on a dead
  primary (retried in-flight accesses are the deficit);
* **failover latency** — virtual µs the promotion drain cost (PR 8's
  ``recover`` over the replica's shipped WAL);
* **lost / phantom** — the PR 8 *exact* ``audit_committed`` verdict,
  taken per shard over the whole page space after a final crash +
  recover of every final primary.

Two scenario cells ride every sweep on top of the rate grid: a
**mid-ACE-batch** primary crash (crash point inside a commit window of
an ACE stack, dirty batched write-backs in flight) and a **double
failure** (R=2; the most-caught-up replica dies during its own
promotion and the group falls through to the second replica).

``python -m repro failover [--smoke]`` prints the table and exits
non-zero if any cell lost a committed update, replayed a phantom, or a
scenario cell failed to exercise its scenario.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from dataclasses import dataclass

from repro.bench.report import format_table
from repro.cluster.engine import ClusterConfig, run_cluster
from repro.engine.executor import ExecutionOptions
from repro.errors import ClusterReplayError
from repro.faults.nodes import NodeFault, NodeFaultPlan
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import MS, generate_trace

__all__ = [
    "FailoverCell",
    "FailoverSweepReport",
    "DEFAULT_POLICIES",
    "DEFAULT_RATES",
    "DEFAULT_REPLICATION",
    "run_cell",
    "run_sweep",
    "smoke_grid",
    "format_report",
    "main",
]

DEFAULT_POLICIES = ("lru", "clock")
DEFAULT_VARIANTS = ("baseline", "ace")
DEFAULT_RATES = (0.0, 0.5, 1.0)
DEFAULT_REPLICATION = (1, 2)

#: Group-commit boundary for every sweep cell (also the granularity the
#: availability metric's retry windows are bounded by).
COMMIT_EVERY = 32

_OPTIONS = ExecutionOptions(cpu_us_per_op=2.0, commit_every_ops=COMMIT_EVERY)


@dataclass(frozen=True)
class FailoverCell:
    """One (policy, variant, R, failure-rate) replicated cluster replay."""

    policy: str
    variant: str
    replication: int
    rate: float
    scenario: str  # "" for rate-grid cells
    ops: int
    failovers: int
    node_crashes: int
    rejoins: int
    candidates_lost: int
    availability: float
    max_failover_latency_us: float
    retried_accesses: int
    lost_updates: int
    phantom_pages: int
    final_epoch: int
    error: str = ""

    @property
    def label(self) -> str:
        tag = self.scenario if self.scenario else f"f{self.rate:g}"
        return f"{self.policy}/{self.variant}/r{self.replication}/{tag}"

    @property
    def ok(self) -> bool:
        if self.error:
            return False
        if self.lost_updates or self.phantom_pages:
            return False
        if self.scenario == "mid-ace-batch" and self.failovers < 1:
            return False
        if self.scenario == "double-failure" and self.candidates_lost < 1:
            return False
        return True


@dataclass(frozen=True)
class FailoverSweepReport:
    """Every cell of one failover sweep."""

    seed: int
    num_pages: int
    num_ops: int
    num_shards: int
    cells: tuple[FailoverCell, ...]

    @property
    def failures(self) -> list[str]:
        notes = []
        for cell in self.cells:
            if cell.ok:
                continue
            if cell.error:
                notes.append(f"{cell.label}: {cell.error}")
            elif cell.lost_updates or cell.phantom_pages:
                notes.append(
                    f"{cell.label}: lost {cell.lost_updates} committed "
                    f"update(s), {cell.phantom_pages} phantom page(s)"
                )
            else:
                notes.append(
                    f"{cell.label}: scenario {cell.scenario!r} did not "
                    "exercise its failure shape"
                )
        return notes

    @property
    def ok(self) -> bool:
        return not self.failures


def _cell_from_metrics(
    policy: str, variant: str, replication: int, rate: float,
    scenario: str, metrics,
) -> FailoverCell:
    summary = metrics.replication
    return FailoverCell(
        policy=policy,
        variant=variant,
        replication=replication,
        rate=rate,
        scenario=scenario,
        ops=metrics.ops,
        failovers=summary.failovers,
        node_crashes=summary.node_crashes,
        rejoins=summary.rejoins,
        candidates_lost=sum(
            event.candidates_lost
            for report in summary.per_shard
            for event in report.failovers
        ),
        availability=summary.availability,
        max_failover_latency_us=summary.max_failover_latency_us,
        retried_accesses=summary.retried_accesses,
        lost_updates=summary.lost_updates,
        phantom_pages=summary.phantom_pages,
        final_epoch=summary.final_epoch,
    )


def run_cell(
    policy: str,
    variant: str,
    replication: int,
    plan: NodeFaultPlan,
    trace,
    num_pages: int,
    num_shards: int,
    rate: float = 0.0,
    scenario: str = "",
    profile: DeviceProfile = PCIE_SSD,
    workers: int | None = 1,
) -> FailoverCell:
    """Replay one replicated cell under ``plan`` and audit it."""
    config = ClusterConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=num_pages,
        num_shards=num_shards,
        options=_OPTIONS,
        replication_factor=replication,
        node_faults=plan if not plan.is_null else None,
    )
    try:
        metrics = run_cluster(config, trace, workers=workers)
    except ClusterReplayError as exc:
        # A stranded replica group (structured NodeFailure) is a cell
        # failure, reported in the table rather than unwinding the sweep.
        return FailoverCell(
            policy=policy, variant=variant, replication=replication,
            rate=rate, scenario=scenario, ops=0, failovers=0,
            node_crashes=0, rejoins=0, candidates_lost=0,
            availability=0.0, max_failover_latency_us=0.0,
            retried_accesses=0, lost_updates=0, phantom_pages=0,
            final_epoch=0, error=str(exc),
        )
    return _cell_from_metrics(
        policy, variant, replication, rate, scenario, metrics
    )


def _scenario_cells(
    trace, num_pages: int, num_shards: int, seed: int,
    workers: int | None,
) -> list[FailoverCell]:
    """The two mandatory failure shapes, as explicit fault lists."""
    per_shard = max(COMMIT_EVERY * 3, len(trace) // num_shards)
    # Mid-ACE-batch: the crash point sits strictly inside a commit
    # window (not on a boundary), so the ACE stack dies with batched
    # write-backs and unflushed WAL records in flight.
    mid_batch = COMMIT_EVERY * 2 + COMMIT_EVERY // 2 + 1
    mid_ace = NodeFaultPlan(seed=seed, faults=(
        NodeFault(shard=0, node=0, crash_at_access=mid_batch),
    ))
    # Double failure: the replica that would be promoted has its own
    # crash point inside the same in-flight window, dies during the
    # promotion, and the group falls through to the second replica.
    double = NodeFaultPlan(seed=seed, faults=(
        NodeFault(shard=0, node=0, crash_at_access=mid_batch),
        NodeFault(shard=0, node=1, crash_at_access=mid_batch),
        NodeFault(shard=1, node=0,
                  crash_at_access=min(per_shard - 1, mid_batch * 2)),
    ))
    return [
        run_cell("lru", "ace", 1, mid_ace, trace, num_pages, num_shards,
                 scenario="mid-ace-batch", workers=workers),
        run_cell("lru", "ace", 2, double, trace, num_pages, num_shards,
                 scenario="double-failure", workers=workers),
    ]


def run_sweep(
    rates: Sequence[float] = DEFAULT_RATES,
    replication: Sequence[int] = DEFAULT_REPLICATION,
    policies: Sequence[str] = DEFAULT_POLICIES,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    num_pages: int = 8_000,
    num_ops: int = 12_000,
    num_shards: int = 2,
    seed: int = 42,
    workers: int | None = 1,
) -> FailoverSweepReport:
    """The full grid plus the two scenario cells."""
    trace = generate_trace(MS, num_pages, num_ops, seed=seed)
    accesses_per_shard = max(2, num_ops // num_shards)
    cells = []
    for policy in policies:
        for variant in variants:
            for factor in replication:
                for rate in rates:
                    plan = NodeFaultPlan.random(
                        num_shards=num_shards,
                        replicas=factor,
                        failure_rate=rate,
                        accesses_per_shard=accesses_per_shard,
                        seed=seed + int(rate * 1000) + factor,
                    )
                    cells.append(run_cell(
                        policy, variant, factor, plan, trace,
                        num_pages, num_shards, rate=rate,
                        workers=workers,
                    ))
    cells.extend(
        _scenario_cells(trace, num_pages, num_shards, seed, workers)
    )
    return FailoverSweepReport(
        seed=seed, num_pages=num_pages, num_ops=num_ops,
        num_shards=num_shards, cells=tuple(cells),
    )


def smoke_grid(seed: int = 42) -> FailoverSweepReport:
    """The CI-sized sweep: one policy, both variants, small trace."""
    return run_sweep(
        rates=(1.0,),
        policies=("lru",),
        num_pages=3_000,
        num_ops=5_000,
        seed=seed,
    )


def format_report(report: FailoverSweepReport) -> str:
    rows = []
    for cell in report.cells:
        rows.append([
            cell.label,
            str(cell.failovers),
            str(cell.node_crashes),
            str(cell.rejoins),
            f"{cell.availability:.4%}",
            f"{cell.max_failover_latency_us:,.0f}",
            str(cell.lost_updates),
            str(cell.phantom_pages),
            "ok" if cell.ok else "FAIL",
        ])
    return format_table(
        ["cell", "failovers", "crashes", "rejoins", "availability",
         "max failover (us)", "lost", "phantom", "verdict"],
        rows,
        title=(f"Failover sweep (seed={report.seed}, {report.num_ops} ops "
               f"over {report.num_pages} pages, {report.num_shards} "
               f"shards, commit every {COMMIT_EVERY})"),
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.failover",
        description="Replicated-cluster failover durability sweep.",
    )
    parser.add_argument("--rates", default="0,0.5,1",
                        help="comma-separated node-failure rates")
    parser.add_argument("--replication", default="1,2",
                        help="comma-separated replication factors")
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                        help="comma-separated replacement policies")
    parser.add_argument("--variants", default=",".join(DEFAULT_VARIANTS),
                        help="comma-separated bufferpool variants")
    parser.add_argument("--pages", type=int, default=8_000)
    parser.add_argument("--ops", type=int, default=12_000)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for shard replay (1 = "
                             "in-process serial; results are identical "
                             "either way)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed grid for CI (one policy, small "
                             "trace; overrides the sweep options above)")
    args = parser.parse_args(argv)

    if args.smoke:
        report = smoke_grid(seed=args.seed)
    else:
        report = run_sweep(
            rates=tuple(
                float(part) for part in args.rates.split(",") if part.strip()
            ),
            replication=tuple(
                int(part) for part in args.replication.split(",")
                if part.strip()
            ),
            policies=tuple(
                part.strip() for part in args.policies.split(",")
                if part.strip()
            ),
            variants=tuple(
                part.strip() for part in args.variants.split(",")
                if part.strip()
            ),
            num_pages=args.pages,
            num_ops=args.ops,
            num_shards=args.shards,
            seed=args.seed,
            workers=args.workers,
        )
    print(format_report(report))
    for failure in report.failures:
        print(f"FAIL {failure}")
    if not report.ok:
        return 1
    print(
        f"all {len(report.cells)} cells swept; zero committed loss, "
        "zero phantom redo"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
