"""Experiment runner: build (device, policy, manager) stacks and compare them.

Encapsulates the paper's methodology (§VI): for each configuration a fresh
device is created and formatted, the *same* pre-generated request stream is
replayed against the baseline manager and its ACE counterparts, and metrics
come off the shared virtual clock.  Reusing one trace across variants is
the apples-to-apples property the paper gets by re-running identical
pgbench/TPC-C settings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import ExecutionOptions, run_trace, run_transactions
from repro.engine.metrics import RunMetrics
from repro.faults import FaultPlan, FaultyDevice, RetryPolicy
from repro.policies.registry import make_policy
from repro.prefetch.base import Prefetcher
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile
from repro.workloads.tpcc.transactions import TransactionType
from repro.workloads.trace import PageRequest, Trace

__all__ = [
    "StackConfig",
    "build_stack",
    "run_config",
    "compare_policies",
    "FAULTS_ENV_VAR",
    "VARIANTS",
]

#: Environment switch: a :meth:`repro.faults.FaultPlan.parse` spec (for
#: example ``0.01`` or ``read=0.01,torn=0.005,seed=7``) makes every stack
#: built here run behind a :class:`~repro.faults.FaultyDevice`.  Setting it
#: to ``0`` attaches a *disarmed* wrapper — the pass-through CI job uses
#: that to pin down that a rate-0 wrapper changes nothing.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The three bufferpool variants every figure compares.
VARIANTS = ("baseline", "ace", "ace+pf")


@dataclass(frozen=True)
class StackConfig:
    """Everything needed to build a (device, policy, manager) stack.

    Parameters
    ----------
    profile:
        Device profile (asymmetry/concurrency characteristics).
    policy:
        Replacement policy registry name.
    variant:
        "baseline" (classic single-I/O), "ace" (batched write-back), or
        "ace+pf" (batched write-back + concurrent prefetching).
    num_pages:
        Database size in pages.
    pool_fraction:
        Bufferpool capacity as a fraction of the database size (the paper
        uses 6 % unless sweeping memory pressure).
    n_w, n_e:
        ACE overrides; default to the device's ``k_w`` (the paper's tuning).
    with_ftl:
        Attach an FTL for physical-write accounting.
    with_wal:
        Attach a write-ahead log on a separate simulated device.
    checksums:
        Keep per-page checksums on the data device so silent corruption
        (bitrot, misdirected and lost writes) is detected on read; see
        :mod:`repro.storage.device`.
    sanitize:
        Attach the runtime invariant sanitizer to the manager (``None``
        defers to the ``REPRO_SANITIZE`` environment switch).  Debugging
        aid; see :mod:`repro.analyze.sanitizer`.
    fault_plan:
        Wrap the device in a :class:`~repro.faults.FaultyDevice` driven by
        this plan (``None`` defers to the ``REPRO_FAULTS`` environment
        switch; see :data:`FAULTS_ENV_VAR`).
    retry:
        Retry policy handed to the manager for faulted I/O (``None`` means
        the stack-wide default).
    table_backend:
        Buffer-table translation backend (``"array"`` or ``"dict"``);
        ``None`` defers to the ``REPRO_TABLE`` environment switch and the
        address-space auto-selection (see :mod:`repro.bufferpool.table`).
    options:
        Execution-model knobs (CPU costs, background intervals).
    """

    profile: DeviceProfile
    policy: str
    variant: str
    num_pages: int
    pool_fraction: float = 0.06
    n_w: int | None = None
    n_e: int | None = None
    with_ftl: bool = False
    with_wal: bool = False
    checksums: bool = False
    over_provision: float = 0.10
    sanitize: bool | None = None
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy | None = None
    table_backend: str | None = None
    options: ExecutionOptions = field(default_factory=ExecutionOptions)

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}"
            )
        if self.num_pages < 8:
            raise ValueError("database must have at least 8 pages")
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ValueError(
                f"pool fraction must be in (0, 1]: {self.pool_fraction}"
            )

    @property
    def pool_capacity(self) -> int:
        return max(4, int(self.num_pages * self.pool_fraction))

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.variant}"


def _env_fault_plan() -> FaultPlan | None:
    """The ``REPRO_FAULTS`` plan, or ``None`` when the switch is unset."""
    spec = os.environ.get(FAULTS_ENV_VAR)  # lint: allow-wall-clock
    if spec is None or not spec.strip():
        return None
    return FaultPlan.parse(spec)


def build_stack(
    config: StackConfig, prefetcher: Prefetcher | None = None
) -> BufferPoolManager:
    """Instantiate a fresh formatted device and the configured manager."""
    clock = VirtualClock()
    device = SimulatedSSD(
        config.profile,
        num_pages=config.num_pages,
        clock=clock,
        with_ftl=config.with_ftl,
        over_provision=config.over_provision,
        checksums=config.checksums,
    )
    device.format_pages(range(config.num_pages))
    plan = config.fault_plan if config.fault_plan is not None else _env_fault_plan()
    stack_device = device if plan is None else FaultyDevice(device, plan)
    capacity = config.pool_capacity
    policy = make_policy(config.policy, capacity)
    wal = WriteAheadLog(clock) if config.with_wal else None

    if config.variant == "baseline":
        return BufferPoolManager(
            capacity, policy, stack_device, wal=wal,
            sanitize=config.sanitize, retry=config.retry,
            table_backend=config.table_backend,
        )

    ace_config = ACEConfig.for_device(
        config.profile,
        prefetch_enabled=(config.variant == "ace+pf"),
        n_w=config.n_w,
        n_e=config.n_e,
    )
    return ACEBufferPoolManager(
        capacity, policy, stack_device, wal=wal, config=ace_config,
        prefetcher=prefetcher, sanitize=config.sanitize, retry=config.retry,
        table_backend=config.table_backend,
    )


def run_config(
    config: StackConfig,
    trace: Trace,
    label: str | None = None,
) -> RunMetrics:
    """Build the stack for ``config`` and replay ``trace`` through it."""
    manager = build_stack(config)
    return run_trace(
        manager,
        trace,
        options=config.options,
        label=label if label is not None else f"{config.label}/{trace.name}",
    )


def run_config_transactions(
    config: StackConfig,
    transactions: list[tuple[TransactionType, list[PageRequest]]],
    label: str | None = None,
) -> RunMetrics:
    """Build the stack for ``config`` and replay a transaction stream."""
    manager = build_stack(config)
    return run_transactions(
        manager,
        transactions,
        options=config.options,
        label=label if label is not None else config.label,
    )


def compare_policies(
    profile: DeviceProfile,
    policies: tuple[str, ...],
    trace: Trace,
    num_pages: int,
    variants: tuple[str, ...] = VARIANTS,
    pool_fraction: float = 0.06,
    n_w: int | None = None,
    n_e: int | None = None,
    with_ftl: bool = False,
    options: ExecutionOptions | None = None,
    workers: int | None = None,
) -> dict[tuple[str, str], RunMetrics]:
    """Run every (policy, variant) pair on the same trace.

    Returns metrics keyed by ``(policy, variant)`` — the raw material of
    Figures 8, 10 and 11.  Each pair is an independent stack on a private
    clock, so the grid fans out over ``workers`` processes (resolved by
    :func:`repro.bench.parallel.resolve_workers`; ``workers=1`` forces the
    serial path).  Results are identical either way.
    """
    # Imported here: repro.bench.parallel imports this module.
    from repro.bench.parallel import GridJob, run_grid

    if options is None:
        options = ExecutionOptions()
    keys: list[tuple[str, str]] = []
    jobs: list[GridJob] = []
    for policy in policies:
        for variant in variants:
            config = StackConfig(
                profile=profile,
                policy=policy,
                variant=variant,
                num_pages=num_pages,
                pool_fraction=pool_fraction,
                n_w=n_w,
                n_e=n_e,
                with_ftl=with_ftl,
                options=options,
            )
            keys.append((policy, variant))
            jobs.append(
                GridJob(config, trace=trace, label=f"{config.label}/{trace.name}")
            )
    metrics = run_grid(jobs, workers=workers)
    return dict(zip(keys, metrics))
