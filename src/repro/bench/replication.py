"""Replication methodology: repeated runs, means, and dispersion.

The paper's methodology note: "The experiment results are averaged over 5
iterations and the standard deviation was less than 5 %."  This module
provides the same discipline for the simulator — repeated runs over
different workload seeds (the simulator itself is deterministic, so seed
variation is the only randomness source) with mean / standard deviation /
coefficient-of-variation reporting.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.bench.runner import StackConfig, run_config
from repro.engine.metrics import RunMetrics
from repro.workloads.synthetic import WorkloadSpec, generate_trace
from repro.workloads.trace import Trace

__all__ = ["ReplicatedResult", "replicate", "replicate_speedup"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Summary statistics over repeated runs of one configuration."""

    label: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (n-1 denominator)."""
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        return math.sqrt(variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation: std / mean (the paper's < 5% bound)."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean

    def __str__(self) -> str:
        return (
            f"{self.label}: mean={self.mean:.4g} std={self.std:.3g} "
            f"cv={self.cv:.2%} (n={self.n})"
        )


def replicate(
    config: StackConfig,
    trace_factory: Callable[[int], Trace],
    seeds: Sequence[int],
    metric: Callable[[RunMetrics], float] = lambda m: m.elapsed_us,
    label: str | None = None,
) -> ReplicatedResult:
    """Run ``config`` once per seed and summarise ``metric``.

    ``trace_factory(seed)`` builds the workload for each iteration; each
    run gets a fresh device/manager stack.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values = []
    for seed in seeds:
        metrics = run_config(config, trace_factory(seed))
        values.append(metric(metrics))
    return ReplicatedResult(
        label=label if label is not None else config.label,
        values=tuple(values),
    )


def replicate_speedup(
    baseline_config: StackConfig,
    candidate_config: StackConfig,
    spec: WorkloadSpec,
    num_pages: int,
    num_ops: int,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> ReplicatedResult:
    """Speedup of candidate over baseline, replicated over workload seeds.

    Mirrors the paper's 5-iteration averaging for every reported speedup.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    speedups = []
    for seed in seeds:
        trace = generate_trace(spec, num_pages, num_ops, seed=seed)
        baseline = run_config(baseline_config, trace)
        candidate = run_config(candidate_config, trace)
        speedups.append(baseline.elapsed_us / candidate.elapsed_us)
    return ReplicatedResult(
        label=f"speedup {candidate_config.label} vs {baseline_config.label}",
        values=tuple(speedups),
    )
