"""Chaos harness: crash-and-recover sweeps under deterministic fault injection.

The paper's safety story is that delaying and batching data-page writes
(background writer, checkpointer, ACE's ``n_w``-page write-back) never
loses *committed* work, because WAL-before-data plus redo recovery covers
every delayed page.  This harness attacks that story on purpose: it sweeps
fault rates x replacement policies x {baseline, ACE}, runs a write-heavy
trace with periodic commit points against a fault-injecting device, crashes
the stack mid-run, recovers from the WAL, and counts committed updates
that did not survive.  The acceptance bar is exactly zero lost updates in
every cell — including the cells where write batches tear, transient errors
exhaust retries, and checkpoints are withheld.

A second cell type attacks the *quiet* failure mode: silent corruption.
:func:`run_corruption_cell` runs a checksummed stack while the injector
rots pages, misdirects writes, and drops writes without any error surfacing,
then requires every corruption to be detected (checksum on read, or the
idle scrubber's WAL cross-check) and healed from WAL redo images until the
device matches the write ledger exactly.

Everything is virtual-time deterministic: the same seed produces the same
trace, the same fault schedule, and therefore the same cell results, so a
red cell is reproducible with ``python -m repro chaos --seed <s>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import StackConfig, build_stack
from repro.bufferpool.background import (
    BackgroundWriter,
    Checkpointer,
    IdleScrubber,
)
from repro.bufferpool.recovery import (
    CrashImage,
    audit_committed,
    recover,
    simulate_crash,
)
from repro.core.ace import ACEBufferPoolManager
from repro.engine.executor import ExecutionOptions, run_trace
from repro.engine.serving import ServingConfig, ServingLayer
from repro.errors import ReproError
from repro.faults import FaultPlan, RetryPolicy
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import MU, generate_trace

__all__ = [
    "ChaosCellResult",
    "ChaosReport",
    "CorruptionCellResult",
    "DEFAULT_POLICIES",
    "DEFAULT_RATES",
    "DEFAULT_VARIANTS",
    "run_cell",
    "run_chaos",
    "run_corruption_cell",
    "smoke_corruption",
    "smoke_grid",
]

#: The acceptance grid: fault rates x policies x variants.
DEFAULT_RATES = (0.0, 0.001, 0.01)
DEFAULT_POLICIES = ("lru", "clock", "cflru")
DEFAULT_VARIANTS = ("baseline", "ace")


@dataclass(frozen=True)
class ChaosCellResult:
    """One (policy, variant, rate) crash-and-recover experiment."""

    policy: str
    variant: str
    rate: float
    ops_run: int
    committed_updates: int
    #: Committed updates missing from the device after recovery — the
    #: harness's single pass/fail criterion.  Must be zero.
    lost_updates: int
    faults_injected: int
    io_retries: int
    degraded_writebacks: int
    failed_writebacks: int
    checkpoints_skipped: int
    redo_applied: int
    redo_retries: int
    #: Set when the run itself died (for example retries exhausted on a
    #: client-visible read); the cell then failed for a non-durability
    #: reason and is reported as such.
    error: str | None = None
    #: Serving-layer counters (zero when the cell ran without a serving
    #: layer in front of the executor).
    shed: int = 0
    expired: int = 0
    requeued: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None and self.lost_updates == 0

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.variant}@{self.rate:g}"


@dataclass(frozen=True)
class ChaosReport:
    """All cells of one chaos sweep."""

    cells: tuple[ChaosCellResult, ...]
    seed: int

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> tuple[ChaosCellResult, ...]:
        return tuple(cell for cell in self.cells if not cell.ok)

    @property
    def total_faults(self) -> int:
        return sum(cell.faults_injected for cell in self.cells)

    @property
    def total_lost(self) -> int:
        return sum(cell.lost_updates for cell in self.cells)


def run_cell(
    policy: str,
    variant: str,
    rate: float,
    profile: DeviceProfile = PCIE_SSD,
    num_pages: int = 2_000,
    ops: int = 6_000,
    seed: int = 7,
    commit_every: int = 64,
    crash_fraction: float = 2 / 3,
    retry: RetryPolicy | None = None,
    serving: ServingConfig | None = None,
) -> ChaosCellResult:
    """Run one crash-and-recover cell and audit committed durability.

    The stack replays a write-heavy uniform trace (commit point — a WAL
    flush — every ``commit_every`` requests) with the background writer and
    checkpointer attached, then "loses power" ``crash_fraction`` of the way
    through, recovers from the WAL, and compares every page's recovered
    payload against the version it had at the last commit point.  Page
    payloads are monotone version counters, so an update is *lost* exactly
    when a page's durable version is below its committed version.

    With ``serving`` set, the prefix runs through the admission layer
    instead: under open-loop overload some writes are shed or expired and
    never execute, so the trace prefix no longer describes the committed
    work.  The ledger then comes from the serving layer's own
    ``committed_versions`` snapshot — per-page completed-write versions
    captured at the last WAL flush — and the audit answers the question
    the satellite asks: shedding must only ever drop *unadmitted* work,
    never work a commit point already covered.
    """
    if retry is None:
        retry = RetryPolicy()
    plan = FaultPlan.uniform(rate, seed=seed)
    options = ExecutionOptions(
        cpu_us_per_op=2.0,
        bg_writer_interval_us=20_000.0,
        checkpoint_interval_us=100_000.0,
        commit_every_ops=commit_every,
    )
    config = StackConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=num_pages,
        with_wal=True,
        fault_plan=plan,
        retry=retry,
        options=options,
    )
    manager = build_stack(config)
    trace = generate_trace(MU, num_pages, ops, seed=seed)
    crash_at = max(commit_every, int(len(trace) * crash_fraction))
    prefix = trace.slice(0, crash_at)

    # The durability ledger: page -> version at the last commit point.
    # Every executed write increments its page's version counter by one.
    # Without a serving layer every trace write executes, so the committed
    # version is each page's write count over the ops preceding the last
    # commit boundary before the crash.  With a serving layer the ledger
    # is instead snapshotted by the layer itself at each WAL flush (the
    # trace prefix no longer describes the executed work once requests
    # shed or expire); it is read back after the run below.
    committed: dict[int, int] = {}
    if serving is None:
        boundary = (crash_at // commit_every) * commit_every
        for page, is_write in zip(
            prefix.pages[:boundary], prefix.writes[:boundary]
        ):
            if is_write:
                committed[page] = committed.get(page, 0) + 1

    if isinstance(manager, ACEBufferPoolManager):
        batch_size = manager.config.n_w
    else:
        batch_size = 1
    bg_writer = BackgroundWriter(manager, pages_per_round=16,
                                 batch_size=batch_size)
    checkpointer = Checkpointer(manager, interval_us=options.checkpoint_interval_us,
                                batch_size=batch_size)

    # A prebuilt layer (rather than passing the config through run_trace)
    # keeps its metrics — and with them the committed-version ledger —
    # reachable even when the run dies mid-way.
    layer = ServingLayer(manager, serving) if serving is not None else None
    metrics = None
    error: str | None = None
    try:
        metrics = run_trace(
            manager, prefix, options=options,
            bg_writer=bg_writer, checkpointer=checkpointer,
            label=f"chaos/{policy}/{variant}@{rate:g}",
            serving=layer,
        )
    except ReproError as exc:
        # The workload itself died (e.g. a client-visible read exhausted
        # its retries).  That is a legitimate harness outcome to report —
        # the durability audit below still runs on whatever committed.
        error = f"{type(exc).__name__}: {exc}"

    serving_metrics = layer.metrics if layer is not None else None
    if serving_metrics is not None:
        committed = dict(serving_metrics.committed_versions)

    buffer_stats = manager.stats
    device_stats = manager.device.stats
    image = simulate_crash(manager)
    report = recover(image, retry=retry)
    audit = audit_committed(image, report, committed)

    return ChaosCellResult(
        policy=policy,
        variant=variant,
        rate=rate,
        ops_run=metrics.ops if metrics is not None else crash_at,
        committed_updates=audit.committed_updates,
        lost_updates=audit.lost_updates,
        faults_injected=device_stats.faults_injected,
        io_retries=buffer_stats.io_retries,
        degraded_writebacks=buffer_stats.degraded_writebacks,
        failed_writebacks=buffer_stats.failed_writebacks,
        checkpoints_skipped=checkpointer.checkpoints_skipped,
        redo_applied=report.redo_applied,
        redo_retries=report.redo_retries,
        error=error,
        shed=serving_metrics.shed if serving_metrics is not None else 0,
        expired=serving_metrics.expired if serving_metrics is not None else 0,
        requeued=serving_metrics.requeued if serving_metrics is not None else 0,
    )


@dataclass(frozen=True)
class CorruptionCellResult:
    """One silent-corruption detect-and-repair experiment.

    The stack runs with per-page checksums and an idle-time scrubber while
    the device silently decays pages (bitrot), misdirects writes, and
    drops writes on the floor.  The cell passes when every surviving
    corruption is scrubbed out after the run and the healed device matches
    the write ledger *exactly* — silent faults must be detectable and
    repairable from WAL redo images, never absorbed into wrong data.
    """

    policy: str
    variant: str
    rate: float
    ops_run: int
    #: Corruptions the injector introduced (device counter).
    corruptions_injected: int
    #: Checksum failures caught on the client read path mid-run, and how
    #: many of those pages the manager healed inline from the WAL.
    read_path_detections: int
    read_path_repairs: int
    #: Scrubber totals across the run and the post-run healing passes.
    scrub_detected: int
    scrub_repaired: int
    #: Post-run ``scrub_all`` passes until a pass found nothing.
    scrub_passes: int
    #: Corruption still detectable after the healing passes.  Must be zero.
    residual_corruption: int
    lost_updates: int
    phantom_pages: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.residual_corruption == 0
            and self.lost_updates == 0
            and self.phantom_pages == 0
        )

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.variant}@silent:{self.rate:g}"


def run_corruption_cell(
    policy: str = "lru",
    variant: str = "ace",
    rate: float = 0.002,
    profile: DeviceProfile = PCIE_SSD,
    num_pages: int = 800,
    ops: int = 2_400,
    seed: int = 7,
    commit_every: int = 64,
    max_heal_passes: int = 5,
) -> CorruptionCellResult:
    """Run one silent-corruption cell: inject, detect, repair, audit.

    No crash here — the threat model is the quiet one: the run completes
    "successfully" while pages rot underneath it.  Checksums catch
    corruption on read (the manager heals inline from WAL redo), the idle
    scrubber catches it between requests, and post-run ``scrub_all``
    passes heal whatever neither path touched.  The final exact audit
    proves the device equals the write ledger on *every* page, including
    neighbours clobbered by misdirected writes.
    """
    plan = FaultPlan.silent(rate, seed=seed)
    options = ExecutionOptions(
        cpu_us_per_op=2.0,
        bg_writer_interval_us=20_000.0,
        checkpoint_interval_us=100_000.0,
        commit_every_ops=commit_every,
    )
    config = StackConfig(
        profile=profile,
        policy=policy,
        variant=variant,
        num_pages=num_pages,
        with_wal=True,
        checksums=True,
        fault_plan=plan,
        options=options,
    )
    manager = build_stack(config)
    trace = generate_trace(MU, num_pages, ops, seed=seed)

    # Every trace write executes (no serving layer), so the final ledger
    # is each page's total write count.
    ledger: dict[int, int] = {}
    for page, is_write in zip(trace.pages, trace.writes):
        if is_write:
            ledger[page] = ledger.get(page, 0) + 1

    if isinstance(manager, ACEBufferPoolManager):
        batch_size = manager.config.n_w
    else:
        batch_size = 1
    bg_writer = BackgroundWriter(manager, pages_per_round=16,
                                 batch_size=batch_size)
    checkpointer = Checkpointer(manager,
                                interval_us=options.checkpoint_interval_us,
                                batch_size=batch_size)
    scrubber = IdleScrubber(manager, interval_us=40_000.0)

    error: str | None = None
    metrics = None
    try:
        metrics = run_trace(
            manager, trace, options=options,
            bg_writer=bg_writer, checkpointer=checkpointer,
            scrubber=scrubber,
            label=f"corruption/{policy}/{variant}@{rate:g}",
        )
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"

    # Quiesce: flush every dirty page so the device should now equal the
    # ledger everywhere, then heal until a full scrub pass finds nothing.
    # Repair writes flow through the injector too, so one pass may not
    # converge; the bound keeps a pathological seed from looping forever.
    checkpointer.checkpoint()
    scrub = scrubber.scrubber
    passes = 0
    residual = 0
    while passes < max_heal_passes:
        before = scrub.stats.detected
        scrub.scrub_all()
        passes += 1
        residual = scrub.stats.detected - before
        if residual == 0:
            break

    image = CrashImage(
        device=manager.device, wal=manager.wal, lost_dirty_pages=(),
    )
    audit = audit_committed(
        image, None, ledger, exact=True, pages=range(num_pages),
    )

    return CorruptionCellResult(
        policy=policy,
        variant=variant,
        rate=rate,
        ops_run=metrics.ops if metrics is not None else len(trace),
        corruptions_injected=manager.device.stats.silent_corruptions,
        read_path_detections=manager.stats.corrupt_page_reads,
        read_path_repairs=manager.stats.pages_repaired,
        scrub_detected=scrub.stats.detected,
        scrub_repaired=scrub.stats.repaired,
        scrub_passes=passes,
        residual_corruption=residual,
        lost_updates=audit.lost_updates,
        phantom_pages=audit.phantom_pages,
        error=error,
    )


def smoke_corruption(seed: int = 7) -> CorruptionCellResult:
    """The CI smoke corruption cell: one policy, ACE variant, short run."""
    return run_corruption_cell(
        policy="lru", variant="ace", rate=0.01,
        num_pages=600, ops=1_800, seed=seed,
    )


def run_chaos(
    rates: tuple[float, ...] = DEFAULT_RATES,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    profile: DeviceProfile = PCIE_SSD,
    num_pages: int = 2_000,
    ops: int = 6_000,
    seed: int = 7,
    commit_every: int = 64,
    serving: ServingConfig | None = None,
) -> ChaosReport:
    """Sweep the full grid; every cell runs independently and to completion."""
    cells = []
    for rate in rates:
        for policy in policies:
            for variant in variants:
                cells.append(run_cell(
                    policy, variant, rate,
                    profile=profile, num_pages=num_pages, ops=ops,
                    seed=seed, commit_every=commit_every, serving=serving,
                ))
    return ChaosReport(cells=tuple(cells), seed=seed)


def smoke_grid(seed: int = 7) -> ChaosReport:
    """The CI smoke sweep: two rates, two policies, both variants, short runs."""
    return run_chaos(
        rates=(0.0, 0.01),
        policies=("lru", "clock"),
        num_pages=800,
        ops=2_400,
        seed=seed,
    )
