"""repro: ACE — asymmetry & concurrency-aware bufferpool management.

A from-scratch reproduction of *"ACEing the Bufferpool Management Paradigm
for Modern Storage Devices"* (Papon & Athanassoulis, ICDE 2023): a
PostgreSQL-style bufferpool, four replacement policies (Clock Sweep, LRU,
CFLRU, LRU-WSR) plus extras, the ACE wrapper (batched concurrent
write-back, decoupled eviction, concurrent prefetching), a virtual-clock
SSD simulator with an FTL, pgbench/TPC-C workloads, and a benchmark harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import (
        ACEBufferPoolManager, ACEConfig, LRUPolicy, SimulatedSSD, PCIE_SSD,
    )

    device = SimulatedSSD(PCIE_SSD, num_pages=10_000)
    device.format_pages(range(10_000))
    manager = ACEBufferPoolManager(
        capacity=600, policy=LRUPolicy(), device=device,
        config=ACEConfig.for_device(PCIE_SSD, prefetch_enabled=True),
    )
    manager.write_page(42)
    manager.read_page(42)
"""

from repro.analysis import expected_hit_ratio, ideal_speedup, lru_hit_ratio
from repro.bufferpool import (
    BackgroundWriter,
    BufferPoolManager,
    BufferStats,
    BufferTag,
    Checkpointer,
    CrashImage,
    PartitionedBufferPoolManager,
    RecoveryReport,
    WriteAheadLog,
    recover,
    simulate_crash,
)
from repro.cluster import (
    ClusterConfig,
    ClusterMetrics,
    HashShardRouter,
    MappedShardRouter,
    ShardRouter,
    run_cluster,
    run_cluster_transactions,
)
from repro.core import ACEBufferPoolManager, ACEConfig, AdaptiveACEBufferPoolManager
from repro.engine import (
    BreakerConfig,
    Database,
    ExecutionOptions,
    RunMetrics,
    ServingConfig,
    ServingLayer,
    ServingMetrics,
    run_trace,
    run_transactions,
    speedup,
)
from repro.errors import (
    BufferPoolError,
    IOFaultError,
    PageNotBufferedError,
    PoolExhaustedError,
    ReproError,
    RetriesExhaustedError,
    TornWriteError,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultyDevice,
    RetryPolicy,
)
from repro.engine.latency import LatencyRecorder
from repro.engine.multiclient import interleave_traces, interleave_transactions
from repro.policies import (
    ARCPolicy,
    CFLRUPolicy,
    ClockSweepPolicy,
    FIFOPolicy,
    FORPolicy,
    LFUPolicy,
    LRUPolicy,
    LRUWSRPolicy,
    ReplacementPolicy,
    SecondChancePolicy,
    TwoQPolicy,
    make_policy,
    register_policy,
)
from repro.prefetch import (
    CompositePrefetcher,
    HistoryPrefetcher,
    NPLPrefetcher,
    OPLPrefetcher,
    Prefetcher,
    TaPPrefetcher,
)
from repro.storage import (
    OPTANE_SSD,
    PAPER_DEVICES,
    PCIE_SSD,
    SATA_SSD,
    VIRTUAL_SSD,
    DeviceProfile,
    FlashTranslationLayer,
    LatencyModel,
    SimulatedSSD,
    SmartMonitor,
    VirtualClock,
    emulated_profile,
    probe_device,
)
from repro.workloads import (
    MS,
    MU,
    PAPER_WORKLOADS,
    RIS,
    WIS,
    PgbenchWorkload,
    Trace,
    WorkloadSpec,
    generate_trace,
    rw_ratio_spec,
)
from repro.workloads.tpcc import TPCCWorkload, TransactionType
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.ycsb import YCSB_WORKLOADS, generate_ycsb_trace

__version__ = "1.0.0"

__all__ = [
    # core
    "ACEBufferPoolManager",
    "AdaptiveACEBufferPoolManager",
    "ACEConfig",
    # bufferpool
    "BufferPoolManager",
    "PartitionedBufferPoolManager",
    "BufferStats",
    "BufferTag",
    "WriteAheadLog",
    "BackgroundWriter",
    "Checkpointer",
    "CrashImage",
    "RecoveryReport",
    "simulate_crash",
    "recover",
    # cluster
    "ClusterConfig",
    "ClusterMetrics",
    "ShardRouter",
    "HashShardRouter",
    "MappedShardRouter",
    "run_cluster",
    "run_cluster_transactions",
    # policies
    "ReplacementPolicy",
    "LRUPolicy",
    "ClockSweepPolicy",
    "CFLRUPolicy",
    "LRUWSRPolicy",
    "FIFOPolicy",
    "SecondChancePolicy",
    "LFUPolicy",
    "FORPolicy",
    "TwoQPolicy",
    "ARCPolicy",
    "make_policy",
    "register_policy",
    # prefetch
    "Prefetcher",
    "OPLPrefetcher",
    "NPLPrefetcher",
    "TaPPrefetcher",
    "HistoryPrefetcher",
    "CompositePrefetcher",
    # storage
    "VirtualClock",
    "SimulatedSSD",
    "LatencyModel",
    "FlashTranslationLayer",
    "SmartMonitor",
    "DeviceProfile",
    "OPTANE_SSD",
    "PCIE_SSD",
    "SATA_SSD",
    "VIRTUAL_SSD",
    "PAPER_DEVICES",
    "emulated_profile",
    "probe_device",
    # engine
    "Database",
    "ExecutionOptions",
    "RunMetrics",
    "run_trace",
    "run_transactions",
    "speedup",
    "interleave_traces",
    "interleave_transactions",
    "LatencyRecorder",
    # serving
    "ServingConfig",
    "ServingLayer",
    "ServingMetrics",
    "BreakerConfig",
    # analysis
    "ideal_speedup",
    "lru_hit_ratio",
    "expected_hit_ratio",
    # workloads
    "save_trace",
    "load_trace",
    "YCSB_WORKLOADS",
    "generate_ycsb_trace",
    "Trace",
    "WorkloadSpec",
    "MS",
    "WIS",
    "RIS",
    "MU",
    "PAPER_WORKLOADS",
    "generate_trace",
    "rw_ratio_spec",
    "PgbenchWorkload",
    "TPCCWorkload",
    "TransactionType",
    # faults
    "FaultPlan",
    "FaultKind",
    "FaultInjector",
    "FaultyDevice",
    "RetryPolicy",
    # errors
    "ReproError",
    "BufferPoolError",
    "PoolExhaustedError",
    "PageNotBufferedError",
    "IOFaultError",
    "TornWriteError",
    "RetriesExhaustedError",
    "__version__",
]
