"""Command-line interface: probe devices, run workloads, compare variants.

Usage (after ``pip install -e .``)::

    python -m repro probe                          # Table I measurements
    python -m repro run --workload MS --policy lru --variant ace
    python -m repro compare --workload WIS --policies lru,cflru
    python -m repro tpcc --warehouses 4 --transactions 300
    python -m repro experiment fig8                # regenerate a paper figure
    python -m repro lint src                       # repo-specific AST lint
    python -m repro check                          # invariant-sanitized smoke run
    python -m repro chaos                          # fault-injection durability sweep
    python -m repro crashpoints --smoke            # exhaustive crash-point verification
    python -m repro overload                       # saturation sweep + breaker A/B
    python -m repro cluster --smoke                # sharded aggregate-throughput sweep
    python -m repro failover --smoke               # replicated failover durability sweep

Every command prints a small report and exits 0 on success; the heavy
lifting lives in :mod:`repro.bench`.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.bench.parallel import WORKERS_ENV_VAR
from repro.bench.report import format_table
from repro.bench.runner import StackConfig, build_stack, run_config
from repro.engine.executor import ExecutionOptions, run_transactions
from repro.engine.metrics import speedup
from repro.policies.registry import PAPER_POLICIES, POLICY_NAMES, display_name
from repro.storage.probe import probe_device
from repro.storage.profiles import (
    OPTANE_SSD,
    PAPER_DEVICES,
    PCIE_SSD,
    SATA_SSD,
    VIRTUAL_SSD,
    DeviceProfile,
    emulated_profile,
)
from repro.workloads.synthetic import MS, MU, RIS, WIS, generate_trace, rw_ratio_spec
from repro.workloads.tpcc.driver import TPCCWorkload

__all__ = ["main", "build_parser"]

_DEVICES: dict[str, DeviceProfile] = {
    "optane": OPTANE_SSD,
    "pcie": PCIE_SSD,
    "sata": SATA_SSD,
    "virtual": VIRTUAL_SSD,
}

_WORKLOADS = {"MS": MS, "WIS": WIS, "RIS": RIS, "MU": MU}


def _resolve_device(args: argparse.Namespace) -> DeviceProfile:
    if getattr(args, "alpha", None) is not None:
        return emulated_profile(alpha=args.alpha, k_w=args.k_w)
    return _DEVICES[args.device]


def _resolve_workload(name: str, read_fraction: float | None):
    if read_fraction is not None:
        return rw_ratio_spec(read_fraction)
    try:
        return _WORKLOADS[name.upper()]
    except KeyError:
        known = ", ".join(_WORKLOADS)
        raise SystemExit(f"unknown workload {name!r}; known: {known}") from None


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACE bufferpool reproduction: probe, run, compare, tpcc.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    probe = sub.add_parser("probe", help="measure alpha/k of the devices")
    probe.add_argument(
        "--device", choices=sorted(_DEVICES) + ["all"], default="all"
    )

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="MS", help="MS|WIS|RIS|MU")
        p.add_argument("--read-fraction", type=float, default=None,
                       help="override: custom read fraction with 90/10 skew")
        p.add_argument("--device", choices=sorted(_DEVICES), default="pcie")
        p.add_argument("--alpha", type=float, default=None,
                       help="use an emulated device with this asymmetry")
        p.add_argument("--k-w", type=int, default=8,
                       help="write concurrency for the emulated device")
        p.add_argument("--pages", type=int, default=10_000)
        p.add_argument("--ops", type=int, default=20_000)
        p.add_argument("--pool", type=float, default=0.06,
                       help="bufferpool size as a fraction of the data")
        p.add_argument("--n-w", type=int, default=None)
        p.add_argument("--cpu-us", type=float, default=10.0)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for experiment grids "
                            "(default: REPRO_WORKERS env or all CPUs)")

    run = sub.add_parser("run", help="run one workload/policy/variant")
    add_run_options(run)
    run.add_argument("--policy", choices=POLICY_NAMES, default="lru")
    run.add_argument(
        "--variant", choices=("baseline", "ace", "ace+pf"), default="ace"
    )
    run.add_argument(
        "--profile", metavar="PSTATS", default=None,
        help="run under cProfile: write a pstats dump to this path and "
             "print the top-20 cumulative table",
    )

    compare = sub.add_parser(
        "compare", help="baseline vs ACE vs ACE+PF across policies"
    )
    add_run_options(compare)
    compare.add_argument(
        "--policies", default=",".join(PAPER_POLICIES),
        help="comma-separated policy names",
    )

    tpcc = sub.add_parser("tpcc", help="run the TPC-C mix")
    tpcc.add_argument("--warehouses", type=int, default=4)
    tpcc.add_argument("--transactions", type=int, default=300)
    tpcc.add_argument("--row-scale", type=float, default=0.05)
    tpcc.add_argument("--policy", choices=POLICY_NAMES, default="clock")
    tpcc.add_argument("--device", choices=sorted(_DEVICES), default="pcie")
    tpcc.add_argument("--cpu-us", type=float, default=10.0)
    tpcc.add_argument("--seed", type=int, default=42)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "name",
        help="table1|table2|table3|fig2|fig8|fig9|fig10ab|fig10cd|fig10ef|"
             "fig10g|fig10h|fig10i|fig11|fig12",
    )
    experiment.add_argument("--workers", type=int, default=None,
                            help="worker processes for the experiment grid "
                                 "(default: REPRO_WORKERS env or all CPUs)")

    summary = sub.add_parser(
        "summary", help="assemble EXPERIMENTS.md from results/"
    )
    summary.add_argument("--output", default="EXPERIMENTS.md")

    lint = sub.add_parser(
        "lint", help="run the repo-specific AST lint rules (R001-R014)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--exclude", action="append", default=[],
                      metavar="PATTERN",
                      help="fnmatch pattern of paths to skip (repeatable)")
    lint.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the per-file pass")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", dest="fmt",
                      help="output format (default: text)")
    lint.add_argument("--output", default=None,
                      help="write the report to a file instead of stdout")
    lint.add_argument("--baseline", default=None,
                      help="baseline file: known findings warn, new ones fail")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="record current findings as the baseline and exit")

    check = sub.add_parser(
        "check",
        help="replay a smoke workload through every policy/variant with "
             "the runtime invariant sanitizer attached",
    )
    check.add_argument("--policies", default=",".join(POLICY_NAMES),
                       help="comma-separated policy names (default: all)")
    check.add_argument("--device", choices=sorted(_DEVICES), default="pcie")
    check.add_argument("--pages", type=int, default=600)
    check.add_argument("--ops", type=int, default=1500)
    check.add_argument("--seed", type=int, default=42)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: crash mid-run, recover from the WAL, "
             "and fail if any committed update was lost",
    )
    chaos.add_argument("--rates", default="0,0.001,0.01",
                       help="comma-separated per-operation fault rates")
    chaos.add_argument("--policies", default="lru,clock,cflru",
                       help="comma-separated policy names")
    chaos.add_argument("--variants", default="baseline,ace",
                       help="comma-separated variants (baseline|ace|ace+pf)")
    chaos.add_argument("--device", choices=sorted(_DEVICES), default="pcie")
    chaos.add_argument("--pages", type=int, default=2000)
    chaos.add_argument("--ops", type=int, default=6000)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--smoke", action="store_true",
                       help="small fixed grid for CI (overrides the sweep "
                            "options above)")

    crashpoints = sub.add_parser(
        "crashpoints",
        help="exhaustive crash-consistency verification: enumerate every "
             "write boundary, crash there, recover, and audit the device "
             "against the durable-write ledger byte for byte",
    )
    crashpoints.add_argument("--policies", default=",".join(POLICY_NAMES),
                             help="comma-separated policy names")
    crashpoints.add_argument("--variants", default="baseline,ace",
                             help="comma-separated variants (baseline|ace)")
    crashpoints.add_argument("--pages", type=int, default=400)
    crashpoints.add_argument("--ops", type=int, default=1500)
    crashpoints.add_argument("--seed", type=int, default=7)
    crashpoints.add_argument("--max-points", type=int, default=64,
                             help="crash points tested per cell (evenly "
                                  "subsampled; 0 = exhaustive)")
    crashpoints.add_argument("--max-redo-crashes", type=int, default=8,
                             help="crash-during-recovery replays per point "
                                  "(0 = every redo write)")
    crashpoints.add_argument("--smoke", action="store_true",
                             help="small fixed sweep for CI (overrides the "
                                  "options above)")

    cluster = sub.add_parser(
        "cluster",
        help="sharded cluster sweep: aggregate throughput per shards x "
             "placement x policy cell plus the imbalance-vs-cut Pareto "
             "table; fails if locality placement stops beating hash",
    )
    cluster.add_argument("--shards", default="1,2,4",
                         help="comma-separated shard counts")
    cluster.add_argument("--placements", default="hash,locality",
                         help="comma-separated placement schemes")
    cluster.add_argument("--policies", default="lru,clock,cflru",
                         help="comma-separated replacement policies")
    cluster.add_argument("--variant", default="baseline",
                         choices=("baseline", "ace", "ace+pf"))
    cluster.add_argument("--pages", type=int, default=20_000)
    cluster.add_argument("--ops", type=int, default=30_000)
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--workers", type=int, default=1,
                         help="worker processes for shard replay")
    cluster.add_argument("--smoke", action="store_true",
                         help="small fixed grid for CI (one policy, small "
                              "trace)")
    cluster.add_argument("--record", action="store_true",
                         help="append a perf epoch (with the cluster "
                              "section) to the benchmark file")
    cluster.add_argument("--label", default="",
                         help="note recorded with the --record epoch")

    failover = sub.add_parser(
        "failover",
        help="replicated-cluster failover sweep: node-failure rate x "
             "replication factor x policy with the exact cluster-wide "
             "durability audit; fails on any committed loss or phantom "
             "redo",
    )
    failover.add_argument("--rates", default="0,0.5,1",
                          help="comma-separated node-failure rates")
    failover.add_argument("--replication", default="1,2",
                          help="comma-separated replication factors")
    failover.add_argument("--policies", default="lru,clock",
                          help="comma-separated replacement policies")
    failover.add_argument("--variants", default="baseline,ace",
                          help="comma-separated bufferpool variants")
    failover.add_argument("--pages", type=int, default=8_000)
    failover.add_argument("--ops", type=int, default=12_000)
    failover.add_argument("--shards", type=int, default=2)
    failover.add_argument("--seed", type=int, default=42)
    failover.add_argument("--workers", type=int, default=1,
                          help="worker processes for shard replay")
    failover.add_argument("--smoke", action="store_true",
                          help="small fixed grid for CI (one policy, small "
                               "trace)")

    overload = sub.add_parser(
        "overload",
        help="saturation sweep: goodput vs offered load per shed policy, "
             "plus the circuit-breaker latency A/B; fails on a goodput "
             "cliff or a breaker regression",
    )
    overload.add_argument("--policies", default="lru",
                          help="comma-separated replacement policies")
    overload.add_argument("--ops", type=int, default=6000,
                          help="requests in the sweep trace")
    overload.add_argument("--seed", type=int, default=7)
    overload.add_argument("--smoke", action="store_true",
                          help="small fixed grid for CI (one policy, "
                               "3 multipliers)")

    return parser


def _cmd_probe(args: argparse.Namespace) -> int:
    profiles: Sequence[DeviceProfile]
    if args.device == "all":
        profiles = PAPER_DEVICES
    else:
        profiles = [_DEVICES[args.device]]
    rows = []
    for profile in profiles:
        measured = probe_device(profile, max_batch=96)
        rows.append(
            [measured.name, f"{measured.alpha:.2f}", measured.k_r, measured.k_w]
        )
    print(format_table(["Device", "alpha", "k_r", "k_w"], rows,
                       title="Measured device characteristics"))
    return 0


def _stack_config(args: argparse.Namespace, policy: str, variant: str) -> StackConfig:
    return StackConfig(
        profile=_resolve_device(args),
        policy=policy,
        variant=variant,
        num_pages=args.pages,
        pool_fraction=args.pool,
        n_w=args.n_w,
        options=ExecutionOptions(cpu_us_per_op=args.cpu_us),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _resolve_workload(args.workload, args.read_fraction)
    trace = generate_trace(spec, args.pages, args.ops, seed=args.seed)
    config = _stack_config(args, args.policy, args.variant)
    if args.profile:
        from repro.bench.profiling import run_profiled

        metrics = run_profiled(
            lambda: run_config(config, trace), args.profile
        )
    else:
        metrics = run_config(config, trace)
    print(metrics.summary())
    print(f"  hit ratio        {metrics.buffer.hit_ratio:8.2%}")
    print(f"  mean write batch {metrics.buffer.mean_writeback_batch:8.1f}")
    print(f"  ops/s (virtual)  {metrics.ops_per_second:8.0f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.runner import compare_policies

    spec = _resolve_workload(args.workload, args.read_fraction)
    trace = generate_trace(spec, args.pages, args.ops, seed=args.seed)
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    results = compare_policies(
        _resolve_device(args),
        tuple(policies),
        trace,
        num_pages=args.pages,
        pool_fraction=args.pool,
        n_w=args.n_w,
        options=ExecutionOptions(cpu_us_per_op=args.cpu_us),
        workers=args.workers,
    )
    rows = []
    for policy in policies:
        base = results[(policy, "baseline")]
        ace = results[(policy, "ace")]
        ace_pf = results[(policy, "ace+pf")]
        rows.append(
            [
                display_name(policy),
                f"{base.runtime_s:.3f}",
                f"{ace.runtime_s:.3f}",
                f"{ace_pf.runtime_s:.3f}",
                f"{speedup(base, ace):.2f}x",
                f"{speedup(base, ace_pf):.2f}x",
            ]
        )
    print(format_table(
        ["Policy", "base (s)", "ACE (s)", "ACE+PF (s)", "ACE", "ACE+PF"],
        rows,
        title=f"{spec.name} on {_resolve_device(args).name}",
    ))
    return 0


def _cmd_tpcc(args: argparse.Namespace) -> int:
    workload = TPCCWorkload(
        warehouses=args.warehouses, row_scale=args.row_scale, seed=args.seed
    )
    stream = list(workload.transaction_stream(args.transactions))
    options = ExecutionOptions(cpu_us_per_op=args.cpu_us)
    rows = []
    results = {}
    for variant in ("baseline", "ace+pf"):
        config = StackConfig(
            profile=_DEVICES[args.device],
            policy=args.policy,
            variant=variant,
            num_pages=workload.total_pages,
            options=options,
        )
        manager = build_stack(config)
        metrics = run_transactions(manager, stream, options=options,
                                   label=variant)
        results[variant] = metrics
        rows.append(
            [variant, f"{metrics.runtime_s:.3f}", f"{metrics.tpmc:.0f}",
             f"{metrics.miss_ratio:.3f}"]
        )
    print(format_table(
        ["Variant", "runtime (s)", "tpmC", "miss ratio"], rows,
        title=f"TPC-C mix: {args.warehouses} warehouses, "
              f"{args.transactions} transactions",
    ))
    print(f"speedup: {speedup(results['baseline'], results['ace+pf']):.2f}x")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.bench import experiments

    table = {
        "table1": experiments.table1_device_characteristics,
        "table2": experiments.table2_workload_definitions,
        "table3": experiments.table3_overheads,
        "fig2": experiments.fig2_ideal_speedup,
        "fig8": experiments.fig8_synthetic_runtime,
        "fig9": experiments.fig9_writes_over_time,
        "fig10ab": experiments.fig10ab_low_asymmetry_devices,
        "fig10cd": experiments.fig10cd_rw_ratio_sweep,
        "fig10ef": experiments.fig10ef_memory_pressure,
        "fig10g": experiments.fig10g_nw_sweep,
        "fig10h": experiments.fig10h_asymmetry_continuum,
        "fig10i": experiments.fig10i_device_comparison,
        "fig11": experiments.fig11_tpcc_transactions,
        "fig12": experiments.fig12_tpcc_scaling,
    }
    name = args.name.lower()
    if name not in table:
        known = ", ".join(sorted(table))
        raise SystemExit(f"unknown experiment {args.name!r}; known: {known}")
    if args.workers is not None:
        # Experiments resolve workers via REPRO_WORKERS (some take no
        # workers parameter, e.g. the stateful fig9), so the flag is
        # threaded through the environment for the duration of the run.
        os.environ[WORKERS_ENV_VAR] = str(args.workers)
    table[name]()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analyze.lint import run_cli

    return run_cli(
        args.paths,
        list_rules=args.list_rules,
        select=args.select.split(",") if args.select else None,
        exclude=args.exclude,
        jobs=args.jobs,
        fmt=args.fmt,
        output=args.output,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    """Sanitizer smoke run: every policy x variant on a short MS trace.

    Builds each stack with ``sanitize=True`` so the invariant checker
    validates the full bufferpool state after every operation; also
    exercises the pin/flush paths the trace replay does not reach.  Exits
    non-zero on the first stack whose run violates an invariant.
    """
    from repro.bench.runner import VARIANTS
    from repro.engine.executor import run_trace
    from repro.errors import SanitizerError

    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    unknown = [name for name in policies if name not in POLICY_NAMES]
    if unknown:
        raise SystemExit(f"unknown policies: {', '.join(unknown)}")
    trace = generate_trace(MS, args.pages, args.ops, seed=args.seed)
    options = ExecutionOptions(cpu_us_per_op=10.0)
    failures = 0
    for policy in policies:
        for variant in VARIANTS:
            config = StackConfig(
                profile=_DEVICES[args.device],
                policy=policy,
                variant=variant,
                num_pages=args.pages,
                sanitize=True,
                options=options,
            )
            manager = build_stack(config)
            label = f"{policy}/{variant}"
            try:
                run_trace(manager, trace, options=options, label=label)
                # The trace replay never pins or checkpoint-flushes; cover
                # those operations too so their invariants are exercised.
                resident = manager.resident_pages()
                if resident:
                    page = resident[0]
                    manager.pin(page)
                    manager.read_page(page)
                    manager.unpin(page)
                manager.flush_all()
            except SanitizerError as exc:
                failures += 1
                print(f"FAIL {label}: {exc}")
            else:
                checks = manager.sanitizer.checks_run
                print(f"ok   {label}: {checks} operations validated")
    if failures:
        print(f"{failures} stack(s) violated bufferpool invariants")
        return 1
    print(f"all {len(policies) * len(VARIANTS)} stacks clean")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Durability sweep under fault injection; exit 1 on any lost update."""
    from repro.bench.chaos import run_chaos, smoke_corruption, smoke_grid

    corruption = None
    if args.smoke:
        report = smoke_grid(seed=args.seed)
        corruption = smoke_corruption(seed=args.seed)
    else:
        rates = tuple(
            float(part) for part in args.rates.split(",") if part.strip()
        )
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
        variants = tuple(
            name.strip() for name in args.variants.split(",") if name.strip()
        )
        report = run_chaos(
            rates=rates,
            policies=policies,
            variants=variants,
            profile=_DEVICES[args.device],
            num_pages=args.pages,
            ops=args.ops,
            seed=args.seed,
        )
    rows = []
    for cell in report.cells:
        rows.append([
            "ok" if cell.ok else "FAIL",
            cell.label,
            str(cell.faults_injected),
            str(cell.io_retries),
            str(cell.degraded_writebacks),
            str(cell.failed_writebacks),
            str(cell.checkpoints_skipped),
            str(cell.committed_updates),
            str(cell.lost_updates),
        ])
    print(format_table(
        ["", "cell", "faults", "retries", "degr-wb", "failed-wb",
         "ckpt-skip", "committed", "lost"],
        rows,
        title=f"Chaos sweep (seed={report.seed})",
    ))
    for cell in report.failures:
        reason = cell.error if cell.error else f"{cell.lost_updates} lost"
        print(f"FAIL {cell.label}: {reason}")
    if corruption is not None:
        status = "ok  " if corruption.ok else "FAIL"
        print(
            f"{status} {corruption.label}: "
            f"{corruption.corruptions_injected} silent corruptions injected, "
            f"{corruption.read_path_detections} caught on read "
            f"({corruption.read_path_repairs} healed inline), "
            f"{corruption.scrub_detected} scrubbed, "
            f"{corruption.residual_corruption} residual"
        )
        if not corruption.ok and corruption.error:
            print(f"FAIL {corruption.label}: {corruption.error}")
    if not report.ok or (corruption is not None and not corruption.ok):
        return 1
    print(
        f"all {len(report.cells)} cells durable "
        f"({report.total_faults} faults injected, 0 committed updates lost)"
    )
    return 0


def _cmd_crashpoints(args: argparse.Namespace) -> int:
    """Exhaustive crash-point verification; exit 1 on any audit failure."""
    from repro.verify import run_crashpoints, smoke_report

    if args.smoke:
        report = smoke_report(seed=args.seed)
    else:
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
        variants = tuple(
            name.strip() for name in args.variants.split(",") if name.strip()
        )
        report = run_crashpoints(
            policies=policies,
            variants=variants,
            num_pages=args.pages,
            ops=args.ops,
            seed=args.seed,
            max_points=args.max_points or None,
            max_redo_crashes=args.max_redo_crashes or None,
        )
    rows = []
    for config in report.configs:
        rows.append([
            "ok" if config.ok else "FAIL",
            config.label,
            str(config.boundaries),
            str(config.points_tested),
            str(config.points_skipped),
            str(config.redo_crashes_tested),
            str(sum(o.lost_updates for o in config.outcomes)),
            str(sum(o.phantom_pages for o in config.outcomes)),
        ])
    print(format_table(
        ["", "config", "boundaries", "points", "skipped", "redo-crashes",
         "lost", "phantom"],
        rows,
        title=f"Crash-point verification (seed={report.seed})",
    ))
    for config in report.failures:
        for outcome in config.failures:
            reason = outcome.error or (
                f"{outcome.lost_updates} lost, "
                f"{outcome.phantom_pages} phantom, redo replays "
                f"{outcome.redo_crashes_ok}/{outcome.redo_crashes_tested}"
            )
            print(f"FAIL {config.label} {outcome.point.label}: {reason}")
    if not report.ok:
        return 1
    print(
        f"all {len(report.configs)} configs crash-consistent "
        f"({report.points_tested} crash points, "
        f"{report.redo_crashes_tested} recovery re-crashes, "
        f"0 committed updates lost, 0 phantom pages)"
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Cluster sweep; exit 1 if the locality-placement claim fails."""
    from repro.bench.cluster import main as cluster_main

    forwarded: list[str] = [
        "--shards", args.shards,
        "--placements", args.placements,
        "--policies", args.policies,
        "--variant", args.variant,
        "--pages", str(args.pages),
        "--ops", str(args.ops),
        "--seed", str(args.seed),
        "--workers", str(args.workers),
        "--label", args.label,
    ]
    if args.smoke:
        forwarded.append("--smoke")
    if args.record:
        forwarded.append("--record")
    return cluster_main(forwarded)


def _cmd_failover(args: argparse.Namespace) -> int:
    """Failover sweep; exit 1 on committed loss, phantoms, or a missed
    scenario."""
    from repro.bench.failover import main as failover_main

    forwarded: list[str] = [
        "--rates", args.rates,
        "--replication", args.replication,
        "--policies", args.policies,
        "--variants", args.variants,
        "--pages", str(args.pages),
        "--ops", str(args.ops),
        "--shards", str(args.shards),
        "--seed", str(args.seed),
        "--workers", str(args.workers),
    ]
    if args.smoke:
        forwarded.append("--smoke")
    return failover_main(forwarded)


def _cmd_overload(args: argparse.Namespace) -> int:
    """Overload sweep + breaker A/B; exit 1 on a cliff or breaker loss."""
    from repro.bench.overload import format_report, run_overload, smoke_grid

    if args.smoke:
        report = smoke_grid(seed=args.seed)
    else:
        policies = tuple(
            name.strip() for name in args.policies.split(",") if name.strip()
        )
        report = run_overload(policies=policies, ops=args.ops, seed=args.seed)
    print(format_report(report))
    return 0 if report.ok else 1


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.bench.summary import assemble_experiments_md

    path = assemble_experiments_md(args.output)
    print(f"wrote {path}")
    return 0


_COMMANDS = {
    "probe": _cmd_probe,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "tpcc": _cmd_tpcc,
    "experiment": _cmd_experiment,
    "summary": _cmd_summary,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "chaos": _cmd_chaos,
    "crashpoints": _cmd_crashpoints,
    "cluster": _cmd_cluster,
    "failover": _cmd_failover,
    "overload": _cmd_overload,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
