"""Systematic crash-point enumeration: durability as a proof, not a sample.

The chaos harness crashes each stack *once*, at one instant.  This engine
instead enumerates **every write boundary** a run crosses — each data-device
write batch (foreground write-back, background writer, checkpointer flush,
ACE's ``n_w``-page batches), each WAL buffer flush, and each checkpoint
record — and for every one of them replays the run from scratch, fails the
power exactly there, recovers from the WAL, and audits the recovered device
against an independently derived committed-version ledger.  Three kinds of
crash are tested per boundary where they differ:

* **before** — the boundary's write never happens (``tear=0``);
* **torn** — a proper prefix of a multi-page batch (or of a WAL page's
  record group) lands before the power fails (``tear=k``);
* **during recovery** — after a successful crash+recover cycle begins, the
  power fails again at *every* redo write, and recovery is re-run to prove
  the redo pass is idempotent.

The audit is exact in both directions: a committed update missing from the
recovered device is a **lost update**, and a page whose payload differs
from the ledger at all — including pages *ahead* of it — is a **phantom
redo**.  Everything is virtual-time deterministic: the same seed enumerates
the same boundaries and reproduces the same verdicts.

How the ledger avoids circularity: the set of durable WAL records is taken
from a physical scan of the log device with per-page checksum validation
(:meth:`~repro.bufferpool.wal.WriteAheadLog.verify_durable_records`), and
the ledger is rebuilt by *counting* those update records per page — client
writes bump each page's version counter by exactly one, so the n-th durable
update of a page must carry payload ``n``.  The engine cross-checks that
invariant record by record; redo then has to reproduce those counts on the
device, nothing more and nothing less.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.recovery import (
    audit_committed,
    recover,
    simulate_crash,
)
from repro.bufferpool.wal import WalRecord, WalRecordKind, WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import ExecutionOptions, run_trace
from repro.errors import PowerFailure
from repro.policies import POLICY_NAMES, make_policy
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import MU, generate_trace

__all__ = [
    "CrashPoint",
    "CrashPointOutcome",
    "CrashConfigReport",
    "CrashPointReport",
    "CrashSchedule",
    "CrashHookDevice",
    "DEFAULT_VARIANTS",
    "run_crashpoint_config",
    "run_crashpoints",
    "smoke_report",
]

DEFAULT_VARIANTS = ("baseline", "ace")

#: The synthetic crash point appended after the last real boundary: the
#: run completes, power fails at the very end.
END_OF_RUN = "end-of-run"


# --------------------------------------------------------------- schedule


class CrashSchedule:
    """The virtual crash clock shared by the data device and the WAL.

    Every write boundary — data-device batch or WAL page flush — calls
    :meth:`on_boundary` with its site label and size.  In ``record`` mode
    the schedule just enumerates; in ``armed`` mode it returns a tear index
    at exactly one boundary ordinal, which the caller translates into a
    torn prefix plus :class:`~repro.errors.PowerFailure`.
    """

    def __init__(self) -> None:
        self.mode = "record"
        #: Recorded boundaries: ``(site, size)`` in global order.
        self.boundaries: list[tuple[str, int]] = []
        self._counter = 0
        self._target: tuple[int, int] | None = None
        #: Set when the armed target fired: ``(ordinal, site)``.
        self.fired: tuple[int, str] | None = None
        #: When set, overrides every boundary's site label (the engine
        #: re-labels data writes issued *by recovery* as ``redo-write``).
        self.site_override: str | None = None

    @property
    def boundary_count(self) -> int:
        """Boundaries crossed since the last :meth:`reset`."""
        return self._counter

    def reset(
        self,
        mode: str,
        target: tuple[int, int] | None = None,
        site_override: str | None = None,
    ) -> None:
        if mode not in ("record", "armed"):
            raise ValueError(f"unknown schedule mode: {mode!r}")
        self.mode = mode
        self._counter = 0
        self._target = target
        self.fired = None
        self.site_override = site_override
        if mode == "record":
            self.boundaries = []

    def on_boundary(self, site: str, size: int) -> int | None:
        """Consult the schedule at one write boundary.

        Returns ``None`` to let the write proceed atomically, or a tear
        index ``k`` (``0 <= k < size``) meaning: land the first ``k``
        items, then the power fails.
        """
        if self.site_override is not None:
            site = self.site_override
        ordinal = self._counter
        self._counter += 1
        if self.mode == "record":
            self.boundaries.append((site, size))
            return None
        target = self._target
        if target is None or ordinal != target[0]:
            return None
        self.fired = (ordinal, site)
        return target[1]

    def wal_flush_hook(self, records: tuple[WalRecord, ...]) -> int | None:
        """Adapter for :attr:`WriteAheadLog.flush_hook`."""
        site = (
            "wal-checkpoint"
            if any(r.kind is WalRecordKind.CHECKPOINT for r in records)
            else "wal-flush"
        )
        return self.on_boundary(site, len(records))


class CrashHookDevice:
    """A crash-schedule tap in front of a :class:`SimulatedSSD`.

    Composes like :class:`~repro.faults.device.FaultyDevice`: the full
    device surface delegates unchanged, but every write batch first asks
    the schedule whether the power fails at this boundary.  A tear lands a
    proper prefix through the base device (charging its normal batch cost —
    the device was mid-flight when the lights went out) and raises
    :class:`PowerFailure`.  Not being a bare ``SimulatedSSD`` also routes
    the manager off its inlined miss path onto the generic, instrumentable
    one — exactly what a verification harness wants.
    """

    def __init__(self, base: SimulatedSSD, schedule: CrashSchedule) -> None:
        self.base = base
        self.schedule = schedule

    # ------------------------------------------------- delegated surface

    @property
    def profile(self):
        return self.base.profile

    @property
    def model(self):
        return self.base.model

    @property
    def clock(self) -> VirtualClock:
        return self.base.clock

    @property
    def num_pages(self) -> int | None:
        return self.base.num_pages

    @property
    def stats(self):
        return self.base.stats

    @property
    def ftl(self):
        return self.base.ftl

    @property
    def _payloads(self) -> dict[int, object]:
        return self.base._payloads

    @property
    def checksums_enabled(self) -> bool:
        return self.base.checksums_enabled

    def contains(self, page: int) -> bool:
        return self.base.contains(page)

    def peek(self, page: int) -> object | None:
        return self.base.peek(page)

    def verify_page(self, page: int) -> bool:
        return self.base.verify_page(page)

    def snapshot_payloads(self) -> dict[int, object]:
        return self.base.snapshot_payloads()

    def restore_payloads(self, snapshot: Mapping[int, object]) -> None:
        self.base.restore_payloads(snapshot)

    def format_pages(self, pages: Iterable[int]) -> None:
        self.base.format_pages(pages)

    def reset_stats(self) -> None:
        self.base.reset_stats()

    def read_page(self, page: int) -> object | None:
        return self.base.read_page(page)

    def read_batch(self, pages: list[int] | tuple[int, ...]) -> list[object | None]:
        return self.base.read_batch(pages)

    # ------------------------------------------------- hooked writes

    def write_page(self, page: int, payload: object | None = None) -> None:
        self.write_batch({page: payload})

    def write_batch(self, pages: Mapping[int, object] | Iterable[int]) -> None:
        base = self.base
        if isinstance(pages, Mapping):
            items = list(pages.items())
        else:
            items = [(page, base.peek(page)) for page in pages]
        if not items:
            return
        tear = self.schedule.on_boundary("data-write", len(items))
        if tear is None:
            base.write_batch(dict(items))
            return
        prefix = dict(items[:tear])
        if prefix:
            base.write_batch(prefix)
        ordinal, site = self.schedule.fired  # type: ignore[misc]
        raise PowerFailure(
            site, ordinal, f"{tear}/{len(items)} pages of the batch landed"
        )

    def __repr__(self) -> str:
        return f"CrashHookDevice(base={self.base!r})"


# ----------------------------------------------------------- result types


@dataclass(frozen=True)
class CrashPoint:
    """One enumerated crash: boundary ordinal, site, and torn prefix size."""

    ordinal: int
    site: str
    #: Items of the boundary's write that land before the power fails
    #: (0 = the write never happens).
    tear: int

    @property
    def label(self) -> str:
        suffix = f"+{self.tear}" if self.tear else ""
        return f"#{self.ordinal}@{self.site}{suffix}"


@dataclass(frozen=True)
class CrashPointOutcome:
    """Verdict for one crash point, including its recovery re-crashes."""

    point: CrashPoint
    committed_updates: int
    lost_updates: int
    phantom_pages: int
    #: Device writes the primary redo pass issued.
    redo_writes: int
    #: Crash-during-recovery replays run (one per tested redo write), and
    #: how many of them recovered to the exact ledger on the second try.
    redo_crashes_tested: int
    redo_crashes_ok: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.lost_updates == 0
            and self.phantom_pages == 0
            and self.redo_crashes_ok == self.redo_crashes_tested
        )


@dataclass(frozen=True)
class CrashConfigReport:
    """All crash points of one (policy, variant) configuration."""

    policy: str
    variant: str
    seed: int
    boundaries: int
    points_enumerated: int
    points_skipped: int
    outcomes: tuple[CrashPointOutcome, ...]

    @property
    def label(self) -> str:
        return f"{self.policy}/{self.variant}"

    @property
    def points_tested(self) -> int:
        return len(self.outcomes)

    @property
    def redo_crashes_tested(self) -> int:
        return sum(o.redo_crashes_tested for o in self.outcomes)

    @property
    def failures(self) -> tuple[CrashPointOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class CrashPointReport:
    """The whole sweep: one config report per (policy, variant) cell."""

    configs: tuple[CrashConfigReport, ...]
    seed: int

    @property
    def ok(self) -> bool:
        return all(config.ok for config in self.configs)

    @property
    def failures(self) -> tuple[CrashConfigReport, ...]:
        return tuple(config for config in self.configs if not config.ok)

    @property
    def points_tested(self) -> int:
        return sum(config.points_tested for config in self.configs)

    @property
    def redo_crashes_tested(self) -> int:
        return sum(config.redo_crashes_tested for config in self.configs)


# --------------------------------------------------------------- the engine


def _build_stack(
    policy_name: str,
    variant: str,
    num_pages: int,
    profile: DeviceProfile,
    schedule: CrashSchedule,
) -> BufferPoolManager:
    """A WAL-attached stack over a crash-hooked device (fresh every run)."""
    clock = VirtualClock()
    base = SimulatedSSD(profile, num_pages=num_pages, clock=clock)
    base.format_pages(range(num_pages))
    device = CrashHookDevice(base, schedule)
    wal = WriteAheadLog(clock)
    wal.flush_hook = schedule.wal_flush_hook
    capacity = max(16, num_pages // 5)
    policy = make_policy(policy_name, capacity)
    if variant == "baseline":
        return BufferPoolManager(capacity, policy, device, wal=wal)
    if variant == "ace":
        config = ACEConfig.for_device(profile)
        return ACEBufferPoolManager(
            capacity, policy, device, wal=wal, config=config
        )
    raise ValueError(f"unknown variant: {variant!r}")


def _ledger_from_records(
    records: list[WalRecord],
) -> tuple[dict[int, int], str | None]:
    """Rebuild the committed-version ledger from durable update records.

    Client writes bump a page's version counter by exactly one, so the
    n-th durable update of a page must carry redo payload ``n``; any
    divergence means the WAL content itself is wrong (not merely stale)
    and is reported as an error instead of silently trusted.
    """
    ledger: dict[int, int] = {}
    for record in records:
        if record.kind is not WalRecordKind.UPDATE or record.page is None:
            continue
        expected = ledger.get(record.page, 0) + 1
        ledger[record.page] = expected
        if record.payload != expected:
            return ledger, (
                f"WAL redo payload diverges from the write ledger: lsn "
                f"{record.lsn} page {record.page} carries {record.payload!r}"
                f", expected version {expected}"
            )
    return ledger, None


def _spread(count: int, limit: int) -> list[int]:
    """``limit`` indices spread evenly and deterministically over ``count``."""
    if count <= limit:
        return list(range(count))
    if limit == 1:
        return [0]
    step = (count - 1) / (limit - 1)
    picked = sorted({round(i * step) for i in range(limit)})
    return picked


def run_crashpoint_config(
    policy: str,
    variant: str,
    num_pages: int = 400,
    ops: int = 1_500,
    seed: int = 7,
    commit_every: int = 48,
    max_points: int | None = 64,
    max_redo_crashes: int | None = None,
    profile: DeviceProfile = PCIE_SSD,
) -> CrashConfigReport:
    """Enumerate and test every crash point of one (policy, variant) cell.

    Pass ``max_points``/``max_redo_crashes`` to bound the sweep: points are
    then subsampled evenly (deterministically) over the enumeration and the
    skipped count is reported — never silently dropped.  ``None`` removes
    the bound.
    """
    schedule = CrashSchedule()
    trace = generate_trace(MU, num_pages, ops, seed=seed)
    options = ExecutionOptions(
        cpu_us_per_op=2.0,
        bg_writer_interval_us=20_000.0,
        checkpoint_interval_us=100_000.0,
        commit_every_ops=commit_every,
    )

    def _drive(manager: BufferPoolManager) -> None:
        if isinstance(manager, ACEBufferPoolManager):
            batch_size = manager.config.n_w
        else:
            batch_size = 1
        bg_writer = BackgroundWriter(
            manager, pages_per_round=16, batch_size=batch_size
        )
        checkpointer = Checkpointer(
            manager,
            interval_us=options.checkpoint_interval_us,
            batch_size=batch_size,
        )
        run_trace(
            manager, trace, options=options,
            bg_writer=bg_writer, checkpointer=checkpointer,
            label=f"crashpoints/{policy}/{variant}",
        )

    # Pass 1 — record: run to completion, enumerating every boundary.
    schedule.reset("record")
    _drive(_build_stack(policy, variant, num_pages, profile, schedule))
    boundaries = list(schedule.boundaries)

    # Crash-point expansion: every boundary "before", plus a torn variant
    # for every multi-item write, plus the end-of-run image.
    points: list[CrashPoint] = []
    for ordinal, (site, size) in enumerate(boundaries):
        points.append(CrashPoint(ordinal, site, tear=0))
        if size > 1:
            points.append(CrashPoint(ordinal, site, tear=size // 2))
    points.append(CrashPoint(len(boundaries), END_OF_RUN, tear=0))

    enumerated = len(points)
    if max_points is not None and enumerated > max_points:
        picked = {i: points[i] for i in _spread(enumerated, max_points)}
        # Rare sites (a run may cross exactly one wal-checkpoint boundary)
        # must survive subsampling: force the first point of every site
        # the even spread missed.
        sampled_sites = {p.site for p in picked.values()}
        for index, point in enumerate(points):
            if point.site not in sampled_sites:
                picked[index] = point
                sampled_sites.add(point.site)
        points = [picked[i] for i in sorted(picked)]
    skipped = enumerated - len(points)

    outcomes = [
        _test_point(
            point, policy, variant, num_pages, profile, schedule,
            _drive, max_redo_crashes,
        )
        for point in points
    ]
    return CrashConfigReport(
        policy=policy,
        variant=variant,
        seed=seed,
        boundaries=len(boundaries),
        points_enumerated=enumerated,
        points_skipped=skipped,
        outcomes=tuple(outcomes),
    )


def _test_point(
    point: CrashPoint,
    policy: str,
    variant: str,
    num_pages: int,
    profile: DeviceProfile,
    schedule: CrashSchedule,
    drive,
    max_redo_crashes: int | None,
) -> CrashPointOutcome:
    """Pass 2 — armed: replay, crash at ``point``, recover, audit, re-crash."""

    def _failed(error: str, committed: int = 0) -> CrashPointOutcome:
        return CrashPointOutcome(
            point=point, committed_updates=committed, lost_updates=0,
            phantom_pages=0, redo_writes=0, redo_crashes_tested=0,
            redo_crashes_ok=0, error=error,
        )

    end_of_run = point.site == END_OF_RUN
    schedule.reset(
        "armed", None if end_of_run else (point.ordinal, point.tear)
    )
    manager = _build_stack(policy, variant, num_pages, profile, schedule)
    crashed = False
    try:
        drive(manager)
    except PowerFailure:
        crashed = True
    if crashed == end_of_run:
        # Determinism violation: the armed run must cross exactly the
        # boundaries the record run enumerated.
        return _failed(
            f"crash point {point.label} "
            + ("fired unexpectedly" if crashed else "was never reached")
        )
    if not end_of_run and schedule.fired[1] != point.site:  # type: ignore[index]
        return _failed(
            f"boundary {point.ordinal} is {schedule.fired[1]} in the armed "
            f"run but {point.site} in the record run"
        )

    image = simulate_crash(manager)
    try:
        records = image.wal.verify_durable_records()
    except RuntimeError as exc:
        return _failed(str(exc))
    ledger, ledger_error = _ledger_from_records(records)
    committed = sum(ledger.values())
    if ledger_error is not None:
        return _failed(ledger_error, committed)

    # Primary recovery (schedule disarmed but still counting: the counter
    # afterwards is the number of redo device writes).
    snapshot = image.device.snapshot_payloads()
    schedule.reset("armed", None)
    report = recover(image)
    redo_writes = schedule.boundary_count
    audit = audit_committed(
        image, report, ledger, exact=True, pages=range(num_pages),
    )

    # Crash-during-recovery: re-crash before every redo write in turn,
    # then re-run recovery to completion — the device must still reach the
    # ledger exactly (redo idempotence).
    targets = range(redo_writes)
    if max_redo_crashes is not None:
        targets = _spread(redo_writes, max_redo_crashes)
    tested = 0
    redo_ok = 0
    for target in targets:
        image.device.restore_payloads(snapshot)
        schedule.reset("armed", (target, 0), site_override="redo-write")
        try:
            recover(image)
            # Recovery finishing means the armed redo write never came up
            # — restore/replay drift; count as a failed replay.
            tested += 1
            continue
        except PowerFailure:
            pass
        schedule.reset("armed", None)
        rerun = recover(image)
        re_audit = audit_committed(
            image, rerun, ledger, exact=True, pages=range(num_pages),
        )
        tested += 1
        if re_audit.ok:
            redo_ok += 1

    return CrashPointOutcome(
        point=point,
        committed_updates=committed,
        lost_updates=audit.lost_updates,
        phantom_pages=audit.phantom_pages,
        redo_writes=redo_writes,
        redo_crashes_tested=tested,
        redo_crashes_ok=redo_ok,
    )


def run_crashpoints(
    policies: tuple[str, ...] = POLICY_NAMES,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    num_pages: int = 400,
    ops: int = 1_500,
    seed: int = 7,
    commit_every: int = 48,
    max_points: int | None = 64,
    max_redo_crashes: int | None = 8,
    profile: DeviceProfile = PCIE_SSD,
) -> CrashPointReport:
    """The full sweep: every policy x variant cell, independently."""
    configs = []
    for policy in policies:
        for variant in variants:
            configs.append(run_crashpoint_config(
                policy, variant,
                num_pages=num_pages, ops=ops, seed=seed,
                commit_every=commit_every, max_points=max_points,
                max_redo_crashes=max_redo_crashes, profile=profile,
            ))
    return CrashPointReport(configs=tuple(configs), seed=seed)


def smoke_report(seed: int = 7) -> CrashPointReport:
    """The CI smoke sweep: two policies x both variants, tightly bounded."""
    return run_crashpoints(
        policies=("lru", "clock"),
        num_pages=240,
        ops=900,
        seed=seed,
        commit_every=32,
        max_points=24,
        max_redo_crashes=4,
    )
