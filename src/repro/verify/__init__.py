"""Verification engines: exhaustive correctness proofs over the simulator.

Where :mod:`repro.bench.chaos` *samples* the failure space with randomized
fault injection, this package *enumerates* it.  The first engine,
:mod:`repro.verify.crashpoints`, walks every write boundary of a
representative trace, crashes there deterministically, recovers, and
audits the result byte-for-byte — including re-crashing inside recovery
itself.
"""

from repro.verify.crashpoints import (
    CrashConfigReport,
    CrashPoint,
    CrashPointOutcome,
    CrashPointReport,
    CrashSchedule,
    CrashHookDevice,
    run_crashpoint_config,
    run_crashpoints,
    smoke_report,
)

__all__ = [
    "CrashConfigReport",
    "CrashPoint",
    "CrashPointOutcome",
    "CrashPointReport",
    "CrashSchedule",
    "CrashHookDevice",
    "run_crashpoint_config",
    "run_crashpoints",
    "smoke_report",
]
