"""Adaptive ACE: tune the write-back batch size online.

The paper tunes ``n_w`` to the device's write concurrency ``k_w`` measured
*offline* (Table I).  In deployments the device is often a black box — a
cloud volume whose effective concurrency can even change with provisioned
IOPS.  :class:`AdaptiveACEBufferPoolManager` closes that gap: it measures
the **amortized per-page write-back latency** of candidate batch sizes on
the live workload and converges to the best one, re-probing periodically.

The tuner is a deterministic explore/exploit state machine:

1. **Explore** — cycle through a geometric ladder of candidate ``n_w``
   values (1, 2, 4, ...), attributing each batched write-back's measured
   latency to the candidate that issued it, until every candidate has
   written at least ``explore_pages`` pages.
2. **Exploit** — commit to the candidate with the lowest per-page cost for
   ``exploit_pages`` written pages, then return to step 1 (devices and
   workloads drift).

Because the amortized write cost is minimised exactly at ``n_w = k_w``
(one full device wave; see :meth:`repro.storage.latency.LatencyModel.
amortized_write_us`), the tuner recovers the paper's recommended setting
without being told ``k_w``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.bufferpool.wal import WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.policies.base import ReplacementPolicy
from repro.prefetch.base import Prefetcher
from repro.storage.device import SimulatedSSD

__all__ = ["AdaptiveACEBufferPoolManager", "DEFAULT_LADDER"]

#: Geometric candidate ladder; covers every device in the paper's Table I.
DEFAULT_LADDER = (1, 2, 4, 8, 16, 32)


class AdaptiveACEBufferPoolManager(ACEBufferPoolManager):
    """ACE with an online explore/exploit tuner for ``n_w``.

    Parameters
    ----------
    capacity, policy, device, wal, prefetcher:
        As in :class:`~repro.core.ace.ACEBufferPoolManager`.
    ladder:
        Candidate ``n_w`` values to explore (capped at the pool capacity).
    explore_pages:
        Written pages required per candidate before it is considered
        measured.
    exploit_pages:
        Written pages to spend on the winning candidate before re-probing.
    prefetch_enabled:
        Enable the Reader (``n_e`` follows the tuned ``n_w``).
    """

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        device: SimulatedSSD,
        wal: WriteAheadLog | None = None,
        prefetcher: Prefetcher | None = None,
        ladder: Iterable[int] = DEFAULT_LADDER,
        explore_pages: int = 64,
        exploit_pages: int = 4096,
        prefetch_enabled: bool = False,
    ) -> None:
        candidates = sorted({n for n in ladder if 1 <= n <= capacity})
        if not candidates:
            raise ValueError("the candidate ladder is empty after capping")
        if explore_pages < 1 or exploit_pages < 1:
            raise ValueError("explore/exploit budgets must be positive")
        initial = candidates[0]
        config = ACEConfig(
            n_w=initial, n_e=initial, prefetch_enabled=prefetch_enabled
        )
        super().__init__(
            capacity, policy, device, wal=wal, config=config,
            prefetcher=prefetcher,
        )
        self.ladder = tuple(candidates)
        self.explore_pages = explore_pages
        self.exploit_pages = exploit_pages
        self._phase = "explore"
        self._candidate_index = 0
        self._cost_us: dict[int, float] = dict.fromkeys(self.ladder, 0.0)
        self._pages_written: dict[int, int] = dict.fromkeys(self.ladder, 0)
        self._exploit_budget = 0
        self.reprobes = 0
        self._apply_n_w(initial)

    # ------------------------------------------------------------- tuning

    @property
    def current_n_w(self) -> int:
        return self.writer.n_w

    @property
    def tuned_n_w(self) -> int | None:
        """The batch size currently believed best (None while exploring)."""
        if self._phase != "exploit":
            return None
        return self.current_n_w

    def measured_costs(self) -> dict[int, float]:
        """Per-page amortized write cost per candidate (us/page)."""
        return {
            n: (self._cost_us[n] / pages if (pages := self._pages_written[n]) else float("inf"))
            for n in self.ladder
        }

    def _apply_n_w(self, n_w: int) -> None:
        self.writer.n_w = n_w
        self.evictor.n_e = n_w
        # Keep the config observable (frozen dataclass: rebuild).
        self.config = ACEConfig(
            n_w=n_w, n_e=n_w,
            prefetch_enabled=self.config.prefetch_enabled,
            prefetch_placement=self.config.prefetch_placement,
        )

    def _write_back(self, pages, background: bool = False) -> int:
        page_list = list(pages)
        t0 = self.device.clock.now_us
        written = super()._write_back(page_list, background=background)
        elapsed = self.device.clock.now_us - t0
        if written:
            self._record(written, elapsed)
        return written

    def _record(self, pages_written: int, elapsed_us: float) -> None:
        n_w = self.current_n_w
        if self._phase == "explore":
            self._cost_us[n_w] += elapsed_us
            self._pages_written[n_w] += pages_written
            if self._pages_written[n_w] >= self.explore_pages:
                self._advance_exploration()
        else:
            self._exploit_budget -= pages_written
            if self._exploit_budget <= 0:
                self._start_exploration()

    def _advance_exploration(self) -> None:
        self._candidate_index += 1
        if self._candidate_index < len(self.ladder):
            self._apply_n_w(self.ladder[self._candidate_index])
            return
        best = min(self.measured_costs().items(), key=lambda item: item[1])[0]
        self._phase = "exploit"
        self._exploit_budget = self.exploit_pages
        self._apply_n_w(best)

    def _start_exploration(self) -> None:
        self.reprobes += 1
        self._phase = "explore"
        self._candidate_index = 0
        self._cost_us = dict.fromkeys(self.ladder, 0.0)
        self._pages_written = dict.fromkeys(self.ladder, 0)
        self._apply_n_w(self.ladder[0])
