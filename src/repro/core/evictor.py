"""ACE Evictor: drop one or ``n_e`` (clean) pages in virtual order.

Paper Section IV-C.  After the Writer has cleaned the head of the virtual
order, the Evictor decides *how many* pages to drop: one (classic locality-
preserving behaviour) or ``n_e`` (making room for the Reader to prefetch
``n_e - 1`` pages).  Which pages are dropped still follows the replacement
policy's virtual order — the Evictor adds no ordering of its own, which is
why ACE composes with any replacement algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.bufferpool.manager import BufferPoolManager

__all__ = ["Evictor"]


class Evictor:
    """Drops eviction candidates selected from the policy's virtual order."""

    def __init__(self, manager: "BufferPoolManager", n_e: int) -> None:
        if n_e < 1:
            raise ValueError(f"n_e must be at least 1: {n_e}")
        self.manager = manager
        self.n_e = n_e
        self.multi_evictions = 0
        self.pages_evicted = 0
        #: Candidates skipped because a degraded write-back left them dirty.
        self.skipped_dirty = 0

    def select_eviction_set(self, victim: int) -> list[int]:
        """Up to ``n_e`` pages to evict, led by the current victim.

        ``peek`` is the policy's bulk virtual-order fast path; the victim
        is normally its head, so asking for ``n_e`` candidates covers the
        ``n_e - 1`` non-victim pages needed either way.
        """
        candidates = [victim]
        for page in self.manager.policy.peek(self.n_e):
            if len(candidates) >= self.n_e:
                break
            if page != victim:
                candidates.append(page)
        return candidates

    def evict(self, pages: list[int]) -> int:
        """Drop the given pages from the bufferpool.

        Pages that are (still) dirty — a degraded write-back can leave a
        candidate unclean — are skipped rather than dropped: losing an
        unflushed update is never an acceptable fallback.
        """
        manager = self.manager
        dirty = manager._dirty_set
        dropped = 0
        for page in pages:
            if page in dirty:
                self.skipped_dirty += 1
                continue
            manager._evict(page)
            dropped += 1
        if dropped > 1:
            self.multi_evictions += 1
        self.pages_evicted += dropped
        return dropped
