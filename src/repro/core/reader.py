"""ACE Reader: concurrent prefetch of ``n_e - 1`` pages on a buffer miss.

Paper Section IV-D.  The Reader is the optional component that exploits the
device's *read* concurrency: when the Evictor freed ``n_e`` slots, the
Reader asks its prefetcher for up to ``n_e - 1`` predictions and reads them
**in the same concurrent batch** as the page that missed.  The missed page
is installed at the most-recently-used position; prefetched pages are
installed at the least-recently-used position so that a wrong prediction is
simply dropped at the next eviction without ever costing a write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import IOFaultError
from repro.prefetch.base import Prefetcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.bufferpool.manager import BufferPoolManager

__all__ = ["Reader"]


class Reader:
    """Fetches a missed page plus prefetch candidates in one batch."""

    def __init__(
        self,
        manager: "BufferPoolManager",
        prefetcher: Prefetcher,
        cold_placement: bool = True,
    ) -> None:
        self.manager = manager
        self.prefetcher = prefetcher
        self.cold_placement = cold_placement
        self.batched_fetches = 0
        self.pages_prefetched = 0
        #: Prefetch batches abandoned after a device fault.
        self.aborted_batches = 0

    def select_prefetch_set(self, page: int, limit: int) -> list[int]:
        """Up to ``limit`` prefetchable pages for a miss on ``page``.

        Suggestions already resident in the pool, out of device range, or
        duplicated are filtered out; the prefetcher's confidence rules
        (stream detection, fetch threshold) are applied inside ``suggest``.
        """
        if limit <= 0:
            return []
        manager = self.manager
        num_pages = manager.device.num_pages
        frame_of = manager._frame_of  # lint: allow-translation
        selected: list[int] = []
        seen = {page}
        for candidate in self.prefetcher.suggest(page, limit):
            if candidate in seen or candidate in frame_of:
                continue
            if num_pages is not None and not 0 <= candidate < num_pages:
                continue
            seen.add(candidate)
            selected.append(candidate)
            if len(selected) == limit:
                break
        return selected

    def fetch(self, page: int, prefetch_pages: list[int]) -> int:
        """Concurrently read ``page`` + ``prefetch_pages`` and install them.

        The missed page enters hot (MRU); prefetched pages enter cold (LRU
        end) and are flagged so prefetch accuracy can be measured.  Returns
        the frame id the missed page was installed into.
        """
        manager = self.manager
        batch = [page] + prefetch_pages
        try:
            payloads = manager.device.read_batch(batch)
        except IOFaultError as fault:
            return self._fetch_degraded(page, fault)
        frame_id = manager._install_fetched(
            page, payloads[0], cold=False, prefetched=False
        )
        for candidate, payload in zip(prefetch_pages, payloads[1:]):
            manager._install_fetched(
                candidate, payload, cold=self.cold_placement, prefetched=True
            )
        if prefetch_pages:
            self.batched_fetches += 1
            self.pages_prefetched += len(prefetch_pages)
        return frame_id

    def _fetch_degraded(self, page: int, fault: IOFaultError) -> int:
        """A faulted prefetch batch degrades to the missed page alone.

        Prefetching is speculative, so spending retry backoff on predicted
        pages is wasted virtual time: the batch is abandoned and only the
        page the client actually asked for is (re)read, under the
        manager's retry policy.  A permanent fault on the missed page
        itself still propagates.
        """
        manager = self.manager
        self.aborted_batches += 1
        manager.stats.io_faults += 1
        if fault.permanent and page in fault.pages:
            raise fault
        try:
            payload = manager.device.read_page(page)
        except IOFaultError as single_fault:
            payload = manager._read_page_with_retry(page, single_fault)
        return manager._install_fetched(
            page, payload, cold=False, prefetched=False
        )
