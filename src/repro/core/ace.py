"""ACE: the Asymmetry & Concurrency-aware bufferpool manager (Algorithm 1).

ACE wraps an unmodified replacement policy and changes only what happens on
a buffer miss whose eviction candidate is **dirty**:

* the :class:`~repro.core.writer.Writer` concurrently writes back the next
  ``n_w`` dirty pages in the policy's virtual order (one device write wave
  when ``n_w = k_w``), amortising the asymmetric write cost;
* without prefetching, the :class:`~repro.core.evictor.Evictor` then drops
  just the (now clean) victim — ACE behaves exactly like the classic
  manager otherwise;
* with prefetching, the Evictor drops ``n_e`` pages and the
  :class:`~repro.core.reader.Reader` concurrently reads the missed page
  plus up to ``n_e - 1`` predicted pages, exploiting read concurrency.

When the candidate is clean, or on a miss with free frames, ACE follows the
classical path (modulo opportunistic prefetching into free slots), so a
read-only workload behaves *identically* to the baseline — the paper's
"no penalty" property.
"""

from __future__ import annotations

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.core.config import ACEConfig
from repro.core.evictor import Evictor
from repro.core.reader import Reader
from repro.core.writer import Writer
from repro.errors import RetriesExhaustedError
from repro.faults.retry import RetryPolicy
from repro.policies.base import ReplacementPolicy
from repro.prefetch.base import Prefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.storage.device import SimulatedSSD

__all__ = ["ACEBufferPoolManager"]


class ACEBufferPoolManager(BufferPoolManager):
    """The ACE wrapper over any replacement policy.

    Parameters
    ----------
    capacity, policy, device, wal, sanitize:
        As in :class:`~repro.bufferpool.manager.BufferPoolManager`.
    config:
        ACE tuning; defaults to the paper's ``n_w = n_e = k_w`` for the
        device in use, with prefetching disabled.
    prefetcher:
        Read-ahead policy for the Reader.  Defaults to the paper's
        composite (TaP sequential + history table) when prefetching is
        enabled.  Any :class:`~repro.prefetch.base.Prefetcher` works.
    """

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        device: SimulatedSSD,
        wal: WriteAheadLog | None = None,
        config: ACEConfig | None = None,
        prefetcher: Prefetcher | None = None,
        sanitize: bool | None = None,
        retry: RetryPolicy | None = None,
        table_backend: str | None = None,
    ) -> None:
        super().__init__(
            capacity,
            policy,
            device,
            wal=wal,
            sanitize=sanitize,
            retry=retry,
            table_backend=table_backend,
        )
        if config is None:
            config = ACEConfig.for_device(device.profile)
        self.config = config
        if prefetcher is None and config.prefetch_enabled:
            prefetcher = CompositePrefetcher(max_page=device.num_pages)
        self.writer = Writer(self, config.n_w)
        self.evictor = Evictor(self, config.n_e)
        self.reader = (
            Reader(
                self,
                prefetcher,
                cold_placement=(config.prefetch_placement == "cold"),
            )
            if prefetcher is not None
            else None
        )
        if self.reader is not None:
            # Per-access prefetcher training hook, consumed by the base
            # manager's request fast path.
            self._observer = self.reader.prefetcher.observe
        #: (n_w, n_e) to restore when degraded batching ends; ``None`` while
        #: running at full batch sizes.
        self._degraded_batching: tuple[int, int] | None = None

    # ------------------------------------------------- degraded batching

    @property
    def batching_degraded(self) -> bool:
        """Whether a circuit breaker currently holds the batches shrunk."""
        return self._degraded_batching is not None

    def enter_degraded_batching(self, n_w: int = 1, n_e: int | None = None) -> None:
        """Temporarily shrink the write-back/eviction batch sizes.

        Called by the serving layer's circuit breaker when device latency
        spikes push tail latency past its threshold: a full ``n_w``-page
        batch stalls the triggering request (and everything queued behind
        it) for the whole batch, so under pressure smaller batches trade
        amortisation for tail latency.  Idempotent; the original sizes are
        captured on first entry and restored by
        :meth:`exit_degraded_batching`.
        """
        if n_w < 1:
            raise ValueError(f"degraded n_w must be positive: {n_w}")
        if self._degraded_batching is None:
            self._degraded_batching = (self.writer.n_w, self.evictor.n_e)
        full_n_w, full_n_e = self._degraded_batching
        self.writer.n_w = min(n_w, full_n_w)
        self.evictor.n_e = min(n_e if n_e is not None else n_w, full_n_e)
        self.evictor.n_e = max(1, self.evictor.n_e)

    def exit_degraded_batching(self) -> None:
        """Restore the full batch sizes captured at degradation entry."""
        if self._degraded_batching is None:
            return
        self.writer.n_w, self.evictor.n_e = self._degraded_batching
        self._degraded_batching = None

    @property
    def variant(self) -> str:  # type: ignore[override]
        return "ace+pf" if self.prefetching_enabled else "ace"

    @property
    def prefetching_enabled(self) -> bool:
        return self.config.prefetch_enabled and self.reader is not None

    # ------------------------------------------------------- Algorithm 1

    def _handle_miss(self, page: int) -> int:
        if self.reader is not None:
            self.reader.prefetcher.on_miss(page)

        if self.pool.has_free():
            # Lines 9-16: free slots available; optionally prefetch into
            # them — "up to n_e - 1 pages, depending on available slots".
            if self.prefetching_enabled:
                limit = min(self.config.n_e - 1, self.pool.free_count - 1)
                return self._fetch_with_prefetch(page, limit)
            return self._load(page)

        victim = self.policy.select_victim()
        if victim is None:
            raise self._pool_exhausted(page)

        dirty_set = self._dirty_set
        if victim not in dirty_set:
            # Lines 19-22: clean top page — identical to the classic path.
            self.stats.clean_evictions += 1
            self._evict(victim)
            return self._load(page)

        # Lines 25-27: dirty top page — concurrently write n_w dirty pages.
        self.stats.dirty_evictions += 1
        writeback_set = self.writer.select_writeback_set(victim)

        if not self.prefetching_enabled:
            # Lines 38-39: write the batch, evict only the victim.
            self.writer.flush(writeback_set)
            if victim in dirty_set:
                # The batch tore or failed before reaching the victim: fall
                # back to the next clean page in the virtual order.
                victim = self._degraded_victim(victim)
            self.evictor.evict([victim])
            return self._load(page)

        # Lines 31-36: evict n_e pages and prefetch n_e - 1.
        eviction_set = self.evictor.select_eviction_set(victim)
        # Pages about to be evicted must be clean; fold any dirty ones into
        # the same concurrent write batch ("pages written and to be evicted
        # can be different", Algorithm 1 comment).
        batch = dict.fromkeys(writeback_set)
        for candidate in eviction_set:
            if candidate in dirty_set:
                batch.setdefault(candidate)
        self.writer.flush(list(batch))
        # Degradation: a torn/failed batch leaves some candidates dirty.
        # Evict only the pages that actually came back clean; the rest stay
        # resident and re-queued, and the prefetch budget shrinks to match.
        clean_set = [p for p in eviction_set if p not in dirty_set]
        skipped = len(eviction_set) - len(clean_set)
        if skipped:
            self.stats.degraded_evictions += skipped
            if not clean_set:
                fallback = self._clean_victim_fallback()
                if fallback is None:
                    raise RetriesExhaustedError(
                        "write",
                        tuple(eviction_set),
                        self.retry.max_attempts,
                        "batched write-back failed and the pool holds no "
                        "clean page to evict instead",
                    )
                clean_set = [fallback]
        self.evictor.evict(clean_set)
        # The co-evicted pages (everything but the victim) were clean or
        # just cleaned; count them as clean evictions.
        self.stats.clean_evictions += (
            len(clean_set) - 1 if victim in clean_set else len(clean_set)
        )
        return self._fetch_with_prefetch(page, len(clean_set) - 1)

    def _fetch_with_prefetch(self, page: int, limit: int) -> int:
        assert self.reader is not None
        prefetch_set = self.reader.select_prefetch_set(page, limit)
        return self.reader.fetch(page, prefetch_set)

    # ----------------------------------------------------------- flushing

    def flush_all(self) -> int:
        """Checkpoint-style flush, batched ``n_w`` pages at a time.

        The paper augments PostgreSQL's checkpointer and background writer
        to "always perform n_w writes concurrently"; the ACE manager's own
        flush does the same.  It reads the Writer's *live* batch size so a
        breaker-degraded manager also checkpoints with small batches.
        """
        dirty = self.dirty_pages()
        n_w = self.writer.n_w
        for start in range(0, len(dirty), n_w):
            self._write_back(dirty[start : start + n_w])
        if self.wal is not None and not self._dirty_set:
            # Same rule as the base manager: no checkpoint record while
            # degraded write-backs have left pages dirty.
            self.wal.checkpoint_record()
        return len(dirty)
