"""ACE configuration: write-back batch size, eviction width, prefetching.

The paper tunes ACE as follows (Section IV-A):

* ``n_w`` — the number of dirty pages written back concurrently — is set to
  the device's write concurrency ``k_w``, so one batched write-back costs a
  single write latency ("the concurrent writes take place at the same
  latency as a single write");
* ``n_e`` — the number of pages evicted (and hence ``n_e - 1`` prefetched)
  when prefetching is enabled — is *also* set to ``k_w``: values between 1
  and ``k_r`` were tested, and evicting more than ``k_w`` pages hurt
  locality more than the extra read concurrency helped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.profiles import DeviceProfile

__all__ = ["ACEConfig"]


@dataclass(frozen=True)
class ACEConfig:
    """Tuning knobs of the ACE bufferpool manager.

    Parameters
    ----------
    n_w:
        Write-back batch size (the paper's ``n_w``; optimal at ``k_w``).
    n_e:
        Pages evicted per dirty-victim miss when prefetching is enabled;
        ``n_e - 1`` pages are prefetched into the freed slots.
    prefetch_enabled:
        Toggles the Reader component (ACE vs ACE+prefetching in Figure 8).
    prefetch_placement:
        Where prefetched pages enter the replacement order: ``"cold"``
        (the paper's choice — least-recently-used position, so wrong
        predictions drop cheaply) or ``"hot"`` (most-recently-used; kept
        as an ablation knob to demonstrate why the paper's choice wins).
    """

    n_w: int
    n_e: int
    prefetch_enabled: bool = False
    prefetch_placement: str = "cold"

    def __post_init__(self) -> None:
        if self.n_w < 1:
            raise ValueError(f"n_w must be at least 1: {self.n_w}")
        if self.n_e < 1:
            raise ValueError(f"n_e must be at least 1: {self.n_e}")
        if self.prefetch_placement not in ("cold", "hot"):
            raise ValueError(
                f"placement must be 'cold' or 'hot': {self.prefetch_placement!r}"
            )

    @classmethod
    def for_device(
        cls,
        profile: DeviceProfile,
        prefetch_enabled: bool = False,
        n_w: int | None = None,
        n_e: int | None = None,
    ) -> "ACEConfig":
        """The paper's tuning: ``n_w = n_e = k_w`` of the device in use."""
        resolved_n_w = n_w if n_w is not None else profile.k_w
        resolved_n_e = n_e if n_e is not None else resolved_n_w
        return cls(
            n_w=resolved_n_w,
            n_e=resolved_n_e,
            prefetch_enabled=prefetch_enabled,
        )
