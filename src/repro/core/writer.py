"""ACE Writer: concurrent write-back of the next ``n_w`` dirty pages.

Paper Section IV-B.  The Writer materialises the write-back policy of the
augmented design space: it picks the next ``n_w`` *dirty* pages in the
replacement policy's virtual eviction order (``populate_pages_to_writeback``
in Algorithm 1) and flushes them in a single concurrent device batch.  With
``n_w = k_w`` the batch completes at the latency of one write, amortising
the asymmetric write cost and making the following evictions "free" — they
will, with high probability, target clean pages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.bufferpool.manager import BufferPoolManager

__all__ = ["Writer"]


class Writer:
    """Selects and concurrently flushes write-back candidates."""

    def __init__(self, manager: "BufferPoolManager", n_w: int) -> None:
        if n_w < 1:
            raise ValueError(f"n_w must be at least 1: {n_w}")
        self.manager = manager
        self.n_w = n_w
        self.batches_issued = 0
        self.pages_written = 0
        #: Flushes that landed fewer pages than requested (fault path).
        self.short_flushes = 0

    def select_writeback_set(self, victim: int) -> list[int]:
        """The paper's ``populate_pages_to_writeback()``.

        Returns up to ``n_w`` dirty pages led by the current (dirty) victim,
        followed by the next dirty pages in the policy's virtual order —
        ``next_dirty`` is the policy's maintained fast path, so this is one
        bulk read of the dirty sub-order rather than a filtered rescan.
        """
        candidates = [victim]
        for page in self.manager.policy.next_dirty(self.n_w):
            if len(candidates) >= self.n_w:
                break
            if page != victim:
                candidates.append(page)
        return candidates

    def flush(self, pages: list[int]) -> int:
        """Issue one concurrent write batch and mark the pages clean.

        Under fault injection the manager's write-back may land only part
        of the batch (``written < len(pages)``); the remainder stays dirty
        and the Evictor degrades accordingly.
        """
        if not pages:
            return 0
        written = self.manager._write_back(pages)
        self.batches_issued += 1
        self.pages_written += written
        if written < len(pages):
            self.short_flushes += 1
        return written
