"""The paper's contribution: the ACE bufferpool manager and its components."""

from repro.core.ace import ACEBufferPoolManager
from repro.core.adaptive import DEFAULT_LADDER, AdaptiveACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.core.evictor import Evictor
from repro.core.reader import Reader
from repro.core.writer import Writer

__all__ = [
    "ACEBufferPoolManager",
    "AdaptiveACEBufferPoolManager",
    "DEFAULT_LADDER",
    "ACEConfig",
    "Writer",
    "Evictor",
    "Reader",
]
