"""Analytical models: ACE's ideal speedup and Che's LRU approximation."""

from repro.analysis.che import (
    characteristic_time,
    expected_hit_ratio,
    lru_hit_ratio,
    two_class_popularities,
)
from repro.analysis.model import (
    amortization_factor,
    ideal_speedup,
    speedup_grid,
    speedup_vs_alpha,
)

__all__ = [
    "amortization_factor",
    "ideal_speedup",
    "speedup_vs_alpha",
    "speedup_grid",
    "characteristic_time",
    "lru_hit_ratio",
    "two_class_popularities",
    "expected_hit_ratio",
]
