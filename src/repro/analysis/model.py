"""Closed-form performance model for ACE (Figures 2 and 10h).

The paper's intuition in cost-model form.  Consider a saturated bufferpool
serving a request stream with buffer miss ratio ``m``; a fraction ``f_d`` of
evictions target a dirty page.  With single-page I/O (the classic manager),
a miss whose victim is dirty costs a read plus a write::

    C_base = t_r * (1 + f_d * alpha)            (per miss)

ACE amortises the dirty-victim write over a concurrent batch of ``n_w``
pages, which completes in ``ceil(n_w / k_w)`` device waves::

    C_ace = t_r * (1 + f_d * alpha * ceil(n_w / k_w) / n_w)

The ideal speedup ``C_base / C_ace`` grows with the asymmetry ``alpha`` and
with ``n_w`` up to ``k_w`` (one full wave), then degrades — exactly the
shape of Figure 10h.  A hit fraction ``1 - m`` with per-request CPU cost
dilutes the gain, which the full model accounts for.
"""

from __future__ import annotations

import math

__all__ = [
    "amortization_factor",
    "ideal_speedup",
    "speedup_vs_alpha",
    "speedup_grid",
]


def amortization_factor(n_w: int, k_w: int) -> float:
    """Per-page share of a concurrent write batch: ``ceil(n_w/k_w) / n_w``.

    1.0 for single-page writes; ``1/k_w`` at the sweet spot ``n_w = k_w``.
    """
    if n_w < 1 or k_w < 1:
        raise ValueError("n_w and k_w must be at least 1")
    return math.ceil(n_w / k_w) / n_w


def ideal_speedup(
    alpha: float,
    n_w: int,
    k_w: int,
    dirty_fraction: float = 0.5,
    miss_ratio: float = 1.0,
    cpu_per_read: float = 0.0,
) -> float:
    """Ideal ACE speedup over the single-I/O baseline.

    Parameters
    ----------
    alpha:
        Device read/write asymmetry.
    n_w, k_w:
        Write-back batch size and device write concurrency.
    dirty_fraction:
        Fraction of evictions whose victim is dirty (grows with the
        workload's write intensity; ~0 for read-only workloads).
    miss_ratio:
        Buffer miss ratio; hits cost only CPU and dilute the gain.
    cpu_per_read:
        CPU cost per request, expressed in units of the read latency.
    """
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1: {alpha}")
    if not 0.0 <= dirty_fraction <= 1.0:
        raise ValueError(f"dirty fraction must be in [0, 1]: {dirty_fraction}")
    if not 0.0 < miss_ratio <= 1.0:
        raise ValueError(f"miss ratio must be in (0, 1]: {miss_ratio}")
    factor = amortization_factor(n_w, k_w)
    base_per_request = cpu_per_read + miss_ratio * (1.0 + dirty_fraction * alpha)
    ace_per_request = cpu_per_read + miss_ratio * (
        1.0 + dirty_fraction * alpha * factor
    )
    return base_per_request / ace_per_request


def speedup_vs_alpha(
    alphas: list[float],
    k_w: int = 8,
    dirty_fraction: float = 0.5,
    miss_ratio: float = 1.0,
    cpu_per_read: float = 0.0,
) -> list[float]:
    """Ideal speedup as asymmetry grows, at the tuned ``n_w = k_w`` (Fig. 2)."""
    return [
        ideal_speedup(
            alpha,
            n_w=k_w,
            k_w=k_w,
            dirty_fraction=dirty_fraction,
            miss_ratio=miss_ratio,
            cpu_per_read=cpu_per_read,
        )
        for alpha in alphas
    ]


def speedup_grid(
    alphas: list[float],
    n_ws: list[int],
    k_w: int = 8,
    dirty_fraction: float = 0.5,
) -> list[list[float]]:
    """Speedup over the (alpha, n_w) continuum of Figure 10h.

    Returns a row per ``alpha`` with one column per ``n_w``.  The maximum
    sits at the largest alpha and ``n_w = k_w``.
    """
    return [
        [
            ideal_speedup(alpha, n_w=n_w, k_w=k_w, dirty_fraction=dirty_fraction)
            for n_w in n_ws
        ]
        for alpha in alphas
    ]
