"""Che's approximation: analytical LRU hit ratios under the IRM.

Under the Independent Reference Model (each request hits page ``i`` with
probability ``p_i``, independently), Che's approximation gives the LRU hit
probability of page ``i`` in a cache of ``C`` pages as::

    h_i = 1 - exp(-p_i * T_C)

where the *characteristic time* ``T_C`` solves::

    sum_i (1 - exp(-p_i * T_C)) = C

This predicts the miss ratios the simulator measures for LRU on the
synthetic workloads (which are IRM by construction), giving the test suite
an independent cross-check of the whole bufferpool path, and letting users
size pools analytically before running simulations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "characteristic_time",
    "lru_hit_ratio",
    "two_class_popularities",
    "expected_hit_ratio",
]


def characteristic_time(
    popularities: np.ndarray, capacity: int, tolerance: float = 1e-9
) -> float:
    """Solve Che's fixed point for the characteristic time ``T_C``.

    ``popularities`` are per-page request probabilities (need not be
    normalised; they are normalised internally).  ``capacity`` is the
    cache size in pages and must be smaller than the page count.
    """
    p = np.asarray(popularities, dtype=float)
    if p.ndim != 1 or len(p) == 0:
        raise ValueError("popularities must be a non-empty 1-D array")
    if np.any(p < 0) or p.sum() == 0:
        raise ValueError("popularities must be non-negative with positive sum")
    if not 0 < capacity < len(p):
        raise ValueError(
            f"capacity must be in (0, {len(p)}): got {capacity}"
        )
    p = p / p.sum()

    def filled(t: float) -> float:
        return float(np.sum(-np.expm1(-p * t)))

    # Bracket: at t=0 nothing is cached; grow until the cache overfills.
    low, high = 0.0, float(capacity)
    while filled(high) < capacity:
        high *= 2.0
        if high > 1e18:
            raise RuntimeError("failed to bracket the characteristic time")
    while high - low > tolerance * max(high, 1.0):
        mid = (low + high) / 2.0
        if filled(mid) < capacity:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def lru_hit_ratio(popularities: np.ndarray, capacity: int) -> float:
    """Expected LRU hit ratio for an IRM stream with these popularities."""
    p = np.asarray(popularities, dtype=float)
    p = p / p.sum()
    t_c = characteristic_time(p, capacity)
    per_page_hit = -np.expm1(-p * t_c)
    return float(np.sum(p * per_page_hit))


def two_class_popularities(
    num_pages: int, op_fraction: float, page_fraction: float
) -> np.ndarray:
    """Popularity vector of the paper's x/y locality workloads.

    ``op_fraction`` of requests go uniformly to ``page_fraction`` of the
    pages (e.g. 0.9/0.1 for the skewed workloads).
    """
    if num_pages < 2:
        raise ValueError("need at least 2 pages")
    if not 0.0 < op_fraction < 1.0 or not 0.0 < page_fraction < 1.0:
        raise ValueError("fractions must be in (0, 1)")
    hot_count = max(1, int(round(num_pages * page_fraction)))
    cold_count = num_pages - hot_count
    popularities = np.empty(num_pages)
    popularities[:hot_count] = op_fraction / hot_count
    popularities[hot_count:] = (1.0 - op_fraction) / cold_count
    return popularities


def expected_hit_ratio(
    num_pages: int,
    capacity: int,
    op_fraction: float = 0.9,
    page_fraction: float = 0.1,
) -> float:
    """Predicted LRU hit ratio for an x/y-skewed workload (convenience)."""
    popularities = two_class_popularities(num_pages, op_fraction, page_fraction)
    return lru_hit_ratio(popularities, capacity)
