"""Prefetcher API used by ACE's Reader component.

A prefetcher sees the access stream (for training), is notified of buffer
misses (for stream detection), and on request *suggests* pages to read
concurrently alongside the missed page.  Suggesting nothing is always legal
— prefetching is an optional component of the design space (paper §III-D).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["Prefetcher", "NullPrefetcher"]


class Prefetcher(ABC):
    """Base class for read-ahead policies."""

    #: Registry/report name; subclasses override.
    name = "base"

    def observe(self, page: int) -> None:
        """Record that ``page`` was accessed (hit or miss); trains the model."""

    def on_miss(self, page: int) -> None:
        """Record that ``page`` missed in the bufferpool."""

    @abstractmethod
    def suggest(self, page: int, n: int) -> list[int]:
        """Up to ``n`` pages to prefetch together with missed page ``page``.

        The returned list never contains ``page`` itself and never contains
        duplicates.  An empty list means "no confident prediction" and the
        caller should skip prefetching for this miss.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NullPrefetcher(Prefetcher):
    """Never prefetches; turns ACE-with-prefetching into ACE-without."""

    name = "none"

    def suggest(self, page: int, n: int) -> list[int]:
        return []
