"""History-based prefetcher: per-page successor table (paper §IV-D, Fig. 7).

Row ``i`` of the table holds the pages most likely to be accessed right
after page ``i``, each with a weight.  Training follows the paper exactly:
given the previous and current references, the row indexed by the previous
page is updated —

* if the current page is already in the row's ``NextPages`` vector, its
  weight is incremented;
* otherwise, if some entry has weight zero, the current page replaces it
  with weight 1;
* otherwise the lowest-weight entry is decremented (the vector is bounded
  to the 3 most probable successors, so entries must defend their slot).

Prefetch suggestions chain through the table: the best successor of the
missed page, then the best successor of that page, and so on, stopping when
no candidate clears the ``fetch_threshold`` weight.
"""

from __future__ import annotations

from repro.prefetch.base import Prefetcher

__all__ = ["HistoryPrefetcher"]


class HistoryPrefetcher(Prefetcher):
    """Successor-table prefetcher with bounded rows and weighted voting."""

    name = "history"

    def __init__(
        self,
        candidates_per_page: int = 3,
        fetch_threshold: int = 2,
        max_weight: int = 63,
    ) -> None:
        if candidates_per_page < 1:
            raise ValueError("need at least one candidate per page")
        if fetch_threshold < 1:
            raise ValueError("fetch threshold must be at least 1")
        if max_weight < fetch_threshold:
            raise ValueError("max weight must be at least the fetch threshold")
        self.candidates_per_page = candidates_per_page
        self.fetch_threshold = fetch_threshold
        self.max_weight = max_weight
        # page -> parallel lists (next_pages, weights), bounded rows.
        self._table: dict[int, tuple[list[int], list[int]]] = {}
        self._previous_page: int | None = None
        self.trained_pairs = 0

    def observe(self, page: int) -> None:
        """Train on the (previous, current) reference pair."""
        previous = self._previous_page
        self._previous_page = page
        if previous is None or previous == page:
            return
        self.trained_pairs += 1
        row = self._table.get(previous)
        if row is None:
            self._table[previous] = ([page], [1])
            return
        next_pages, weights = row
        if page in next_pages:
            index = next_pages.index(page)
            if weights[index] < self.max_weight:
                weights[index] += 1
            return
        if len(next_pages) < self.candidates_per_page:
            next_pages.append(page)
            weights.append(1)
            return
        # Row is full: take the weakest slot or weaken it.
        weakest = min(range(len(weights)), key=weights.__getitem__)
        if weights[weakest] == 0:
            next_pages[weakest] = page
            weights[weakest] = 1
        else:
            weights[weakest] -= 1

    def best_successor(self, page: int, exclude: set[int]) -> int | None:
        """Highest-weight successor of ``page`` clearing the threshold."""
        row = self._table.get(page)
        if row is None:
            return None
        next_pages, weights = row
        best: int | None = None
        best_weight = self.fetch_threshold - 1
        for candidate, weight in zip(next_pages, weights):
            if candidate in exclude:
                continue
            if weight > best_weight:
                best = candidate
                best_weight = weight
        return best

    def suggest(self, page: int, n: int) -> list[int]:
        """Chain up to ``n`` predicted pages starting from ``page``."""
        suggestions: list[int] = []
        exclude = {page}
        current = page
        for _ in range(n):
            successor = self.best_successor(current, exclude)
            if successor is None:
                break
            suggestions.append(successor)
            exclude.add(successor)
            current = successor
        return suggestions

    def row(self, page: int) -> tuple[list[int], list[int]] | None:
        """The (NextPages, Weights) row for ``page`` (tests/diagnostics)."""
        row = self._table.get(page)
        if row is None:
            return None
        return list(row[0]), list(row[1])

    def table_size(self) -> int:
        """Number of populated rows (the paper notes ~0.6% of DB size)."""
        return len(self._table)
