"""Simple sequential lookahead prefetchers: OPL and NPL (paper §III-D).

One-Page Lookahead (OPL) prefetches the single page after the requested
page; N-Page Lookahead (NPL) prefetches the next ``depth`` pages.  These are
the "very simple prefetching techniques" commercial systems use; they are
included both as baselines and to demonstrate that ACE's Reader accepts any
prefetching technique.
"""

from __future__ import annotations

from repro.prefetch.base import Prefetcher

__all__ = ["NPLPrefetcher", "OPLPrefetcher"]


class NPLPrefetcher(Prefetcher):
    """N-Page Lookahead: always suggest the next ``depth`` page numbers."""

    name = "npl"

    def __init__(self, depth: int = 4, max_page: int | None = None) -> None:
        if depth < 1:
            raise ValueError(f"lookahead depth must be positive: {depth}")
        self.depth = depth
        self.max_page = max_page

    def suggest(self, page: int, n: int) -> list[int]:
        limit = min(self.depth, n)
        suggestions = [page + offset for offset in range(1, limit + 1)]
        if self.max_page is not None:
            suggestions = [p for p in suggestions if p < self.max_page]
        return suggestions


class OPLPrefetcher(NPLPrefetcher):
    """One-Page Lookahead: NPL with depth 1."""

    name = "opl"

    def __init__(self, max_page: int | None = None) -> None:
        super().__init__(depth=1, max_page=max_page)
