"""TaP: table-based sequential-stream detection and prefetching (paper §IV-D).

TaP (Li et al., FAST 2008) detects sequential access patterns with a small
table of *expected next* page addresses:

* on a page miss ``P`` that is **not** in the table, the address ``P + 1``
  is inserted — if the miss starts a sequential stream, the very next miss
  of that stream will find its address in the table;
* on a miss ``P`` that **is** in the table, the stream it belongs to grew by
  one: the entry is replaced by ``P + 1`` and the stream length incremented.

ACE triggers actual prefetching only once a stream has produced at least
``trigger_length`` (default 4) sequential requests; then the next
``n`` pages are read concurrently with the page that missed.  Old entries
that never became streams are evicted FIFO.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetch.base import Prefetcher

__all__ = ["TaPPrefetcher"]


class TaPPrefetcher(Prefetcher):
    """Sequential prefetcher with TaP-style stream detection."""

    name = "tap"

    def __init__(
        self,
        table_size: int = 256,
        trigger_length: int = 4,
        max_page: int | None = None,
    ) -> None:
        if table_size < 1:
            raise ValueError("table size must be positive")
        if trigger_length < 2:
            raise ValueError("a stream needs at least 2 sequential requests")
        self.table_size = table_size
        self.trigger_length = trigger_length
        self.max_page = max_page
        # expected next page -> length of the stream ending there.
        self._table: OrderedDict[int, int] = OrderedDict()
        #: page whose miss most recently extended a confirmed stream
        self._active_stream_page: int | None = None
        self._active_stream_length = 0
        self.streams_detected = 0

    def on_miss(self, page: int) -> None:
        """Feed a buffer miss to the sequential detection module."""
        self._active_stream_page = None
        length = self._table.pop(page, None)
        if length is None:
            # Possibly the start of a new stream: watch for page + 1.
            self._insert(page + 1, 1)
            return
        new_length = length + 1
        self._insert(page + 1, new_length)
        if new_length >= self.trigger_length:
            if new_length == self.trigger_length:
                self.streams_detected += 1
            self._active_stream_page = page
            self._active_stream_length = new_length

    def in_stream(self, page: int) -> bool:
        """Whether ``page``'s most recent miss extended a confirmed stream.

        ACE's Reader consults this to route between the sequential and the
        history-based prefetcher (paper Algorithm 1, ``prefetch_pages``).
        """
        return self._active_stream_page == page

    def suggest(self, page: int, n: int) -> list[int]:
        """The next ``n`` sequential pages, if ``page`` is in a stream.

        Issuing a prefetch also *sustains* the stream: the page right after
        the prefetched run is inserted into the table so that the miss
        ending the run re-enters the confirmed stream immediately instead
        of re-paying the detection warm-up.
        """
        if not self.in_stream(page):
            return []
        suggestions = [page + offset for offset in range(1, n + 1)]
        if self.max_page is not None:
            suggestions = [p for p in suggestions if p < self.max_page]
        if suggestions:
            continuation = suggestions[-1] + 1
            self._insert(
                continuation, self._active_stream_length + len(suggestions)
            )
        return suggestions

    def table_contents(self) -> dict[int, int]:
        """Snapshot of the TaP table (tests/diagnostics)."""
        return dict(self._table)

    def _insert(self, expected_page: int, length: int) -> None:
        if expected_page in self._table:
            # Keep the longer stream interpretation.
            length = max(length, self._table.pop(expected_page))
        self._table[expected_page] = length
        while len(self._table) > self.table_size:
            # FIFO eviction of stale would-be streams, as in the paper.
            self._table.popitem(last=False)
