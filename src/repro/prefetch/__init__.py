"""Read-ahead substrate: OPL/NPL, TaP, history table, and the ACE composite."""

from repro.prefetch.base import NullPrefetcher, Prefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.history import HistoryPrefetcher
from repro.prefetch.sequential import NPLPrefetcher, OPLPrefetcher
from repro.prefetch.tap import TaPPrefetcher

__all__ = [
    "Prefetcher",
    "NullPrefetcher",
    "OPLPrefetcher",
    "NPLPrefetcher",
    "TaPPrefetcher",
    "HistoryPrefetcher",
    "CompositePrefetcher",
]
