"""The ACE Reader's prefetch selection: sequential if a stream, else history.

Paper Algorithm 1, ``prefetch_pages(P, x)``: if ``P`` is part of a detected
sequential stream, read ``P`` and the next ``x`` pages concurrently
(sequential prefetcher); otherwise consult the history-based prefetcher.
This module composes :class:`~repro.prefetch.tap.TaPPrefetcher` and
:class:`~repro.prefetch.history.HistoryPrefetcher` accordingly.
"""

from __future__ import annotations

from repro.prefetch.base import Prefetcher
from repro.prefetch.history import HistoryPrefetcher
from repro.prefetch.tap import TaPPrefetcher

__all__ = ["CompositePrefetcher"]


class CompositePrefetcher(Prefetcher):
    """TaP for sequential streams, history table for everything else."""

    name = "composite"

    def __init__(
        self,
        sequential: TaPPrefetcher | None = None,
        history: HistoryPrefetcher | None = None,
        max_page: int | None = None,
    ) -> None:
        self.sequential = (
            sequential if sequential is not None else TaPPrefetcher(max_page=max_page)
        )
        self.history = history if history is not None else HistoryPrefetcher()
        self.sequential_suggestions = 0
        self.history_suggestions = 0

    def observe(self, page: int) -> None:
        self.history.observe(page)

    def on_miss(self, page: int) -> None:
        self.sequential.on_miss(page)

    def suggest(self, page: int, n: int) -> list[int]:
        if self.sequential.in_stream(page):
            suggestions = self.sequential.suggest(page, n)
            if suggestions:
                self.sequential_suggestions += len(suggestions)
                return suggestions
        suggestions = self.history.suggest(page, n)
        self.history_suggestions += len(suggestions)
        return suggestions
