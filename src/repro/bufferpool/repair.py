"""WAL-based page repair and the idle-time corruption scrubber.

The silent-corruption fault kinds (:class:`~repro.faults.plan.FaultKind`
``BITROT`` / ``MISDIRECTED_WRITE`` / ``LOST_WRITE``) damage device state
without raising; checksums make the damage *detectable* on read, and this
module makes it *healable*: every committed update's redo image is in the
WAL (WAL-before-data), so a corrupt page can be rewritten from its latest
durable redo image — the same physical redo recovery applies after a
crash, used surgically on one page.

Two consumers:

* the buffer manager's read path repairs on demand when a device read
  raises :class:`~repro.errors.CorruptPageError`;
* the :class:`Scrubber` sweeps the device in idle-time rounds, verifying
  checksums and cross-checking clean pages against their latest durable
  redo image, healing latent corruption *before* anything reads it.  The
  WAL cross-check is what catches lost writes on devices without
  checksums: the payload self-verifies (it is simply old), but it cannot
  lie to the log.

Pages with no durable redo image (never updated since the initial load)
repair to the load-time payload — the simulator formats every page to
version ``0``, the moral equivalent of re-initialising from the base
backup a real system keeps.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.bufferpool.wal import WalRecordKind, WriteAheadLog

__all__ = ["redo_index", "repair_page", "ScrubStats", "Scrubber"]

#: The payload ``format_pages`` loads every page with.
FORMAT_PAYLOAD = 0


def redo_index(wal: WriteAheadLog) -> dict[int, object]:
    """Latest durable redo payload per page, in one pass over the log."""
    index: dict[int, object] = {}
    for record in wal.durable_records():
        if record.kind is WalRecordKind.UPDATE and record.page is not None:
            index[record.page] = record.payload
    return index


def repair_page(
    device,
    wal: WriteAheadLog,
    page: int,
    default_payload: object | None = FORMAT_PAYLOAD,
) -> bool:
    """Rewrite ``page`` from its latest durable redo image.

    Returns ``True`` when the page was rewritten (the write charges normal
    I/O time and refreshes the device's checksum metadata).  Falls back to
    ``default_payload`` for pages the durable log never updated; pass
    ``None`` to disable the fallback and report such pages unrepairable.
    """
    payload = default_payload
    found = False
    # Newest-first scan: a single repair only needs the last image.
    for record in reversed(wal.durable_records()):
        if record.kind is WalRecordKind.UPDATE and record.page == page:
            payload = record.payload
            found = True
            break
    if not found and default_payload is None:
        return False
    device.write_page(page, payload)
    return True


@dataclass
class ScrubStats:
    """Counters for one scrubber's lifetime."""

    rounds: int = 0
    pages_scanned: int = 0
    #: Checksum verification failures found (bitrot, misdirected targets,
    #: phantom-checksum lost writes).
    corrupt_found: int = 0
    #: Checksum-clean pages whose payload disagreed with their latest
    #: durable redo image (lost writes on checksum-less devices).
    stale_found: int = 0
    repaired: int = 0
    unrepairable: int = 0

    @property
    def detected(self) -> int:
        return self.corrupt_found + self.stale_found


class Scrubber:
    """Sweeps the device in bounded rounds, detecting and healing damage.

    Each round verifies ``pages_per_round`` pages (each verify is a real
    read, so scrubbing charges virtual time like the maintenance I/O it
    models) and repairs every page that fails its checksum or — when the
    page is clean by ``is_dirty``'s testimony — disagrees with its latest
    durable redo image.  Dirty pages are exempt from the redo cross-check:
    their device image is *legitimately* stale until the next write-back.

    ``is_dirty`` is typically ``manager.is_dirty``; omitting it asserts the
    caller scrubs a quiesced device (everything flushed).
    """

    def __init__(
        self,
        device,
        wal: WriteAheadLog,
        pages_per_round: int = 64,
        is_dirty: Callable[[int], bool] | None = None,
        default_payload: object | None = FORMAT_PAYLOAD,
    ) -> None:
        if device.num_pages is None:
            raise ValueError("scrubbing needs a bounded device (num_pages)")
        if pages_per_round < 1:
            raise ValueError("pages_per_round must be positive")
        self.device = device
        self.wal = wal
        self.pages_per_round = pages_per_round
        self.is_dirty = is_dirty
        self.default_payload = default_payload
        self.stats = ScrubStats()
        self._cursor = 0
        # The redo index is rebuilt only when more records became durable.
        self._index: dict[int, object] = {}
        self._index_lsn = -1

    def _redo_lookup(self) -> dict[int, object]:
        durable = self.wal.durable_lsn
        if durable != self._index_lsn:
            self._index = redo_index(self.wal)
            self._index_lsn = durable
        return self._index

    def run_round(self) -> int:
        """Scrub the next ``pages_per_round`` pages; returns repairs made."""
        device = self.device
        num_pages = device.num_pages
        index = self._redo_lookup()
        is_dirty = self.is_dirty
        stats = self.stats
        stats.rounds += 1
        repaired_before = stats.repaired
        for _ in range(min(self.pages_per_round, num_pages)):
            page = self._cursor
            self._cursor = (self._cursor + 1) % num_pages
            stats.pages_scanned += 1
            verified = device.verify_page(page)
            needs_repair = not verified
            if needs_repair:
                stats.corrupt_found += 1
            elif is_dirty is None or not is_dirty(page):
                # Checksum-clean, but does the content agree with the log?
                expected = index.get(page, self.default_payload)
                if expected is not None and device.peek(page) != expected:
                    stats.stale_found += 1
                    needs_repair = True
            if not needs_repair:
                continue
            payload = index.get(page, self.default_payload)
            if payload is None and page not in index:
                stats.unrepairable += 1
                continue
            device.write_page(page, payload)
            stats.repaired += 1
        return stats.repaired - repaired_before

    def scrub_all(self) -> ScrubStats:
        """One full pass over every device page, starting from page 0."""
        self._cursor = 0
        num_pages = self.device.num_pages
        rounds = -(-num_pages // self.pages_per_round)
        for _ in range(rounds):
            self.run_round()
        return self.stats
