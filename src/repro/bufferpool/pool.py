"""The frame pool: fixed array of page frames plus a free list.

Mirrors PostgreSQL's shared buffer array: frames are identified by a stable
``frame_id`` (PostgreSQL's ``buffer_id``) and hold the page payload.  The
simulator stores a small Python object per frame (typically a version
counter) instead of 8 KB of bytes.

The per-frame state bits are packed into parallel flat arrays indexed by
frame id (``page_of`` with ``-1`` for a free frame, ``dirty_bits``,
``pin_counts``, ``prefetched_bits``) so the request hot path reads and
writes preallocated ints.  :class:`~repro.bufferpool.descriptor.BufferDescriptor`
objects are a lazily materialised view over these arrays for the cold
paths (recovery, sanitizer, tests); a bench run that never touches
``descriptors`` never pays for the objects.
"""

from __future__ import annotations

from repro.bufferpool.descriptor import BufferDescriptor

__all__ = ["FramePool"]


class FramePool:
    """Fixed-capacity pool of frames with O(1) allocate/free."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be positive: {capacity}")
        self.capacity = capacity
        #: Parallel per-frame state arrays — the authoritative record.
        self.page_of: list[int] = [-1] * capacity
        self.dirty_bits: list[int] = [0] * capacity
        self.pin_counts: list[int] = [0] * capacity
        self.prefetched_bits: list[int] = [0] * capacity
        self._payloads: list[object | None] = [None] * capacity
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._descriptors: list[BufferDescriptor] | None = None

    @property
    def descriptors(self) -> list[BufferDescriptor]:
        """Per-frame descriptor views (materialised on first use)."""
        if self._descriptors is None:
            self._descriptors = [
                BufferDescriptor.view(self, i) for i in range(self.capacity)
            ]
        return self._descriptors

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        return self.capacity - len(self._free)

    def has_free(self) -> bool:
        return bool(self._free)

    def allocate_frame(self) -> int:
        """Take a free frame id; raises ``RuntimeError`` if none is free."""
        if not self._free:
            raise RuntimeError("frame pool exhausted — evict before allocating")
        return self._free.pop()

    def allocate(self) -> BufferDescriptor:
        """Take a free frame; raises ``RuntimeError`` if none is available."""
        return self.descriptors[self.allocate_frame()]

    def free(self, frame_id: int) -> None:
        """Return a frame to the free list and clear its state bits."""
        if self.page_of[frame_id] < 0:
            raise ValueError(f"frame {frame_id} is already free")
        self.page_of[frame_id] = -1
        self.dirty_bits[frame_id] = 0
        self.pin_counts[frame_id] = 0
        self.prefetched_bits[frame_id] = 0
        self._payloads[frame_id] = None
        self._free.append(frame_id)

    def payload(self, frame_id: int) -> object | None:
        return self._payloads[frame_id]

    def set_payload(self, frame_id: int, payload: object | None) -> None:
        self._payloads[frame_id] = payload
