"""The frame pool: fixed array of page frames plus a free list.

Mirrors PostgreSQL's shared buffer array: frames are identified by a stable
``frame_id`` (PostgreSQL's ``buffer_id``) and hold the page payload.  The
simulator stores a small Python object per frame (typically a version
counter) instead of 8 KB of bytes.
"""

from __future__ import annotations

from repro.bufferpool.descriptor import BufferDescriptor

__all__ = ["FramePool"]


class FramePool:
    """Fixed-capacity pool of frames with O(1) allocate/free."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be positive: {capacity}")
        self.capacity = capacity
        self.descriptors = [BufferDescriptor(frame_id=i) for i in range(capacity)]
        self._payloads: list[object | None] = [None] * capacity
        self._free: list[int] = list(range(capacity - 1, -1, -1))

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        return self.capacity - len(self._free)

    def has_free(self) -> bool:
        return bool(self._free)

    def allocate(self) -> BufferDescriptor:
        """Take a free frame; raises ``RuntimeError`` if none is available."""
        if not self._free:
            raise RuntimeError("frame pool exhausted — evict before allocating")
        return self.descriptors[self._free.pop()]

    def free(self, frame_id: int) -> None:
        """Return a frame to the free list and clear its descriptor."""
        descriptor = self.descriptors[frame_id]
        if not descriptor.in_use:
            raise ValueError(f"frame {frame_id} is already free")
        descriptor.reset()
        self._payloads[frame_id] = None
        self._free.append(frame_id)

    def payload(self, frame_id: int) -> object | None:
        return self._payloads[frame_id]

    def set_payload(self, frame_id: int, payload: object | None) -> None:
        self._payloads[frame_id] = payload
