"""Database layout: relations mapped onto contiguous device page ranges.

PostgreSQL addresses pages with a structured ``buffer_tag`` (relation, fork,
block); the simulator flattens those to a single integer page space on the
device.  :class:`Database` owns the flattening: each relation gets a
contiguous page range, row numbers map to blocks through a rows-per-page
factor, and append-heavy relations get an :class:`AppendCursor` that models
heap extension (consecutive inserts fill a page before moving to the next).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bufferpool.tag import BufferTag
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

__all__ = ["Relation", "Database", "AppendCursor"]


@dataclass(frozen=True)
class Relation:
    """A table or index laid out over a contiguous device page range."""

    rel_id: int
    name: str
    base_page: int
    num_pages: int
    rows_per_page: int = 1

    def __post_init__(self) -> None:
        if self.num_pages < 1:
            raise ValueError(f"relation {self.name!r} needs at least 1 page")
        if self.rows_per_page < 1:
            raise ValueError("rows_per_page must be positive")

    @property
    def end_page(self) -> int:
        """One past the last page of the relation."""
        return self.base_page + self.num_pages

    def page_of_block(self, block: int) -> int:
        """Flat device page of the relation's ``block``-th page."""
        if not 0 <= block < self.num_pages:
            raise IndexError(
                f"block {block} out of range for {self.name} "
                f"({self.num_pages} pages)"
            )
        return self.base_page + block

    def page_of_row(self, row: int) -> int:
        """Flat device page holding row number ``row``."""
        return self.page_of_block(row // self.rows_per_page)

    def tag_of_page(self, page: int) -> BufferTag:
        """Structured tag for a flat page inside this relation."""
        if not self.base_page <= page < self.end_page:
            raise IndexError(f"page {page} is not in relation {self.name}")
        return BufferTag(rel_id=self.rel_id, block=page - self.base_page)


class Database:
    """A set of relations packed into one flat page space."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}
        self._next_page = 0
        self._next_rel_id = 0

    def add_relation(
        self, name: str, num_rows: int, rows_per_page: int = 1,
        headroom_pages: int = 0,
    ) -> Relation:
        """Append a relation sized for ``num_rows`` plus insert headroom."""
        if name in self._relations:
            raise ValueError(f"relation {name!r} already exists")
        if num_rows < 0:
            raise ValueError("row count cannot be negative")
        data_pages = max(1, math.ceil(num_rows / rows_per_page))
        relation = Relation(
            rel_id=self._next_rel_id,
            name=name,
            base_page=self._next_page,
            num_pages=data_pages + headroom_pages,
            rows_per_page=rows_per_page,
        )
        self._relations[name] = relation
        self._next_page = relation.end_page
        self._next_rel_id += 1
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(sorted(self._relations))
            raise KeyError(f"no relation {name!r}; known: {known}") from None

    def relations(self) -> list[Relation]:
        return list(self._relations.values())

    @property
    def total_pages(self) -> int:
        return self._next_page

    def relation_of_page(self, page: int) -> Relation:
        """The relation containing a flat device page."""
        for relation in self._relations.values():
            if relation.base_page <= page < relation.end_page:
                return relation
        raise IndexError(f"page {page} belongs to no relation")

    def create_device(
        self,
        profile: DeviceProfile,
        with_ftl: bool = False,
        clock=None,
        over_provision: float = 0.10,
        pages_per_block: int = 64,
    ) -> SimulatedSSD:
        """Build a device sized for this database and format all pages.

        Formatting pre-populates every page (the initial data load) and
        resets counters, so experiments measure steady-state behaviour.
        """
        device = SimulatedSSD(
            profile,
            num_pages=self.total_pages,
            clock=clock,
            with_ftl=with_ftl,
            over_provision=over_provision,
            pages_per_block=pages_per_block,
        )
        device.format_pages(range(self.total_pages))
        return device


class AppendCursor:
    """Models heap extension for insert-heavy relations.

    Consecutive inserts land on the same page until ``rows_per_page`` rows
    accumulate, then advance to the next page.  When the relation's
    headroom is exhausted the cursor wraps to the beginning of the
    relation, modelling vacuum/space reuse in a long-running system.
    """

    def __init__(self, relation: Relation, start_block: int = 0) -> None:
        if not 0 <= start_block < relation.num_pages:
            raise ValueError(
                f"start block {start_block} outside relation "
                f"{relation.name} ({relation.num_pages} pages)"
            )
        self.relation = relation
        self._block = start_block
        self._rows_in_block = 0
        self.total_appends = 0

    @property
    def current_page(self) -> int:
        return self.relation.page_of_block(self._block)

    def append(self) -> int:
        """Record one inserted row; returns the page that absorbed it."""
        page = self.current_page
        self.total_appends += 1
        self._rows_in_block += 1
        if self._rows_in_block >= self.relation.rows_per_page:
            self._rows_in_block = 0
            self._block = (self._block + 1) % self.relation.num_pages
        return page
