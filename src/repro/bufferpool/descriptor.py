"""Buffer descriptors: per-frame metadata, as in PostgreSQL's ``BufferDesc``.

A descriptor records which page occupies a frame and its state bits: dirty
(modified since the last write-back), pin count (references holding the page
in memory), and usage bookkeeping is delegated to the replacement policy.

Since the array-translation rework the *storage* for these bits lives in
the :class:`~repro.bufferpool.pool.FramePool`'s parallel flat arrays
(``page_of`` / ``dirty_bits`` / ``pin_counts`` / ``prefetched_bits``), so
the request hot path touches preallocated ints instead of attribute slots
on per-frame objects.  :class:`BufferDescriptor` survives as a *view* over
those arrays — the cold paths (recovery, sanitizer, diagnostics, tests)
keep the object-per-frame API, lazily materialised and always reading the
authoritative arrays.  A descriptor constructed standalone (outside a
pool) owns a private one-slot backing store, preserving the original
value-object behaviour.
"""

from __future__ import annotations

__all__ = ["BufferDescriptor"]


class BufferDescriptor:
    """State of one bufferpool frame (a view over the pool's bit arrays)."""

    __slots__ = (
        "frame_id",
        "_index",
        "_page_of",
        "_dirty_bits",
        "_pin_counts",
        "_prefetched_bits",
    )

    def __init__(
        self,
        frame_id: int,
        page: int | None = None,
        dirty: bool = False,
        pin_count: int = 0,
        prefetched: bool = False,
    ) -> None:
        # Standalone construction: private one-slot stores.
        self.frame_id = frame_id
        self._index = 0
        self._page_of = [-1 if page is None else page]
        self._dirty_bits = [1 if dirty else 0]
        self._pin_counts = [pin_count]
        self._prefetched_bits = [1 if prefetched else 0]

    @classmethod
    def view(cls, pool: object, frame_id: int) -> "BufferDescriptor":
        """A descriptor reading/writing ``pool``'s arrays at ``frame_id``."""
        descriptor = cls.__new__(cls)
        descriptor.frame_id = frame_id
        descriptor._index = frame_id
        descriptor._page_of = pool.page_of
        descriptor._dirty_bits = pool.dirty_bits
        descriptor._pin_counts = pool.pin_counts
        descriptor._prefetched_bits = pool.prefetched_bits
        return descriptor

    # ------------------------------------------------------------- fields

    @property
    def page(self) -> int | None:
        raw = self._page_of[self._index]
        return None if raw < 0 else raw

    @page.setter
    def page(self, value: int | None) -> None:
        self._page_of[self._index] = -1 if value is None else value

    @property
    def dirty(self) -> bool:
        return bool(self._dirty_bits[self._index])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._dirty_bits[self._index] = 1 if value else 0

    @property
    def pin_count(self) -> int:
        return self._pin_counts[self._index]

    @pin_count.setter
    def pin_count(self, value: int) -> None:
        self._pin_counts[self._index] = value

    @property
    def prefetched(self) -> bool:
        """Whether the frame holds a prefetched, never-requested page."""
        return bool(self._prefetched_bits[self._index])

    @prefetched.setter
    def prefetched(self, value: bool) -> None:
        self._prefetched_bits[self._index] = 1 if value else 0

    # ------------------------------------------------------------ derived

    @property
    def in_use(self) -> bool:
        return self._page_of[self._index] >= 0

    @property
    def pinned(self) -> bool:
        return self._pin_counts[self._index] > 0

    def reset(self) -> None:
        """Return the descriptor to the empty state (frame freed)."""
        index = self._index
        self._page_of[index] = -1
        self._dirty_bits[index] = 0
        self._pin_counts[index] = 0
        self._prefetched_bits[index] = 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BufferDescriptor):
            return NotImplemented
        return (
            self.frame_id == other.frame_id
            and self.page == other.page
            and self.dirty == other.dirty
            and self.pin_count == other.pin_count
            and self.prefetched == other.prefetched
        )

    def __repr__(self) -> str:
        return (
            f"BufferDescriptor(frame_id={self.frame_id}, page={self.page}, "
            f"dirty={self.dirty}, pin_count={self.pin_count}, "
            f"prefetched={self.prefetched})"
        )
