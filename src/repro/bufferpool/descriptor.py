"""Buffer descriptors: per-frame metadata, as in PostgreSQL's ``BufferDesc``.

A descriptor records which page occupies a frame and its state bits: dirty
(modified since the last write-back), pin count (references holding the page
in memory), and usage bookkeeping is delegated to the replacement policy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferDescriptor"]


@dataclass
class BufferDescriptor:
    """State of one bufferpool frame."""

    frame_id: int
    page: int | None = None
    dirty: bool = False
    pin_count: int = 0
    #: Set while the frame holds a prefetched page that was never requested;
    #: cleared on the first real access.  Used for prefetch-accuracy stats.
    prefetched: bool = False

    @property
    def in_use(self) -> bool:
        return self.page is not None

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    def reset(self) -> None:
        """Return the descriptor to the empty state (frame freed)."""
        self.page = None
        self.dirty = False
        self.pin_count = 0
        self.prefetched = False
