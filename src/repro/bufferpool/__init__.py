"""PostgreSQL-style bufferpool substrate: frames, table, manager, WAL."""

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.descriptor import BufferDescriptor
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.partitioned import PartitionedBufferPoolManager
from repro.bufferpool.pool import FramePool
from repro.bufferpool.stats import BufferStats
from repro.bufferpool.table import BufferTable
from repro.bufferpool.recovery import (
    CrashImage,
    DurabilityAudit,
    RecoveryReport,
    audit_committed,
    recover,
    simulate_crash,
)
from repro.bufferpool.repair import Scrubber, ScrubStats, repair_page
from repro.bufferpool.tag import BufferTag, ForkNumber
from repro.bufferpool.wal import (
    WAL_DEVICE_PROFILE,
    WalPageImage,
    WalRecord,
    WalRecordKind,
    WriteAheadLog,
)

__all__ = [
    "BufferPoolManager",
    "PartitionedBufferPoolManager",
    "BufferDescriptor",
    "BufferStats",
    "BufferTable",
    "BufferTag",
    "ForkNumber",
    "FramePool",
    "WriteAheadLog",
    "WalPageImage",
    "WalRecord",
    "WalRecordKind",
    "WAL_DEVICE_PROFILE",
    "BackgroundWriter",
    "Checkpointer",
    "CrashImage",
    "DurabilityAudit",
    "RecoveryReport",
    "simulate_crash",
    "recover",
    "audit_committed",
    "Scrubber",
    "ScrubStats",
    "repair_page",
]
