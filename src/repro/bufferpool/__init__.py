"""PostgreSQL-style bufferpool substrate: frames, table, manager, WAL."""

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.descriptor import BufferDescriptor
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.partitioned import PartitionedBufferPoolManager
from repro.bufferpool.pool import FramePool
from repro.bufferpool.stats import BufferStats
from repro.bufferpool.table import BufferTable
from repro.bufferpool.recovery import (
    CrashImage,
    RecoveryReport,
    recover,
    simulate_crash,
)
from repro.bufferpool.tag import BufferTag, ForkNumber
from repro.bufferpool.wal import (
    WAL_DEVICE_PROFILE,
    WalRecord,
    WalRecordKind,
    WriteAheadLog,
)

__all__ = [
    "BufferPoolManager",
    "PartitionedBufferPoolManager",
    "BufferDescriptor",
    "BufferStats",
    "BufferTable",
    "BufferTag",
    "ForkNumber",
    "FramePool",
    "WriteAheadLog",
    "WalRecord",
    "WalRecordKind",
    "WAL_DEVICE_PROFILE",
    "BackgroundWriter",
    "Checkpointer",
    "CrashImage",
    "RecoveryReport",
    "simulate_crash",
    "recover",
]
