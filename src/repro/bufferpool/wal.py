"""Write-ahead log on a separate device, as in the paper's setup.

Page updates are logged sequentially before the dirty page can be evicted;
the paper's evaluation keeps the WAL on a separate device "following common
practice", so WAL traffic never competes with bufferpool I/O and is
identical for baseline and ACE runs.  The simulator models group commit:
records accumulate in a WAL buffer and one sequential page write is issued
per ``records_per_page`` records (or on an explicit flush/checkpoint).

Records carry physical redo information (the page's new payload), so
:mod:`repro.bufferpool.recovery` can replay committed work after a
simulated crash — the durability property that makes it safe for both the
classic manager and ACE to delay data-page writes.

Every flushed log page is a :class:`WalPageImage` carrying a checksum over
the *intended* record group, so a flush torn by power loss mid-page leaves
a detectably partial image: the stored prefix no longer matches the
checksum, and recovery excludes the whole torn page from redo instead of
replaying half a group commit.  The crash-point engine drives this through
:attr:`WriteAheadLog.flush_hook`.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum

from repro.errors import PowerFailure
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalRecordKind",
    "WalPageImage",
    "WAL_DEVICE_PROFILE",
]

#: A fast log device: sequential writes on flash are nearly symmetric and a
#: dedicated WAL volume has shallow queues.
WAL_DEVICE_PROFILE = DeviceProfile(
    name="WAL device",
    alpha=1.0,
    k_r=8,
    k_w=8,
    read_latency_us=40.0,
    submit_overhead_us=0.5,
    queue_overhead_us=0.0,
)

#: Practically unbounded log capacity, recycled by checkpoints.
_WAL_PAGES = 1 << 22


class WalRecordKind(Enum):
    """Types of log records."""

    UPDATE = "update"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class WalRecord:
    """One log record: an update's redo image or a checkpoint marker."""

    lsn: int
    kind: WalRecordKind
    page: int | None = None
    payload: object | None = None


def _records_checksum(records: tuple[WalRecord, ...]) -> int:
    """Checksum over a record group's full redo content."""
    return zlib.crc32(repr(tuple(
        (r.lsn, r.kind.value, r.page, r.payload) for r in records
    )).encode())


@dataclass(frozen=True)
class WalPageImage:
    """What one flushed WAL page physically stores.

    ``checksum`` always covers the *intended* group of ``intended_count``
    records.  A clean flush stores all of them; a flush torn by power loss
    stores only a prefix, so verification recomputes a different checksum
    and the page — and with it every record of the group — is excluded
    from redo.  This is the page-level atomicity unit real WALs get from
    per-page CRCs.
    """

    records: tuple[WalRecord, ...]
    intended_count: int
    checksum: int

    @property
    def is_valid(self) -> bool:
        return (
            len(self.records) == self.intended_count
            and _records_checksum(self.records) == self.checksum
        )


class WriteAheadLog:
    """A sequential, group-committed log of page updates."""

    def __init__(
        self,
        clock: VirtualClock,
        profile: DeviceProfile = WAL_DEVICE_PROFILE,
        records_per_page: int = 32,
    ) -> None:
        if records_per_page < 1:
            raise ValueError("records_per_page must be positive")
        self.device = SimulatedSSD(profile, num_pages=_WAL_PAGES, clock=clock)
        self.records_per_page = records_per_page
        self._records: list[WalRecord] = []
        self._pending_records = 0
        self._next_page = 0
        self.pages_written = 0
        self.checkpoints = 0
        #: Flushes that tore mid-page under a crash schedule.
        self.torn_flushes = 0
        #: LSN of the most recent durable checkpoint record (0 = none).
        self.last_checkpoint_lsn = 0
        # Durable records indexed flat and by LSN: ``records_since`` is a
        # bisect + slice, so the crash-point engine's repeated recoveries
        # stay linear in the redo window instead of rescanning the log.
        self._durable_records: list[WalRecord] = []
        self._durable_lsns: list[int] = []
        #: Crash-schedule hook consulted on every buffer flush.  Called
        #: with the record group about to be written; returning ``None``
        #: lands the page atomically, returning ``j`` (0 <= j < len)
        #: simulates power loss mid-page — a torn image holding only the
        #: first ``j`` records is written and :class:`PowerFailure` raised.
        self.flush_hook: Callable[[tuple[WalRecord, ...]], int | None] | None = None
        # Device-scan verification cache: log pages verified so far.
        self._verified_pages = 0

    @property
    def lsn(self) -> int:
        """Log sequence number: total records appended so far."""
        return len(self._records)

    @property
    def records_logged(self) -> int:
        return len(self._records)

    @property
    def durable_lsn(self) -> int:
        """All records with lsn <= durable_lsn survive a crash."""
        return self._durable_lsns[-1] if self._durable_lsns else 0

    def log_update(self, page: int, payload: object | None = None) -> int:
        """Append an update record for ``page``; returns the record's LSN.

        A sequential page write is issued whenever the WAL buffer fills.
        """
        record = WalRecord(
            lsn=self.lsn + 1, kind=WalRecordKind.UPDATE,
            page=page, payload=payload,
        )
        self._records.append(record)
        self._pending_records += 1
        if self._pending_records >= self.records_per_page:
            self._flush_buffer()
        return record.lsn

    def flush(self) -> None:
        """Force any buffered records to the log device (commit barrier)."""
        if self._pending_records > 0:
            self._flush_buffer()

    def checkpoint_record(self) -> int:
        """Write a checkpoint record and flush the buffer.

        The caller (checkpointer / ``flush_all``) must have flushed every
        dirty page *before* logging the checkpoint, so that recovery can
        start redo from here.  The checkpoint only takes effect once its
        record is durable: a flush torn mid-page never advances
        ``last_checkpoint_lsn``.
        """
        record = WalRecord(lsn=self.lsn + 1, kind=WalRecordKind.CHECKPOINT)
        self._records.append(record)
        self._pending_records += 1
        self._flush_buffer()
        self.checkpoints += 1
        self.last_checkpoint_lsn = record.lsn
        return record.lsn

    def durable_records(self) -> list[WalRecord]:
        """Records that survive a crash (flushed to the log device)."""
        return list(self._durable_records)

    def records_since(self, lsn: int) -> list[WalRecord]:
        """Durable records with LSN strictly greater than ``lsn``."""
        if lsn < 0:
            raise ValueError(f"lsn cannot be negative: {lsn}")
        start = bisect_right(self._durable_lsns, lsn)
        return self._durable_records[start:]

    def verify_durable_records(self) -> list[WalRecord]:
        """Durable records revalidated against the log device's images.

        Recovery must not trust in-memory bookkeeping — after a crash only
        the device survives.  This scans the physical log pages, validates
        each :class:`WalPageImage` checksum, and stops at the first invalid
        (torn) page: everything after a tear is unreachable, exactly as a
        sequential-scan redo pass would see it.  The scan is cached per
        flushed page, so repeated recoveries (the crash-point engine's
        crash-during-recovery replays) verify each page once.

        Raises ``RuntimeError`` if the physical log diverges from the
        in-memory durable index — that would mean the WAL itself lost
        acknowledged writes, which the simulator does not model.
        """
        if self._verified_pages == self.pages_written:
            return list(self._durable_records)
        scanned: list[WalRecord] = []
        for page_no in range(self.pages_written):
            image = self.device.peek(page_no % _WAL_PAGES)
            if not isinstance(image, WalPageImage) or not image.is_valid:
                break  # torn tail: the log ends here
            scanned.extend(image.records)
        if [r.lsn for r in scanned] != self._durable_lsns:
            raise RuntimeError(
                "WAL device scan diverges from the durable index: "
                f"{len(scanned)} records on device vs "
                f"{len(self._durable_lsns)} indexed"
            )
        self._verified_pages = self.pages_written
        return list(self._durable_records)

    def _flush_buffer(self) -> None:
        pending = tuple(self._records[len(self._records) - self._pending_records:])
        tear: int | None = None
        hook = self.flush_hook
        if hook is not None:
            tear = hook(pending)
            if tear is not None and not 0 <= tear < len(pending):
                tear = None  # landing the full group is not a tear
        checksum = _records_checksum(pending)
        stored = pending if tear is None else pending[:tear]
        image = WalPageImage(
            records=stored, intended_count=len(pending), checksum=checksum,
        )
        page_no = self._next_page % _WAL_PAGES
        self.device.write_page(page_no, payload=image)
        self._next_page += 1
        self.pages_written += 1
        self._pending_records = 0
        if tear is not None:
            # Power fails mid-flush: none of the group's records become
            # durable (the torn image will not verify), and the machine
            # stops here.
            self.torn_flushes += 1
            site = (
                "wal-checkpoint"
                if any(r.kind is WalRecordKind.CHECKPOINT for r in pending)
                else "wal-flush"
            )
            raise PowerFailure(
                site, self.pages_written - 1,
                f"flush torn after {tear}/{len(pending)} records",
            )
        self._durable_records.extend(pending)
        self._durable_lsns.extend(record.lsn for record in pending)
