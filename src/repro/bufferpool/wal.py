"""Write-ahead log on a separate device, as in the paper's setup.

Page updates are logged sequentially before the dirty page can be evicted;
the paper's evaluation keeps the WAL on a separate device "following common
practice", so WAL traffic never competes with bufferpool I/O and is
identical for baseline and ACE runs.  The simulator models group commit:
records accumulate in a WAL buffer and one sequential page write is issued
per ``records_per_page`` records (or on an explicit flush/checkpoint).

Records carry physical redo information (the page's new payload), so
:mod:`repro.bufferpool.recovery` can replay committed work after a
simulated crash — the durability property that makes it safe for both the
classic manager and ACE to delay data-page writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

__all__ = ["WriteAheadLog", "WalRecord", "WalRecordKind", "WAL_DEVICE_PROFILE"]

#: A fast log device: sequential writes on flash are nearly symmetric and a
#: dedicated WAL volume has shallow queues.
WAL_DEVICE_PROFILE = DeviceProfile(
    name="WAL device",
    alpha=1.0,
    k_r=8,
    k_w=8,
    read_latency_us=40.0,
    submit_overhead_us=0.5,
    queue_overhead_us=0.0,
)

#: Practically unbounded log capacity, recycled by checkpoints.
_WAL_PAGES = 1 << 22


class WalRecordKind(Enum):
    """Types of log records."""

    UPDATE = "update"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class WalRecord:
    """One log record: an update's redo image or a checkpoint marker."""

    lsn: int
    kind: WalRecordKind
    page: int | None = None
    payload: object | None = None


class WriteAheadLog:
    """A sequential, group-committed log of page updates."""

    def __init__(
        self,
        clock: VirtualClock,
        profile: DeviceProfile = WAL_DEVICE_PROFILE,
        records_per_page: int = 32,
    ) -> None:
        if records_per_page < 1:
            raise ValueError("records_per_page must be positive")
        self.device = SimulatedSSD(profile, num_pages=_WAL_PAGES, clock=clock)
        self.records_per_page = records_per_page
        self._records: list[WalRecord] = []
        self._pending_records = 0
        self._next_page = 0
        self.pages_written = 0
        self.checkpoints = 0
        #: All records with lsn <= durable_lsn survive a crash.
        self.durable_lsn = 0
        #: LSN of the most recent durable checkpoint record (0 = none).
        self.last_checkpoint_lsn = 0

    @property
    def lsn(self) -> int:
        """Log sequence number: total records appended so far."""
        return len(self._records)

    @property
    def records_logged(self) -> int:
        return len(self._records)

    def log_update(self, page: int, payload: object | None = None) -> int:
        """Append an update record for ``page``; returns the record's LSN.

        A sequential page write is issued whenever the WAL buffer fills.
        """
        record = WalRecord(
            lsn=self.lsn + 1, kind=WalRecordKind.UPDATE,
            page=page, payload=payload,
        )
        self._records.append(record)
        self._pending_records += 1
        if self._pending_records >= self.records_per_page:
            self._flush_buffer()
        return record.lsn

    def flush(self) -> None:
        """Force any buffered records to the log device (commit barrier)."""
        if self._pending_records > 0:
            self._flush_buffer()

    def checkpoint_record(self) -> int:
        """Write a checkpoint record and flush the buffer.

        The caller (checkpointer / ``flush_all``) must have flushed every
        dirty page *before* logging the checkpoint, so that recovery can
        start redo from here.
        """
        record = WalRecord(lsn=self.lsn + 1, kind=WalRecordKind.CHECKPOINT)
        self._records.append(record)
        self._pending_records += 1
        self._flush_buffer()
        self.checkpoints += 1
        self.last_checkpoint_lsn = record.lsn
        return record.lsn

    def durable_records(self) -> list[WalRecord]:
        """Records that survive a crash (flushed to the log device)."""
        return self._records[: self.durable_lsn]

    def records_since(self, lsn: int) -> list[WalRecord]:
        """Durable records with LSN strictly greater than ``lsn``."""
        if lsn < 0:
            raise ValueError(f"lsn cannot be negative: {lsn}")
        return self._records[lsn : self.durable_lsn]

    def _flush_buffer(self) -> None:
        self.device.write_page(self._next_page % _WAL_PAGES, payload=self.lsn)
        self._next_page += 1
        self.pages_written += 1
        self._pending_records = 0
        self.durable_lsn = self.lsn
