"""The baseline buffer manager: classic one-page-at-a-time replacement.

This is the state-of-the-art design the paper argues against (Section I,
"The Challenge"): when a requested page misses and the pool is full, one
victim is chosen by the replacement policy; if it is dirty it is written
back — **one I/O at a time** — then evicted, and the requested page is read.
One read is thereby "exchanged" for one write, irrespective of the device's
asymmetry and concurrency.

:class:`~repro.core.ace.ACEBufferPoolManager` subclasses this class and
overrides only the miss-handling path, mirroring how the paper implements
ACE as a wrapper inside PostgreSQL's ``bufmgr.c`` without touching the
replacement policies themselves.

The per-request path is the hottest code in the simulator.  Translation is
a single probe of the table's ``_slots`` vector (a flat array under the
array backend, a ``__missing__``-shimmed dict otherwise — see
:mod:`repro.bufferpool.table`), and the per-frame state bits live in the
pool's parallel flat arrays rather than descriptor objects.  All of these
containers live for the manager's lifetime, so ``__init__`` binds direct
aliases once.  Each request performs exactly one translation probe: the
miss path returns the frame id it installed rather than forcing a second
lookup.  On a bare :class:`~repro.storage.device.SimulatedSSD` (no fault
injection, no subclass) the miss path additionally runs fully inlined —
device accounting included — with accounting identical to the generic
retry-capable path, which remains in place for faulty devices.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analyze.sanitizer import attach as _attach_sanitizer
from repro.analyze.sanitizer import env_enabled as _sanitize_env_enabled
from repro.bufferpool.pool import FramePool
from repro.bufferpool.repair import repair_page
from repro.bufferpool.stats import BufferStats
from repro.bufferpool.table import make_table
from repro.bufferpool.wal import WriteAheadLog
from repro.errors import (
    CorruptPageError,
    IOFaultError,
    PageNotBufferedError,
    PoolExhaustedError,
    RetriesExhaustedError,
    TornWriteError,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.policies.base import ReplacementPolicy
from repro.storage.device import SimulatedSSD

__all__ = ["BufferPoolManager"]


class BufferPoolManager:
    """Classic bufferpool: policy-driven replacement, single-page write-back.

    Parameters
    ----------
    capacity:
        Pool size in pages (PostgreSQL's ``shared_buffers``).
    policy:
        A replacement policy; the manager binds itself as the policy's
        :class:`~repro.policies.base.PageStateView`.
    device:
        The simulated storage device holding the database pages.
    wal:
        Optional write-ahead log; when present, every page write request is
        logged before the page is dirtied (crash-consistency ordering).
    sanitize:
        Attach the :mod:`repro.analyze.sanitizer` invariant checker, which
        validates the full bufferpool state after every public operation.
        ``None`` (the default) consults the ``REPRO_SANITIZE`` environment
        switch; ``True``/``False`` override it.  Debugging aid — expect an
        order-of-magnitude slowdown when enabled.
    retry:
        Policy applied when a device I/O raises
        :class:`~repro.errors.IOFaultError` (only possible when the device
        is a :class:`~repro.faults.FaultyDevice`).  Defaults to
        :data:`~repro.faults.DEFAULT_RETRY_POLICY`.  The fault path is
        reached exclusively through ``except`` handlers, so a fault-free
        device pays nothing for it.
    table_backend:
        Translation backend: ``"array"``, ``"dict"``, or ``None`` for
        automatic selection (honouring ``REPRO_TABLE``); see
        :func:`repro.bufferpool.table.make_table`.
    """

    #: Variant label used in reports ("baseline" vs "ace"/"ace+pf").
    variant = "baseline"

    #: PageStateView handshake: this view pushes every dirty/pin transition
    #: into the policy's ``note_*`` hooks, which lets the bound policy keep
    #: its virtual order incrementally instead of re-deriving it per miss.
    notifies_state_changes = True

    #: Executor handshake: the manager exposes ``_slots``/``_probe_space``/
    #: ``_prefetched_bits`` with read-hit semantics identical to
    #: ``read_page``, so ``run_trace`` may resolve runs of read hits with
    #: inline translation probes (see :func:`repro.engine.executor.run_trace`).
    hit_run_ready = True

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        device: SimulatedSSD,
        wal: WriteAheadLog | None = None,
        sanitize: bool | None = None,
        retry: RetryPolicy | None = None,
        table_backend: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.device = device
        self.wal = wal
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.pool = FramePool(capacity)
        self.table = make_table(
            getattr(device, "num_pages", None), table_backend
        )
        self.stats = BufferStats()
        # Fast-path mirrors of the descriptor state bits.  Policies probe
        # dirty/pinned state on every victim-selection step, so these are
        # the hottest lookups in the system; the pool's flat arrays remain
        # the authoritative record.
        self._dirty_set: set[int] = set()
        self._pinned_set: set[int] = set()
        #: ``|dirty ∩ pinned|``, maintained on every dirty/clean/pin/unpin
        #: transition so :attr:`pool_pressure` is O(1) and allocation-free
        #: (the serving layer's admission gate reads it per dispatch).
        self._dirty_pinned_overlap = 0
        # Hot-path aliases.  The table's containers and the pool's state
        # arrays live for the manager's lifetime, so binding them here
        # removes attribute hops per request.
        self._slots = self.table._slots  # lint: allow-translation
        self._frame_of = self.table._frame_of  # lint: allow-translation
        self._probe_space = self.table.probe_space
        self._array_slots = self.table.backend == "array"
        pool = self.pool
        self._page_of = pool.page_of
        self._dirty_bits = pool.dirty_bits
        self._pin_counts = pool.pin_counts
        self._prefetched_bits = pool.prefetched_bits
        self._payloads = pool._payloads
        #: The device, iff it is a *bare* simulated SSD: no fault injection
        #: layer, no subclass, no checksum metadata.  Such a device cannot
        #: raise :class:`~repro.errors.IOFaultError`, so the miss path may
        #: run fully inlined (``_handle_miss``'s turbo branch) with
        #: accounting identical to the generic path.  A checksum-enabled
        #: device must go through the generic path: the inlined branch
        #: writes payloads directly and would leave the checksum metadata
        #: stale (and skip read verification).
        self._plain_device = (
            device
            if type(device) is SimulatedSSD and not device.checksums_enabled
            else None
        )
        #: Prefetcher-training callback invoked once per access; installed
        #: by the ACE manager when a reader/prefetcher is attached.
        self._observer = None
        policy.bind(self)
        # Bound notification hooks (hot path: one attribute hop saved per
        # dirty/clean transition).
        self._note_dirty = policy.note_dirty
        self._note_clean = policy.note_clean
        # Bound policy entry points for the per-request paths (saves the
        # ``self.policy.<method>`` chain on every access and eviction).
        self._policy_on_access = policy.on_access
        self._policy_select_victim = policy.select_victim
        self._policy_insert = policy.insert
        self._policy_remove = policy.remove
        if self._plain_device is not None:
            # Everything the inlined miss path touches that is immutable
            # for the manager's lifetime, packed into one tuple: a single
            # load + unpack per miss replaces a dozen ``self.<attr>``
            # lookups.  ``self.stats`` and ``device.stats`` are NOT cached
            # — both are replaced wholesale (warmup reset, ``reset_stats``).
            self._turbo = (
                pool._free,
                self._slots,
                self._frame_of,
                self._array_slots,
                pool._payloads,
                pool.page_of,
                pool.dirty_bits,
                pool.pin_counts,
                pool.prefetched_bits,
                device._payloads,
                device._single_read_us,
                device._single_write_us,
                device.num_pages,
                device.ftl,
                device.clock,
                policy.select_victim,
                policy.remove,
                policy.insert,
                policy.note_clean,
                self._dirty_set.discard,
            )
        #: The attached invariant checker, or ``None`` when sanitising is
        #: off (the common case: the request path then carries zero
        #: sanitizer overhead — the wrappers are instance attributes
        #: installed only on opted-in managers).
        self.sanitizer = None
        if sanitize is None:
            sanitize = _sanitize_env_enabled()
        if sanitize:
            _attach_sanitizer(self)

    # ------------------------------------------------------ PageStateView

    def is_dirty(self, page: int) -> bool:
        return page in self._dirty_set

    def is_pinned(self, page: int) -> bool:
        return page in self._pinned_set

    # --------------------------------------------------------- client API

    def read_page(self, page: int) -> object | None:
        """Fetch ``page`` for reading; returns its payload."""
        stats = self.stats
        stats.read_requests += 1
        frame_id = self._slots[page] if 0 <= page < self._probe_space else -1
        if frame_id >= 0:
            stats.hits += 1
            prefetched_bits = self._prefetched_bits
            if prefetched_bits[frame_id]:
                prefetched_bits[frame_id] = 0
                stats.prefetch_hits += 1
            self._policy_on_access(page, False)
        else:
            stats.misses += 1
            frame_id = self._handle_miss(page)
            if frame_id is None:
                raise PageNotBufferedError(
                    f"miss handling failed to load page {page}"
                )
        observer = self._observer
        if observer is not None:
            observer(page)
        return self._payloads[frame_id]

    def write_page(self, page: int, payload: object | None = None) -> object:
        """Fetch ``page`` for writing and apply an update.

        If ``payload`` is ``None`` the stored version counter is
        incremented; otherwise the payload replaces the page contents.
        Returns the new payload.  The update's redo image is WAL-logged
        before any data-page write can reach the device (WAL-before-data).
        """
        stats = self.stats
        stats.write_requests += 1
        frame_id = self._slots[page] if 0 <= page < self._probe_space else -1
        if frame_id >= 0:
            stats.hits += 1
            prefetched_bits = self._prefetched_bits
            if prefetched_bits[frame_id]:
                prefetched_bits[frame_id] = 0
                stats.prefetch_hits += 1
            self._policy_on_access(page, True)
        else:
            stats.misses += 1
            frame_id = self._handle_miss(page)
            if frame_id is None:
                raise PageNotBufferedError(
                    f"miss handling failed to load page {page}"
                )
        observer = self._observer
        if observer is not None:
            observer(page)
        dirty_bits = self._dirty_bits
        if not dirty_bits[frame_id]:
            dirty_bits[frame_id] = 1
            self._dirty_set.add(page)
            if self._pin_counts[frame_id]:
                self._dirty_pinned_overlap += 1
            self._note_dirty(page)
        payloads = self._payloads
        if payload is None:
            current = payloads[frame_id]
            base = current if isinstance(current, int) else 0
            payload = base + 1
        payloads[frame_id] = payload
        if self.wal is not None:
            self.wal.log_update(page, payload)
        return payload

    def access(self, page: int, is_write: bool) -> object | None:
        """Dispatch a trace request: read or write ``page``."""
        if is_write:
            return self.write_page(page)
        return self.read_page(page)

    def contains(self, page: int) -> bool:
        """Whether ``page`` is currently resident."""
        return page in self._frame_of

    @property
    def pool_pressure(self) -> float:
        """Fraction of the pool that cannot be freed cheaply right now.

        Pinned pages cannot be evicted at all and dirty pages need a device
        write-back first, so ``|pinned ∪ dirty| / capacity`` approaches 1.0
        just before misses start stalling on write-backs or the pool
        exhausts outright.  The serving layer's admission gate sheds new
        requests on this signal (see ``ServingConfig.pressure_threshold``),
        calling this once per dispatch — it is O(1) and allocation-free,
        computed from the maintained mirrors and the dirty∩pinned overlap
        counter rather than fresh set arithmetic.
        """
        pressured = (
            len(self._pinned_set)
            + len(self._dirty_set)
            - self._dirty_pinned_overlap
        )
        return pressured / self.capacity

    @property
    def _descriptors(self):
        """Descriptor views over the pool's state arrays (cold paths)."""
        return self.pool.descriptors

    @property
    def resident_count(self) -> int:
        """Number of resident pages (O(1))."""
        return len(self._frame_of)

    def resident_pages(self) -> list[int]:
        return self.table.pages()

    def dirty_pages(self) -> list[int]:
        """Resident pages with unflushed modifications.

        Reads the maintained dirty-set mirror instead of scanning every
        descriptor (O(capacity)); the background writer calls this every
        round.  Sorted so write-back scheduling never depends on set
        iteration order.
        """
        return sorted(self._dirty_set)

    def pin(self, page: int) -> None:
        """Pin a resident page so it cannot be evicted."""
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        pin_counts = self._pin_counts
        count = pin_counts[frame_id] + 1
        pin_counts[frame_id] = count
        if count == 1:
            self._pinned_set.add(page)
            if self._dirty_bits[frame_id]:
                self._dirty_pinned_overlap += 1
            self.policy.note_pinned(page)

    def unpin(self, page: int) -> None:
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        pin_counts = self._pin_counts
        count = pin_counts[frame_id]
        if count == 0:
            raise ValueError(f"page {page} is not pinned")
        count -= 1
        pin_counts[frame_id] = count
        if count == 0:
            self._pinned_set.discard(page)
            if self._dirty_bits[frame_id]:
                self._dirty_pinned_overlap -= 1
            self.policy.note_unpinned(page)

    def flush_page(self, page: int) -> None:
        """Write a resident dirty page back to the device (stays resident)."""
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        if self._dirty_bits[frame_id]:
            self._write_back([page])

    def flush_all(self) -> int:
        """Checkpoint-style flush of every dirty page; returns the count.

        The baseline manager flushes one page at a time, as the paper notes
        state-of-the-art systems do.
        """
        dirty = self.dirty_pages()
        for page in dirty:
            self._write_back([page])
        if self.wal is not None and not self._dirty_set:
            # A checkpoint record promises every earlier update has reached
            # the data pages; degraded write-backs leave pages dirty, so
            # the record is withheld until a later flush fully succeeds.
            self.wal.checkpoint_record()
        return len(dirty)

    # -------------------------------------------------------- miss handling

    def _handle_miss(self, page: int) -> int:
        """Classic miss path: make one frame available, read the page.

        Returns the frame id the page was installed into, so the request
        path never needs a second table lookup.  Subclasses (ACE) override
        this method; everything else in the manager is shared.

        On a bare device the whole exchange — victim write-back, eviction,
        read, install — runs inlined below with accounting identical to
        the generic helpers (``_write_back``/``_evict``/``_load``), which
        handle the fault-capable devices.
        """
        device = self._plain_device
        if device is None:
            # Generic, retry-capable path (FaultyDevice or a subclass).
            if not self.pool.has_free():
                victim = self.policy.select_victim()
                if victim is None:
                    raise self._pool_exhausted(page)
                if victim in self._dirty_set:
                    # The classic exchange: one write-back for one read.
                    self.stats.dirty_evictions += 1
                    self._write_back([victim])
                    if victim in self._dirty_set:
                        victim = self._degraded_victim(victim)
                else:
                    self.stats.clean_evictions += 1
                self._evict(victim)
            return self._load(page)

        (
            free,
            slots,
            frame_of,
            array_slots,
            payloads,
            page_of,
            dirty_bits,
            pin_counts,
            prefetched_bits,
            device_payloads,
            read_us,
            write_us,
            num_pages,
            ftl,
            # Direct clock bumps below: ``advance`` only validates
            # non-negativity, and the per-page costs are positive by
            # construction.
            clock,
            select_victim,
            policy_remove,
            policy_insert,
            note_clean,
            dirty_discard,
        ) = self._turbo
        stats = self.stats
        device_stats = device.stats
        if not free:
            victim = select_victim()
            if victim is None:
                raise self._pool_exhausted(page)
            victim_frame = slots[victim]
            if dirty_bits[victim_frame]:
                # The classic exchange, single-page write-back inlined
                # end to end (identical accounting to ``_write_back`` +
                # ``SimulatedSSD.write_batch`` with one page).
                stats.dirty_evictions += 1
                if self.wal is not None:
                    # WAL-before-data, as in the generic path.
                    self.wal.flush()
                clock._now_us += write_us
                device_stats.writes += 1
                device_stats.write_batches += 1
                device_stats.write_time_us += write_us
                histogram = device_stats.write_batch_size_histogram
                try:
                    histogram[1] += 1
                except KeyError:
                    histogram[1] = 1
                if device_stats.largest_write_batch < 1:
                    device_stats.largest_write_batch = 1
                device_payloads[victim] = payloads[victim_frame]
                if ftl is not None:
                    ftl.write(victim)
                dirty_bits[victim_frame] = 0
                dirty_discard(victim)
                if pin_counts[victim_frame]:
                    self._dirty_pinned_overlap -= 1
                note_clean(victim)
                stats.writebacks += 1
                stats.writeback_batches += 1
            else:
                stats.clean_evictions += 1
            # Eviction (the victim is clean and unpinned by construction).
            if prefetched_bits[victim_frame]:
                stats.prefetch_unused += 1
                prefetched_bits[victim_frame] = 0
            stats.evictions += 1
            del frame_of[victim]
            if array_slots:
                slots[victim] = -1
            policy_remove(victim)
            page_of[victim_frame] = -1
            payloads[victim_frame] = None
            free.append(victim_frame)
        # Read the missed page (identical accounting to
        # ``SimulatedSSD.read_page``) and install it into a free frame.
        if num_pages is not None and not 0 <= page < num_pages:
            raise IndexError(
                f"page {page} out of device range [0, {num_pages})"
            )
        clock._now_us += read_us
        device_stats.reads += 1
        device_stats.read_batches += 1
        device_stats.read_time_us += read_us
        if device_stats.largest_read_batch < 1:
            device_stats.largest_read_batch = 1
        if ftl is not None:
            ftl.read(page)
        try:
            payload = device_payloads[page]
        except KeyError:
            payload = None
        frame_id = free.pop()
        page_of[frame_id] = page
        payloads[frame_id] = payload
        frame_of[page] = frame_id
        if array_slots:
            slots[page] = frame_id
        policy_insert(page, cold=False)
        return frame_id

    # ----------------------------------------------------------- internals

    def _pool_exhausted(
        self, page: int, candidates_examined: int | None = None
    ) -> PoolExhaustedError:
        """Build the uniform :class:`PoolExhaustedError` payload.

        Both raise sites (the baseline miss path here and ACE's Evictor
        miss path) funnel through this helper so shed/requeue logic in the
        serving layer sees one shape.  ``candidates_examined`` defaults to
        the resident-page count: a ``None`` victim means the policy walked
        every resident candidate and found all of them pinned.
        """
        if candidates_examined is None:
            candidates_examined = len(self._frame_of)
        return PoolExhaustedError(
            "all pages are pinned",
            page=page,
            capacity=self.capacity,
            pinned=len(self._pinned_set),
            candidates_examined=candidates_examined,
        )

    def _descriptor_of(self, page: int):
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        return self.pool.descriptors[frame_id]

    def _mark_dirty(self, page: int, frame_id: int) -> None:
        if not self._dirty_bits[frame_id]:
            self._dirty_bits[frame_id] = 1
            self._dirty_set.add(page)
            if self._pin_counts[frame_id]:
                self._dirty_pinned_overlap += 1
            self._note_dirty(page)

    def _write_back(self, pages: Iterable[int], background: bool = False) -> int:
        """Write the given resident dirty pages to the device in one batch.

        The baseline manager always calls this with a single page; ACE's
        Writer calls it with up to ``n_w`` pages, which the device executes
        concurrently.  Pages are marked clean afterwards.  Returns the
        number of pages written.
        """
        frame_of = self._frame_of
        dirty_bits = self._dirty_bits
        payloads = self._payloads
        batch: dict[int, object | None] = {}
        frames: list[int] = []
        for page in pages:
            frame_id = frame_of.get(page)
            if frame_id is None:
                raise PageNotBufferedError(f"page {page} is not resident")
            if not dirty_bits[frame_id]:
                raise ValueError(f"page {page} is not dirty")
            batch[page] = payloads[frame_id]
            frames.append(frame_id)
        if not batch:
            return 0
        if self.wal is not None:
            # WAL-before-data: log records covering these pages must be
            # durable before the pages themselves are written.
            self.wal.flush()
        try:
            self.device.write_batch(batch)
        except IOFaultError as fault:
            return self._retry_write_back(batch, fault, background)
        pin_counts = self._pin_counts
        overlap = 0
        for frame_id in frames:
            dirty_bits[frame_id] = 0
            if pin_counts[frame_id]:
                overlap += 1
        if overlap:
            self._dirty_pinned_overlap -= overlap
        self._dirty_set.difference_update(batch)
        note_clean = self._note_clean
        for page in batch:
            note_clean(page)
        self.stats.writebacks += len(batch)
        self.stats.writeback_batches += 1
        if background:
            self.stats.background_writebacks += len(batch)
        return len(batch)

    def _retry_write_back(
        self,
        batch: dict[int, object | None],
        fault: IOFaultError,
        background: bool,
    ) -> int:
        """Drive a faulted write-back to completion or graceful degradation.

        Pages the device acknowledged (a torn prefix, the healthy part of a
        batch with a dead page) are marked clean; a landed prefix proves the
        device is alive, so it also resets the attempt budget.  Whatever is
        still unwritten after a permanent fault or ``max_attempts``
        consecutive fruitless tries simply *stays dirty* — the pages remain
        resident and re-queued for the next write-back that covers them,
        and the caller falls back to a clean victim if it needed this one.
        Termination: every torn retry strictly shrinks the remainder, and
        fruitless attempts are bounded by the policy.
        """
        retry = self.retry
        clock = self.device.clock
        stats = self.stats
        landed: list[int] = []
        remaining = dict(batch)
        attempt = 1
        while True:
            stats.io_faults += 1
            if fault.acknowledged:
                for page in fault.acknowledged:
                    if page in remaining:
                        landed.append(page)
                        del remaining[page]
                if isinstance(fault, TornWriteError):
                    stats.degraded_writebacks += 1
                attempt = 1
                if not remaining:
                    break
            if fault.permanent or attempt >= retry.max_attempts:
                stats.failed_writebacks += len(remaining)
                break
            delay = retry.backoff_for(attempt)
            clock.advance(delay)
            stats.io_retries += 1
            stats.retry_backoff_us += delay
            attempt += 1
            try:
                self.device.write_batch(remaining)
            except IOFaultError as next_fault:
                fault = next_fault
                continue
            landed.extend(remaining)
            remaining.clear()
            break
        if not landed:
            return 0
        frame_of = self._frame_of
        dirty_bits = self._dirty_bits
        pin_counts = self._pin_counts
        note_clean = self._note_clean
        for page in landed:
            frame_id = frame_of.get(page)
            if frame_id is not None:
                dirty_bits[frame_id] = 0
                if pin_counts[frame_id]:
                    self._dirty_pinned_overlap -= 1
                note_clean(page)
        self._dirty_set.difference_update(landed)
        stats.writebacks += len(landed)
        stats.writeback_batches += 1
        if background:
            stats.background_writebacks += len(landed)
        return len(landed)

    def _degraded_victim(self, failed: int) -> int:
        """Pick a clean victim after page ``failed`` refused to flush."""
        fallback = self._clean_victim_fallback()
        if fallback is None:
            raise RetriesExhaustedError(
                "write",
                (failed,),
                self.retry.max_attempts,
                f"write-back of victim page {failed} failed and the pool "
                "holds no clean page to evict instead",
            )
        self.stats.degraded_evictions += 1
        return fallback

    def _clean_victim_fallback(self) -> int | None:
        """First unpinned *clean* page in the policy's virtual order."""
        selected = self.policy.next_clean(1)
        return selected[0] if selected else None

    def _evict(self, page: int) -> None:
        """Drop a clean resident page from the pool."""
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        if self._dirty_bits[frame_id]:
            raise ValueError(
                f"cannot evict dirty page {page}; write it back first"
            )
        if self._pin_counts[frame_id] > 0:
            raise ValueError(f"cannot evict pinned page {page}")
        if self._prefetched_bits[frame_id]:
            self.stats.prefetch_unused += 1
        self.stats.evictions += 1
        self.table.delete(page)
        self.policy.remove(page)
        self.pool.free(frame_id)

    def _load(self, page: int, cold: bool = False) -> int:
        """Read ``page`` from the device and install it into a free frame."""
        try:
            payload = self.device.read_page(page)
        except CorruptPageError as corrupt:
            payload = self._repair_corrupt_read(page, corrupt)
        except IOFaultError as fault:
            payload = self._read_page_with_retry(page, fault)
        return self._install_fetched(page, payload, cold=cold, prefetched=False)

    def _repair_corrupt_read(
        self, page: int, corrupt: CorruptPageError
    ) -> object | None:
        """Heal a checksum-failed read from the WAL and re-read once.

        A corrupt page is not retryable (re-reading returns the same bad
        bytes), but with a WAL attached it is *repairable*: the page's
        latest durable redo image — or the load-time payload for pages the
        log never touched — is rewritten and the read retried exactly once.
        A second checksum failure (fresh corruption injected under the
        repair) propagates: repair must terminate, not duel the injector.
        """
        stats = self.stats
        stats.io_faults += 1
        stats.corrupt_page_reads += 1
        if self.wal is None:
            raise corrupt
        if not repair_page(self.device, self.wal, page):
            raise corrupt
        stats.pages_repaired += 1
        return self.device.read_page(page)

    def _read_page_with_retry(
        self, page: int, fault: IOFaultError
    ) -> object | None:
        """Retry a faulted single-page read under the manager's policy.

        Reads cannot degrade — the requested payload either arrives or the
        request fails — so permanent faults re-raise immediately and
        transient faults escalate to :class:`RetriesExhaustedError` once
        the attempt budget is spent.
        """
        retry = self.retry
        clock = self.device.clock
        stats = self.stats
        attempt = 1
        while True:
            stats.io_faults += 1
            if fault.permanent:
                raise fault
            if attempt >= retry.max_attempts:
                raise RetriesExhaustedError(
                    "read",
                    (page,),
                    attempt,
                    f"could not read page {page}",
                    last_fault=fault,
                ) from fault
            delay = retry.backoff_for(attempt)
            clock.advance(delay)
            stats.io_retries += 1
            stats.retry_backoff_us += delay
            attempt += 1
            try:
                return self.device.read_page(page)
            except IOFaultError as next_fault:
                fault = next_fault

    def _install_fetched(self, page: int, payload: object | None,
                         cold: bool, prefetched: bool) -> int:
        """Install a page whose payload was already read in a batch.

        Returns the frame id the page now occupies.
        """
        frame_id = self.pool.allocate_frame()
        self._page_of[frame_id] = page
        if prefetched:
            self._prefetched_bits[frame_id] = 1
            self.stats.prefetch_issued += 1
        self._payloads[frame_id] = payload
        self.table.insert(page, frame_id)
        self.policy.insert(page, cold=cold)
        return frame_id

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"policy={self.policy.name}, resident={len(self.table)})"
        )
