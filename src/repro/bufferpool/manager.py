"""The baseline buffer manager: classic one-page-at-a-time replacement.

This is the state-of-the-art design the paper argues against (Section I,
"The Challenge"): when a requested page misses and the pool is full, one
victim is chosen by the replacement policy; if it is dirty it is written
back — **one I/O at a time** — then evicted, and the requested page is read.
One read is thereby "exchanged" for one write, irrespective of the device's
asymmetry and concurrency.

:class:`~repro.core.ace.ACEBufferPoolManager` subclasses this class and
overrides only the miss-handling path, mirroring how the paper implements
ACE as a wrapper inside PostgreSQL's ``bufmgr.c`` without touching the
replacement policies themselves.

The per-request path is the hottest code in the simulator, so ``read_page``
and ``write_page`` are written against direct aliases of the buffer table's
dict, the descriptor array, and the payload array (bound once in
``__init__``; the underlying containers are never replaced).  Each request
performs exactly one table lookup: the miss path returns the frame id it
installed rather than forcing a second lookup.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analyze.sanitizer import attach as _attach_sanitizer
from repro.analyze.sanitizer import env_enabled as _sanitize_env_enabled
from repro.bufferpool.pool import FramePool
from repro.bufferpool.stats import BufferStats
from repro.bufferpool.table import BufferTable
from repro.bufferpool.wal import WriteAheadLog
from repro.errors import (
    IOFaultError,
    PageNotBufferedError,
    PoolExhaustedError,
    RetriesExhaustedError,
    TornWriteError,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.policies.base import ReplacementPolicy
from repro.storage.device import SimulatedSSD

__all__ = ["BufferPoolManager"]


class BufferPoolManager:
    """Classic bufferpool: policy-driven replacement, single-page write-back.

    Parameters
    ----------
    capacity:
        Pool size in pages (PostgreSQL's ``shared_buffers``).
    policy:
        A replacement policy; the manager binds itself as the policy's
        :class:`~repro.policies.base.PageStateView`.
    device:
        The simulated storage device holding the database pages.
    wal:
        Optional write-ahead log; when present, every page write request is
        logged before the page is dirtied (crash-consistency ordering).
    sanitize:
        Attach the :mod:`repro.analyze.sanitizer` invariant checker, which
        validates the full bufferpool state after every public operation.
        ``None`` (the default) consults the ``REPRO_SANITIZE`` environment
        switch; ``True``/``False`` override it.  Debugging aid — expect an
        order-of-magnitude slowdown when enabled.
    retry:
        Policy applied when a device I/O raises
        :class:`~repro.errors.IOFaultError` (only possible when the device
        is a :class:`~repro.faults.FaultyDevice`).  Defaults to
        :data:`~repro.faults.DEFAULT_RETRY_POLICY`.  The fault path is
        reached exclusively through ``except`` handlers, so a fault-free
        device pays nothing for it.
    """

    #: Variant label used in reports ("baseline" vs "ace"/"ace+pf").
    variant = "baseline"

    #: PageStateView handshake: this view pushes every dirty/pin transition
    #: into the policy's ``note_*`` hooks, which lets the bound policy keep
    #: its virtual order incrementally instead of re-deriving it per miss.
    notifies_state_changes = True

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        device: SimulatedSSD,
        wal: WriteAheadLog | None = None,
        sanitize: bool | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.device = device
        self.wal = wal
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.pool = FramePool(capacity)
        self.table = BufferTable()
        self.stats = BufferStats()
        # Fast-path mirrors of the descriptor state bits.  Policies probe
        # dirty/pinned state on every victim-selection step, so these are
        # the hottest lookups in the system; the descriptors remain the
        # authoritative record.
        self._dirty_set: set[int] = set()
        self._pinned_set: set[int] = set()
        # Hot-path aliases.  The table's dict, the descriptor list, and
        # the payload list live for the manager's lifetime, so binding
        # them here removes two attribute hops per request.
        self._frame_of = self.table._frame_of
        self._descriptors = self.pool.descriptors
        self._payloads = self.pool._payloads
        #: Prefetcher-training callback invoked once per access; installed
        #: by the ACE manager when a reader/prefetcher is attached.
        self._observer = None
        policy.bind(self)
        # Bound notification hooks (hot path: one attribute hop saved per
        # dirty/clean transition).
        self._note_dirty = policy.note_dirty
        self._note_clean = policy.note_clean
        #: The attached invariant checker, or ``None`` when sanitising is
        #: off (the common case: the request path then carries zero
        #: sanitizer overhead — the wrappers are instance attributes
        #: installed only on opted-in managers).
        self.sanitizer = None
        if sanitize is None:
            sanitize = _sanitize_env_enabled()
        if sanitize:
            _attach_sanitizer(self)

    # ------------------------------------------------------ PageStateView

    def is_dirty(self, page: int) -> bool:
        return page in self._dirty_set

    def is_pinned(self, page: int) -> bool:
        return page in self._pinned_set

    # --------------------------------------------------------- client API

    def read_page(self, page: int) -> object | None:
        """Fetch ``page`` for reading; returns its payload."""
        stats = self.stats
        stats.read_requests += 1
        frame_id = self._frame_of.get(page)
        if frame_id is not None:
            stats.hits += 1
            descriptor = self._descriptors[frame_id]
            if descriptor.prefetched:
                descriptor.prefetched = False
                stats.prefetch_hits += 1
            self.policy.on_access(page, is_write=False)
        else:
            stats.misses += 1
            frame_id = self._handle_miss(page)
            if frame_id is None:
                raise PageNotBufferedError(
                    f"miss handling failed to load page {page}"
                )
        observer = self._observer
        if observer is not None:
            observer(page)
        return self._payloads[frame_id]

    def write_page(self, page: int, payload: object | None = None) -> object:
        """Fetch ``page`` for writing and apply an update.

        If ``payload`` is ``None`` the stored version counter is
        incremented; otherwise the payload replaces the page contents.
        Returns the new payload.  The update's redo image is WAL-logged
        before any data-page write can reach the device (WAL-before-data).
        """
        stats = self.stats
        stats.write_requests += 1
        frame_id = self._frame_of.get(page)
        if frame_id is not None:
            stats.hits += 1
            descriptor = self._descriptors[frame_id]
            if descriptor.prefetched:
                descriptor.prefetched = False
                stats.prefetch_hits += 1
            self.policy.on_access(page, is_write=True)
        else:
            stats.misses += 1
            frame_id = self._handle_miss(page)
            if frame_id is None:
                raise PageNotBufferedError(
                    f"miss handling failed to load page {page}"
                )
            descriptor = self._descriptors[frame_id]
        observer = self._observer
        if observer is not None:
            observer(page)
        if not descriptor.dirty:
            descriptor.dirty = True
            self._dirty_set.add(page)
            self._note_dirty(page)
        if payload is None:
            current = self._payloads[frame_id]
            base = current if isinstance(current, int) else 0
            payload = base + 1
        self._payloads[frame_id] = payload
        if self.wal is not None:
            self.wal.log_update(page, payload)
        return payload

    def access(self, page: int, is_write: bool) -> object | None:
        """Dispatch a trace request: read or write ``page``."""
        if is_write:
            return self.write_page(page)
        return self.read_page(page)

    def contains(self, page: int) -> bool:
        """Whether ``page`` is currently resident."""
        return page in self._frame_of

    @property
    def pool_pressure(self) -> float:
        """Fraction of the pool that cannot be freed cheaply right now.

        Pinned pages cannot be evicted at all and dirty pages need a device
        write-back first, so ``|pinned ∪ dirty| / capacity`` approaches 1.0
        just before misses start stalling on write-backs or the pool
        exhausts outright.  The serving layer's admission gate sheds new
        requests on this signal (see ``ServingConfig.pressure_threshold``).
        """
        pressured = len(self._pinned_set) + len(self._dirty_set - self._pinned_set)
        return pressured / self.capacity

    def resident_pages(self) -> list[int]:
        return self.table.pages()

    def dirty_pages(self) -> list[int]:
        """Resident pages with unflushed modifications.

        Reads the maintained dirty-set mirror (O(dirty)) instead of
        scanning every descriptor (O(capacity)); the background writer
        calls this every round.
        """
        return list(self._dirty_set)

    def pin(self, page: int) -> None:
        """Pin a resident page so it cannot be evicted."""
        descriptor = self._descriptor_of(page)
        descriptor.pin_count += 1
        if descriptor.pin_count == 1:
            self._pinned_set.add(page)
            self.policy.note_pinned(page)

    def unpin(self, page: int) -> None:
        descriptor = self._descriptor_of(page)
        if descriptor.pin_count == 0:
            raise ValueError(f"page {page} is not pinned")
        descriptor.pin_count -= 1
        if descriptor.pin_count == 0:
            self._pinned_set.discard(page)
            self.policy.note_unpinned(page)

    def flush_page(self, page: int) -> None:
        """Write a resident dirty page back to the device (stays resident)."""
        descriptor = self._descriptor_of(page)
        if descriptor.dirty:
            self._write_back([page])

    def flush_all(self) -> int:
        """Checkpoint-style flush of every dirty page; returns the count.

        The baseline manager flushes one page at a time, as the paper notes
        state-of-the-art systems do.
        """
        dirty = self.dirty_pages()
        for page in dirty:
            self._write_back([page])
        if self.wal is not None and not self._dirty_set:
            # A checkpoint record promises every earlier update has reached
            # the data pages; degraded write-backs leave pages dirty, so
            # the record is withheld until a later flush fully succeeds.
            self.wal.checkpoint_record()
        return len(dirty)

    # -------------------------------------------------------- miss handling

    def _handle_miss(self, page: int) -> int:
        """Classic miss path: make one frame available, read the page.

        Returns the frame id the page was installed into, so the request
        path never needs a second table lookup.  Subclasses (ACE) override
        this method; everything else in the manager is shared.
        """
        if not self.pool.has_free():
            victim = self.policy.select_victim()
            if victim is None:
                raise self._pool_exhausted(page)
            if victim in self._dirty_set:
                # The classic exchange: one write-back for one read.
                self.stats.dirty_evictions += 1
                self._write_back([victim])
                if victim in self._dirty_set:
                    victim = self._degraded_victim(victim)
            else:
                self.stats.clean_evictions += 1
            self._evict(victim)
        return self._load(page)

    # ----------------------------------------------------------- internals

    def _pool_exhausted(
        self, page: int, candidates_examined: int | None = None
    ) -> PoolExhaustedError:
        """Build the uniform :class:`PoolExhaustedError` payload.

        Both raise sites (the baseline miss path here and ACE's Evictor
        miss path) funnel through this helper so shed/requeue logic in the
        serving layer sees one shape.  ``candidates_examined`` defaults to
        the resident-page count: a ``None`` victim means the policy walked
        every resident candidate and found all of them pinned.
        """
        if candidates_examined is None:
            candidates_examined = len(self._frame_of)
        return PoolExhaustedError(
            "all pages are pinned",
            page=page,
            capacity=self.capacity,
            pinned=len(self._pinned_set),
            candidates_examined=candidates_examined,
        )

    def _descriptor_of(self, page: int):
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        return self._descriptors[frame_id]

    def _mark_dirty(self, page: int, frame_id: int) -> None:
        self._descriptors[frame_id].dirty = True
        self._dirty_set.add(page)
        self._note_dirty(page)

    def _write_back(self, pages: Iterable[int], background: bool = False) -> int:
        """Write the given resident dirty pages to the device in one batch.

        The baseline manager always calls this with a single page; ACE's
        Writer calls it with up to ``n_w`` pages, which the device executes
        concurrently.  Pages are marked clean afterwards.  Returns the
        number of pages written.
        """
        frame_of = self._frame_of
        descriptors = self._descriptors
        payloads = self._payloads
        batch: dict[int, object | None] = {}
        resolved: list[object] = []
        for page in pages:
            frame_id = frame_of.get(page)
            if frame_id is None:
                raise PageNotBufferedError(f"page {page} is not resident")
            descriptor = descriptors[frame_id]
            if not descriptor.dirty:
                raise ValueError(f"page {page} is not dirty")
            batch[page] = payloads[frame_id]
            resolved.append(descriptor)
        if not batch:
            return 0
        if self.wal is not None:
            # WAL-before-data: log records covering these pages must be
            # durable before the pages themselves are written.
            self.wal.flush()
        try:
            self.device.write_batch(batch)
        except IOFaultError as fault:
            return self._retry_write_back(batch, fault, background)
        for descriptor in resolved:
            descriptor.dirty = False
        self._dirty_set.difference_update(batch)
        note_clean = self._note_clean
        for page in batch:
            note_clean(page)
        self.stats.writebacks += len(batch)
        self.stats.writeback_batches += 1
        if background:
            self.stats.background_writebacks += len(batch)
        return len(batch)

    def _retry_write_back(
        self,
        batch: dict[int, object | None],
        fault: IOFaultError,
        background: bool,
    ) -> int:
        """Drive a faulted write-back to completion or graceful degradation.

        Pages the device acknowledged (a torn prefix, the healthy part of a
        batch with a dead page) are marked clean; a landed prefix proves the
        device is alive, so it also resets the attempt budget.  Whatever is
        still unwritten after a permanent fault or ``max_attempts``
        consecutive fruitless tries simply *stays dirty* — the pages remain
        resident and re-queued for the next write-back that covers them,
        and the caller falls back to a clean victim if it needed this one.
        Termination: every torn retry strictly shrinks the remainder, and
        fruitless attempts are bounded by the policy.
        """
        retry = self.retry
        clock = self.device.clock
        stats = self.stats
        landed: list[int] = []
        remaining = dict(batch)
        attempt = 1
        while True:
            stats.io_faults += 1
            if fault.acknowledged:
                for page in fault.acknowledged:
                    if page in remaining:
                        landed.append(page)
                        del remaining[page]
                if isinstance(fault, TornWriteError):
                    stats.degraded_writebacks += 1
                attempt = 1
                if not remaining:
                    break
            if fault.permanent or attempt >= retry.max_attempts:
                stats.failed_writebacks += len(remaining)
                break
            delay = retry.backoff_for(attempt)
            clock.advance(delay)
            stats.io_retries += 1
            stats.retry_backoff_us += delay
            attempt += 1
            try:
                self.device.write_batch(remaining)
            except IOFaultError as next_fault:
                fault = next_fault
                continue
            landed.extend(remaining)
            remaining.clear()
            break
        if not landed:
            return 0
        frame_of = self._frame_of
        descriptors = self._descriptors
        note_clean = self._note_clean
        for page in landed:
            frame_id = frame_of.get(page)
            if frame_id is not None:
                descriptors[frame_id].dirty = False
                note_clean(page)
        self._dirty_set.difference_update(landed)
        stats.writebacks += len(landed)
        stats.writeback_batches += 1
        if background:
            stats.background_writebacks += len(landed)
        return len(landed)

    def _degraded_victim(self, failed: int) -> int:
        """Pick a clean victim after page ``failed`` refused to flush."""
        fallback = self._clean_victim_fallback()
        if fallback is None:
            raise RetriesExhaustedError(
                "write",
                (failed,),
                self.retry.max_attempts,
                f"write-back of victim page {failed} failed and the pool "
                "holds no clean page to evict instead",
            )
        self.stats.degraded_evictions += 1
        return fallback

    def _clean_victim_fallback(self) -> int | None:
        """First unpinned *clean* page in the policy's virtual order."""
        selected = self.policy.next_clean(1)
        return selected[0] if selected else None

    def _evict(self, page: int) -> None:
        """Drop a clean resident page from the pool."""
        frame_id = self._frame_of.get(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        descriptor = self._descriptors[frame_id]
        if descriptor.dirty:
            raise ValueError(
                f"cannot evict dirty page {page}; write it back first"
            )
        if descriptor.pin_count > 0:
            raise ValueError(f"cannot evict pinned page {page}")
        if descriptor.prefetched:
            self.stats.prefetch_unused += 1
        self.stats.evictions += 1
        del self._frame_of[page]
        self.policy.remove(page)
        self.pool.free(frame_id)

    def _load(self, page: int, cold: bool = False) -> int:
        """Read ``page`` from the device and install it into a free frame."""
        try:
            payload = self.device.read_page(page)
        except IOFaultError as fault:
            payload = self._read_page_with_retry(page, fault)
        return self._install_fetched(page, payload, cold=cold, prefetched=False)

    def _read_page_with_retry(
        self, page: int, fault: IOFaultError
    ) -> object | None:
        """Retry a faulted single-page read under the manager's policy.

        Reads cannot degrade — the requested payload either arrives or the
        request fails — so permanent faults re-raise immediately and
        transient faults escalate to :class:`RetriesExhaustedError` once
        the attempt budget is spent.
        """
        retry = self.retry
        clock = self.device.clock
        stats = self.stats
        attempt = 1
        while True:
            stats.io_faults += 1
            if fault.permanent:
                raise fault
            if attempt >= retry.max_attempts:
                raise RetriesExhaustedError(
                    "read",
                    (page,),
                    attempt,
                    f"could not read page {page}",
                    last_fault=fault,
                ) from fault
            delay = retry.backoff_for(attempt)
            clock.advance(delay)
            stats.io_retries += 1
            stats.retry_backoff_us += delay
            attempt += 1
            try:
                return self.device.read_page(page)
            except IOFaultError as next_fault:
                fault = next_fault

    def _install_fetched(self, page: int, payload: object | None,
                         cold: bool, prefetched: bool) -> int:
        """Install a page whose payload was already read in a batch.

        Returns the frame id the page now occupies.
        """
        descriptor = self.pool.allocate()
        frame_id = descriptor.frame_id
        descriptor.page = page
        descriptor.dirty = False
        descriptor.prefetched = prefetched
        if prefetched:
            self.stats.prefetch_issued += 1
        self._payloads[frame_id] = payload
        self.table.insert(page, frame_id)
        self.policy.insert(page, cold=cold)
        return frame_id

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"policy={self.policy.name}, resident={len(self.table)})"
        )
