"""The baseline buffer manager: classic one-page-at-a-time replacement.

This is the state-of-the-art design the paper argues against (Section I,
"The Challenge"): when a requested page misses and the pool is full, one
victim is chosen by the replacement policy; if it is dirty it is written
back — **one I/O at a time** — then evicted, and the requested page is read.
One read is thereby "exchanged" for one write, irrespective of the device's
asymmetry and concurrency.

:class:`~repro.core.ace.ACEBufferPoolManager` subclasses this class and
overrides only the miss-handling path, mirroring how the paper implements
ACE as a wrapper inside PostgreSQL's ``bufmgr.c`` without touching the
replacement policies themselves.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.bufferpool.pool import FramePool
from repro.bufferpool.stats import BufferStats
from repro.bufferpool.table import BufferTable
from repro.bufferpool.wal import WriteAheadLog
from repro.errors import PageNotBufferedError, PoolExhaustedError
from repro.policies.base import ReplacementPolicy
from repro.storage.device import SimulatedSSD

__all__ = ["BufferPoolManager"]


class BufferPoolManager:
    """Classic bufferpool: policy-driven replacement, single-page write-back.

    Parameters
    ----------
    capacity:
        Pool size in pages (PostgreSQL's ``shared_buffers``).
    policy:
        A replacement policy; the manager binds itself as the policy's
        :class:`~repro.policies.base.PageStateView`.
    device:
        The simulated storage device holding the database pages.
    wal:
        Optional write-ahead log; when present, every page write request is
        logged before the page is dirtied (crash-consistency ordering).
    """

    #: Variant label used in reports ("baseline" vs "ace"/"ace+pf").
    variant = "baseline"

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        device: SimulatedSSD,
        wal: WriteAheadLog | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self.device = device
        self.wal = wal
        self.pool = FramePool(capacity)
        self.table = BufferTable()
        self.stats = BufferStats()
        # Fast-path mirrors of the descriptor state bits.  Policies probe
        # dirty/pinned state on every victim-selection step, so these are
        # the hottest lookups in the system; the descriptors remain the
        # authoritative record.
        self._dirty_set: set[int] = set()
        self._pinned_set: set[int] = set()
        policy.bind(self)

    # ------------------------------------------------------ PageStateView

    def is_dirty(self, page: int) -> bool:
        return page in self._dirty_set

    def is_pinned(self, page: int) -> bool:
        return page in self._pinned_set

    # --------------------------------------------------------- client API

    def read_page(self, page: int) -> object | None:
        """Fetch ``page`` for reading; returns its payload."""
        self.stats.read_requests += 1
        return self._get_page(page, for_write=False)

    def write_page(self, page: int, payload: object | None = None) -> object:
        """Fetch ``page`` for writing and apply an update.

        If ``payload`` is ``None`` the stored version counter is
        incremented; otherwise the payload replaces the page contents.
        Returns the new payload.  The update's redo image is WAL-logged
        before any data-page write can reach the device (WAL-before-data).
        """
        self.stats.write_requests += 1
        current = self._get_page(page, for_write=True)
        frame_id = self.table.lookup(page)
        assert frame_id is not None
        if payload is None:
            base = current if isinstance(current, int) else 0
            payload = base + 1
        self.pool.set_payload(frame_id, payload)
        if self.wal is not None:
            self.wal.log_update(page, payload)
        return payload

    def access(self, page: int, is_write: bool) -> object | None:
        """Dispatch a trace request: read or write ``page``."""
        if is_write:
            return self.write_page(page)
        return self.read_page(page)

    def contains(self, page: int) -> bool:
        """Whether ``page`` is currently resident."""
        return page in self.table

    def resident_pages(self) -> list[int]:
        return self.table.pages()

    def dirty_pages(self) -> list[int]:
        """Resident pages with unflushed modifications."""
        return [
            d.page
            for d in self.pool.descriptors
            if d.in_use and d.dirty and d.page is not None
        ]

    def pin(self, page: int) -> None:
        """Pin a resident page so it cannot be evicted."""
        descriptor = self._descriptor_of(page)
        descriptor.pin_count += 1
        self._pinned_set.add(page)

    def unpin(self, page: int) -> None:
        descriptor = self._descriptor_of(page)
        if descriptor.pin_count == 0:
            raise ValueError(f"page {page} is not pinned")
        descriptor.pin_count -= 1
        if descriptor.pin_count == 0:
            self._pinned_set.discard(page)

    def flush_page(self, page: int) -> None:
        """Write a resident dirty page back to the device (stays resident)."""
        descriptor = self._descriptor_of(page)
        if descriptor.dirty:
            self._write_back([page])

    def flush_all(self) -> int:
        """Checkpoint-style flush of every dirty page; returns the count.

        The baseline manager flushes one page at a time, as the paper notes
        state-of-the-art systems do.
        """
        dirty = self.dirty_pages()
        for page in dirty:
            self._write_back([page])
        if self.wal is not None:
            self.wal.checkpoint_record()
        return len(dirty)

    # -------------------------------------------------------- miss handling

    def _get_page(self, page: int, for_write: bool) -> object | None:
        frame_id = self.table.lookup(page)
        if frame_id is not None:
            self.stats.hits += 1
            descriptor = self.pool.descriptors[frame_id]
            if descriptor.prefetched:
                descriptor.prefetched = False
                self.stats.prefetch_hits += 1
            self.policy.on_access(page, is_write=for_write)
            self._observe_access(page)
            if for_write:
                self._mark_dirty(page, frame_id)
            return self.pool.payload(frame_id)

        self.stats.misses += 1
        self._handle_miss(page)
        frame_id = self.table.lookup(page)
        if frame_id is None:
            raise PageNotBufferedError(
                f"miss handling failed to load page {page}"
            )
        self._observe_access(page)
        if for_write:
            self._mark_dirty(page, frame_id)
        return self.pool.payload(frame_id)

    def _handle_miss(self, page: int) -> None:
        """Classic miss path: make one frame available, read the page.

        Subclasses (ACE) override this method; everything else in the
        manager is shared.
        """
        if not self.pool.has_free():
            victim = self.policy.select_victim()
            if victim is None:
                raise PoolExhaustedError("all pages are pinned")
            if self.is_dirty(victim):
                # The classic exchange: one write-back for one read.
                self.stats.dirty_evictions += 1
                self._write_back([victim])
            else:
                self.stats.clean_evictions += 1
            self._evict(victim)
        self._load(page)

    def _observe_access(self, page: int) -> None:
        """Hook for prefetcher training; the baseline manager has none."""

    # ----------------------------------------------------------- internals

    def _descriptor_of(self, page: int):
        frame_id = self.table.lookup(page)
        if frame_id is None:
            raise PageNotBufferedError(f"page {page} is not resident")
        return self.pool.descriptors[frame_id]

    def _mark_dirty(self, page: int, frame_id: int) -> None:
        self.pool.descriptors[frame_id].dirty = True
        self._dirty_set.add(page)

    def _write_back(self, pages: Iterable[int], background: bool = False) -> int:
        """Write the given resident dirty pages to the device in one batch.

        The baseline manager always calls this with a single page; ACE's
        Writer calls it with up to ``n_w`` pages, which the device executes
        concurrently.  Pages are marked clean afterwards.  Returns the
        number of pages written.
        """
        batch: dict[int, object | None] = {}
        for page in pages:
            descriptor = self._descriptor_of(page)
            if not descriptor.dirty:
                raise ValueError(f"page {page} is not dirty")
            frame_id = descriptor.frame_id
            batch[page] = self.pool.payload(frame_id)
        if not batch:
            return 0
        if self.wal is not None:
            # WAL-before-data: log records covering these pages must be
            # durable before the pages themselves are written.
            self.wal.flush()
        self.device.write_batch(batch)
        for page in batch:
            self._descriptor_of(page).dirty = False
            self._dirty_set.discard(page)
        self.stats.writebacks += len(batch)
        self.stats.writeback_batches += 1
        if background:
            self.stats.background_writebacks += len(batch)
        return len(batch)

    def _evict(self, page: int) -> None:
        """Drop a clean resident page from the pool."""
        descriptor = self._descriptor_of(page)
        if descriptor.dirty:
            raise ValueError(
                f"cannot evict dirty page {page}; write it back first"
            )
        if descriptor.pinned:
            raise ValueError(f"cannot evict pinned page {page}")
        if descriptor.prefetched:
            self.stats.prefetch_unused += 1
        self.stats.evictions += 1
        frame_id = self.table.delete(page)
        self.policy.remove(page)
        self.pool.free(frame_id)

    def _load(self, page: int, cold: bool = False) -> None:
        """Read ``page`` from the device and install it into a free frame."""
        payload = self.device.read_page(page)
        self._install_fetched(page, payload, cold=cold, prefetched=False)

    def _install_fetched(self, page: int, payload: object | None,
                         cold: bool, prefetched: bool) -> None:
        """Install a page whose payload was already read in a batch."""
        descriptor = self.pool.allocate()
        descriptor.page = page
        descriptor.dirty = False
        descriptor.prefetched = prefetched
        if prefetched:
            self.stats.prefetch_issued += 1
        self.pool.set_payload(descriptor.frame_id, payload)
        self.table.insert(page, descriptor.frame_id)
        self.policy.insert(page, cold=cold)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"policy={self.policy.name}, resident={len(self.table)})"
        )
