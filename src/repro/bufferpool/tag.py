"""Buffer tags: structured page identity, as in PostgreSQL.

PostgreSQL identifies every page with a ``buffer_tag`` — the relation file,
the fork, and the block number within the fork.  The simulator flattens
tags to a single integer page number (the device's address space), but the
structured form is preserved here for the database layout layer
(:mod:`repro.bufferpool.database`), which assigns each relation a contiguous
page range and converts between the two representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["ForkNumber", "BufferTag"]


class ForkNumber(IntEnum):
    """PostgreSQL relation forks (we only simulate the main fork's I/O)."""

    MAIN = 0
    FSM = 1
    VISIBILITY_MAP = 2
    INIT = 3


@dataclass(frozen=True, order=True)
class BufferTag:
    """Identity of a disk page: (relation, fork, block)."""

    rel_id: int
    block: int
    fork: ForkNumber = ForkNumber.MAIN

    def __post_init__(self) -> None:
        if self.rel_id < 0:
            raise ValueError(f"relation id cannot be negative: {self.rel_id}")
        if self.block < 0:
            raise ValueError(f"block number cannot be negative: {self.block}")

    def __str__(self) -> str:
        return f"rel{self.rel_id}/{self.fork.name.lower()}/blk{self.block}"
