"""The buffer table: page number -> frame id translation.

PostgreSQL keeps this mapping as a partitioned shared hash table; vmcache
and the array-translation line of work argue that at modern request rates
the hash probe itself is the bottleneck and a flat array indexed by page id
is the right structure whenever the address space is dense enough to
afford one slot per page.  The simulator offers both:

``BufferTable`` (``backend == "dict"``)
    The classic hash map.  Works for any (sparse, unbounded) page space.

``ArrayBufferTable`` (``backend == "array"``)
    A preallocated translation vector ``_slots`` with one entry per page
    in the address space; ``-1`` means "not resident".  A resident probe
    is a single C-level list index — no hashing, no boxing of the key.
    An insertion-ordered dict mirror (``_frame_of``) is maintained for
    iteration, length, and diagnostics so observable ordering (eviction
    sweeps, sanitizer scans, ``pages()``) is byte-identical to the dict
    backend.

Both backends expose ``_slots`` with the same hot-path contract — indexing
by a page in ``[0, probe_space)`` yields the frame id or ``-1`` — so the
buffer manager's request path is backend-agnostic.  The dict backend gets
this via a ``__missing__`` shim; its ``_slots`` *is* its ``_frame_of``.

Backend selection is automatic (array whenever the device's address space
is known and small enough to preallocate; dict otherwise) and can be
forced with ``REPRO_TABLE={array,dict}`` for differential testing.
"""

from __future__ import annotations

import os

__all__ = [
    "ARRAY_SPACE_LIMIT",
    "ArrayBufferTable",
    "BufferTable",
    "ENV_VAR",
    "make_table",
    "resolve_backend",
]

#: Environment switch forcing the translation backend ("array", "dict" or
#: "auto"/empty for automatic selection).
ENV_VAR = "REPRO_TABLE"

#: Largest address space (in pages) the automatic selection will cover
#: with a translation vector; sparser/huger spaces fall back to the dict
#: backend.  2**22 slots is ~32 MB of pointer array — trivial next to the
#: payload store a pool of that size implies.
ARRAY_SPACE_LIMIT = 1 << 22

#: ``probe_space`` stand-in for the dict backend: any non-negative page id
#: may be probed directly (the ``__missing__`` shim answers -1).
_UNBOUNDED = (1 << 63) - 1


class _SlotDict(dict):
    """A dict whose missing keys read as ``-1``.

    This gives the hash backend the same hot-path shape as the translation
    vector: ``slots[page]`` is a frame id or ``-1``, resolved entirely in
    C.  Nothing is inserted on a miss (unlike ``defaultdict``).
    """

    __slots__ = ()

    def __missing__(self, key: int) -> int:
        return -1


class BufferTable:
    """Hash map from page number to the frame currently holding it."""

    backend = "dict"
    #: Pages addressable by the backend; ``None`` means unbounded (dict).
    address_space: int | None = None

    def __init__(self) -> None:
        self._frame_of: dict[int, int] = _SlotDict()
        #: Hot-path probe target; for the dict backend it is the mapping
        #: itself (see :class:`_SlotDict`).
        self._slots = self._frame_of
        #: Upper bound (exclusive) on pages that may be probed through
        #: ``_slots`` — callers gate ``0 <= page < probe_space`` and treat
        #: anything outside as a miss.
        self.probe_space: int = _UNBOUNDED

    def lookup(self, page: int) -> int | None:
        """Frame id holding ``page``, or ``None`` if not resident."""
        return self._frame_of.get(page)

    def insert(self, page: int, frame_id: int) -> None:
        if page in self._frame_of:
            raise ValueError(
                f"page {page} already mapped to frame {self._frame_of[page]}"
            )
        self._frame_of[page] = frame_id

    def delete(self, page: int) -> int:
        """Remove the mapping for ``page`` and return the freed frame id."""
        try:
            return self._frame_of.pop(page)
        except KeyError:
            raise KeyError(f"page {page} is not in the buffer table") from None

    def __contains__(self, page: int) -> bool:
        return page in self._frame_of

    def __len__(self) -> int:
        return len(self._frame_of)

    def pages(self) -> list[int]:
        return list(self._frame_of)


class ArrayBufferTable(BufferTable):
    """vmcache-style flat translation vector over a bounded address space."""

    backend = "array"

    def __init__(self, address_space: int) -> None:
        if address_space < 1:
            raise ValueError(
                f"address space must be positive: {address_space}"
            )
        self.address_space = address_space
        #: Insertion-ordered mirror of the resident set.  Iteration order
        #: (and therefore every order-sensitive consumer) matches the dict
        #: backend exactly; the vector below answers the per-request probes.
        self._frame_of: dict[int, int] = {}
        # A plain list beats array('q') for single-element reads in
        # CPython (no int re-boxing), and -1 is a shared small int.
        self._slots: list[int] = [-1] * address_space
        self.probe_space = address_space

    def lookup(self, page: int) -> int | None:
        if 0 <= page < self.address_space:
            frame_id = self._slots[page]
            if frame_id >= 0:
                return frame_id
        return None

    def insert(self, page: int, frame_id: int) -> None:
        if not 0 <= page < self.address_space:
            raise ValueError(
                f"page {page} outside the translation vector's address "
                f"space [0, {self.address_space})"
            )
        if self._slots[page] >= 0:
            raise ValueError(
                f"page {page} already mapped to frame {self._slots[page]}"
            )
        self._slots[page] = frame_id
        self._frame_of[page] = frame_id

    def delete(self, page: int) -> int:
        try:
            frame_id = self._frame_of.pop(page)
        except KeyError:
            raise KeyError(f"page {page} is not in the buffer table") from None
        self._slots[page] = -1
        return frame_id


def _env_backend() -> str:
    raw = os.environ.get(ENV_VAR, "")  # lint: allow-nondeterminism
    return raw.strip().lower()


def resolve_backend(
    address_space: int | None, backend: str | None = None
) -> str:
    """The translation backend that ``make_table`` would pick.

    ``backend`` overrides; otherwise the ``REPRO_TABLE`` environment
    switch applies, and failing that the automatic rule: array whenever
    the address space is known and within :data:`ARRAY_SPACE_LIMIT`.
    """
    choice = backend if backend is not None else _env_backend()
    if choice in ("", "auto"):
        if address_space is not None and 0 < address_space <= ARRAY_SPACE_LIMIT:
            return "array"
        return "dict"
    if choice not in ("array", "dict"):
        raise ValueError(
            f"unknown translation backend {choice!r}: "
            "expected 'array', 'dict' or 'auto'"
        )
    if choice == "array" and (address_space is None or address_space < 1):
        raise ValueError(
            "the array translation backend needs a bounded address space "
            f"(got {address_space!r}); use REPRO_TABLE=dict or pass the "
            "device's num_pages"
        )
    return choice


def make_table(
    address_space: int | None = None, backend: str | None = None
) -> BufferTable:
    """Build the buffer table for an address space of ``address_space`` pages.

    ``backend`` (or ``REPRO_TABLE``) forces a choice; by default the array
    backend is used whenever the space is bounded and affordable.
    """
    if resolve_backend(address_space, backend) == "array":
        assert address_space is not None  # resolve_backend guarantees it
        return ArrayBufferTable(address_space)
    return BufferTable()
