"""The buffer table: page number -> frame id mapping.

PostgreSQL keeps this as a partitioned shared hash table; a Python dict
provides the same interface for the simulator.
"""

from __future__ import annotations

__all__ = ["BufferTable"]


class BufferTable:
    """Hash map from page number to the frame currently holding it."""

    def __init__(self) -> None:
        self._frame_of: dict[int, int] = {}

    def lookup(self, page: int) -> int | None:
        """Frame id holding ``page``, or ``None`` if not resident."""
        return self._frame_of.get(page)

    def insert(self, page: int, frame_id: int) -> None:
        if page in self._frame_of:
            raise ValueError(
                f"page {page} already mapped to frame {self._frame_of[page]}"
            )
        self._frame_of[page] = frame_id

    def delete(self, page: int) -> int:
        """Remove the mapping for ``page`` and return the freed frame id."""
        try:
            return self._frame_of.pop(page)
        except KeyError:
            raise KeyError(f"page {page} is not in the buffer table") from None

    def __contains__(self, page: int) -> bool:
        return page in self._frame_of

    def __len__(self) -> int:
        return len(self._frame_of)

    def pages(self) -> list[int]:
        return list(self._frame_of)
