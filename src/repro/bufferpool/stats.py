"""Bufferpool statistics: hits, misses, evictions, write-backs, prefetching.

These counters feed the paper's reported metrics: buffer misses/hits
(Table III), logical writes (client write requests reaching the bufferpool),
write-backs (pages flushed to the device), and prefetch accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["BufferStats"]


# ``slots=True``: the manager increments these counters on every request,
# so the attribute writes bypass a per-instance dict.
@dataclass(slots=True)
class BufferStats:
    """Counters maintained by the buffer manager."""

    #: Page requests served from memory / requiring device I/O.
    hits: int = 0
    misses: int = 0
    #: Client-level read/write page requests (a write request dirties a page).
    read_requests: int = 0
    write_requests: int = 0
    #: Pages removed from the pool, split by their state at eviction time.
    evictions: int = 0
    clean_evictions: int = 0
    dirty_evictions: int = 0
    #: Pages written back to the device and the batches used to do so.
    writebacks: int = 0
    writeback_batches: int = 0
    #: Write-backs initiated by background processes (writer/checkpointer).
    background_writebacks: int = 0
    #: Prefetching effectiveness.
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_unused: int = 0
    #: Fault handling (see repro.faults): device faults the manager saw,
    #: retries it issued, and backoff time charged to the virtual clock.
    io_faults: int = 0
    io_retries: int = 0
    retry_backoff_us: float = 0.0
    #: Write-back degradation: batches that landed partially (torn or
    #: mixed), pages abandoned dirty after retries, and evictions that
    #: fell back to a different (clean) candidate.
    degraded_writebacks: int = 0
    failed_writebacks: int = 0
    degraded_evictions: int = 0
    #: Data integrity: reads that tripped a checksum failure, and pages
    #: healed in place from a WAL redo image (see repro.bufferpool.repair).
    corrupt_page_reads: int = 0
    pages_repaired: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def mean_writeback_batch(self) -> float:
        """Average write-back batch size — ~1 for classic, ~n_w for ACE."""
        if self.writeback_batches == 0:
            return 0.0
        return self.writebacks / self.writeback_batches

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched pages that were accessed before eviction."""
        used_or_wasted = self.prefetch_hits + self.prefetch_unused
        if used_or_wasted == 0:
            return 0.0
        return self.prefetch_hits / used_or_wasted

    def copy(self) -> "BufferStats":
        return replace(self)
