"""Background flush processes: the background writer and the checkpointer.

PostgreSQL flushes dirty pages with two background processes (paper §V):
the **background writer** continuously trickles dirty pages out so foreground
evictions find clean victims, and the **checkpointer** periodically writes a
checkpoint record to the WAL and flushes *all* dirty pages.

The paper modifies both so that under ACE "they always perform ``n_w``
writes concurrently".  Both classes therefore take a ``batch_size``: 1
reproduces the stock one-I/O-at-a-time behaviour, ``n_w`` the ACE-augmented
one.  The execution engine invokes :meth:`BackgroundWriter.run_round` /
:meth:`Checkpointer.maybe_checkpoint` on a virtual-time schedule.

A third maintenance process rides the same schedule: :class:`IdleScrubber`
binds a :class:`~repro.bufferpool.repair.Scrubber` to a manager so latent
silent corruption (see :mod:`repro.faults`) is detected and healed from
WAL redo images during idle time, before a client read trips over it.
"""

from __future__ import annotations

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.repair import Scrubber

__all__ = ["BackgroundWriter", "Checkpointer", "IdleScrubber"]


class BackgroundWriter:
    """Flushes up to ``pages_per_round`` LRU-most dirty pages per round."""

    def __init__(
        self,
        manager: BufferPoolManager,
        pages_per_round: int = 16,
        batch_size: int = 1,
    ) -> None:
        if pages_per_round < 1:
            raise ValueError("pages_per_round must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.manager = manager
        self.pages_per_round = pages_per_round
        self.batch_size = batch_size
        self.rounds = 0
        self.pages_flushed = 0

    def run_round(self) -> int:
        """Flush the next dirty pages in the policy's virtual order.

        Returns the number of pages written.  With ``batch_size == 1`` each
        page is a separate device write (stock PostgreSQL); with
        ``batch_size == n_w`` writes are issued in concurrent batches (ACE).
        """
        self.rounds += 1
        candidates = self.manager.policy.next_dirty(self.pages_per_round)
        flushed = 0
        for start in range(0, len(candidates), self.batch_size):
            chunk = candidates[start : start + self.batch_size]
            flushed += self.manager._write_back(chunk, background=True)
        self.pages_flushed += flushed
        return flushed


class IdleScrubber:
    """Interval-driven corruption scrubbing bound to a running manager.

    Wraps a :class:`~repro.bufferpool.repair.Scrubber` with the manager's
    own dirty-page testimony (a dirty page's device image is legitimately
    stale, so the redo cross-check must skip it) and the virtual-time
    interval contract the executor drives the other background processes
    with.  Requires a WAL-attached manager: repair without redo images
    would be guesswork.
    """

    def __init__(
        self,
        manager: BufferPoolManager,
        interval_us: float = 50_000.0,
        pages_per_round: int = 64,
    ) -> None:
        if manager.wal is None:
            raise ValueError("scrubbing needs a WAL-attached manager")
        if interval_us <= 0:
            raise ValueError("scrub interval must be positive")
        self.manager = manager
        self.interval_us = interval_us
        self.scrubber = Scrubber(
            manager.device,
            manager.wal,
            pages_per_round=pages_per_round,
            is_dirty=manager.is_dirty,
        )
        self._last_round_us = manager.device.clock.now_us

    @property
    def stats(self):
        return self.scrubber.stats

    def maybe_scrub(self) -> bool:
        """Run one scrub round if the interval elapsed."""
        now = self.manager.device.clock.now_us
        if now - self._last_round_us < self.interval_us:
            return False
        self.scrubber.run_round()
        self._last_round_us = self.manager.device.clock.now_us
        return True


class Checkpointer:
    """Periodically WAL-logs a checkpoint and flushes all dirty pages."""

    def __init__(
        self,
        manager: BufferPoolManager,
        interval_us: float = 60e6,
        batch_size: int = 1,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("checkpoint interval must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.manager = manager
        self.interval_us = interval_us
        self.batch_size = batch_size
        self._last_checkpoint_us = manager.device.clock.now_us
        self.checkpoints_taken = 0
        self.pages_flushed = 0
        #: Checkpoints whose record was withheld because degraded
        #: write-backs left dirty pages behind (see :meth:`checkpoint`).
        self.checkpoints_skipped = 0

    def maybe_checkpoint(self) -> bool:
        """Run a checkpoint if the interval elapsed; returns whether it did."""
        now = self.manager.device.clock.now_us
        if now - self._last_checkpoint_us < self.interval_us:
            return False
        self.checkpoint()
        return True

    def checkpoint(self) -> int:
        """Flush every dirty page and log a checkpoint record.

        The record truncates the recovery window, so it is a *promise* that
        every earlier update has reached the data pages.  If fault-injected
        write-backs degraded and left pages dirty, the record is withheld —
        recovery then replays from the previous checkpoint, which is slower
        but never loses updates.
        """
        manager = self.manager
        dirty = manager.dirty_pages()
        flushed = 0
        for start in range(0, len(dirty), self.batch_size):
            chunk = dirty[start : start + self.batch_size]
            flushed += manager._write_back(chunk, background=True)
        if manager.wal is not None:
            if manager._dirty_set:
                self.checkpoints_skipped += 1
            else:
                manager.wal.checkpoint_record()
        self.checkpoints_taken += 1
        self.pages_flushed += flushed
        self._last_checkpoint_us = manager.device.clock.now_us
        return flushed
