"""Crash simulation and redo recovery from the write-ahead log.

Both the classic manager and ACE delay data-page writes (the background
writer, the checkpointer, and ACE's batched write-back all assume a page
can sit dirty in memory long after its update committed).  What makes that
safe is WAL-before-data plus redo recovery, which this module implements
for the simulator:

* :func:`simulate_crash` — power loss: every buffered page (dirty or
  clean) vanishes; only the device contents and the *durable* prefix of
  the WAL survive.
* :func:`recover` — ARIES-style redo pass: scan durable records from the
  last durable checkpoint and reapply each update's redo image to the
  device.  Updates whose records never reached the log device (no commit
  flush) are lost, exactly as in a real system.

Together with the executor's commit-time ``wal.flush()``, this closes the
durability loop the paper's setup relies on ("WAL is enabled and the WAL
file is written in a separate device following common practice").
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WalRecordKind, WriteAheadLog
from repro.errors import IOFaultError, RetriesExhaustedError
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.storage.device import SimulatedSSD

__all__ = [
    "CrashImage",
    "RecoveryReport",
    "DurabilityAudit",
    "simulate_crash",
    "recover",
    "audit_committed",
]


@dataclass(frozen=True)
class CrashImage:
    """What survives a crash: the data device and the write-ahead log."""

    device: SimulatedSSD
    wal: WriteAheadLog
    #: Pages that were dirty in memory when the power failed (diagnostics:
    #: these are exactly the pages redo must reconstruct).
    lost_dirty_pages: tuple[int, ...]


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of a redo pass."""

    start_lsn: int
    records_scanned: int
    redo_applied: int
    redo_skipped: int
    #: Device retries spent while reapplying redo images (fault injection).
    redo_retries: int = 0

    @property
    def recovered_pages(self) -> int:
        return self.redo_applied


def simulate_crash(manager: BufferPoolManager) -> CrashImage:
    """Tear down a running manager as a power failure would.

    The bufferpool's memory (frames, descriptors, policy state, dirty
    pages) is discarded without any write-back; the device and the WAL's
    durable prefix are all that remain.  The manager must not be used
    afterwards.
    """
    if manager.wal is None:
        raise ValueError(
            "crash simulation needs a WAL-attached manager; without a log "
            "there is nothing to recover from"
        )
    lost_dirty = tuple(sorted(manager.dirty_pages()))
    # Wipe the in-memory state to make accidental reuse fail loudly.
    for descriptor in manager.pool.descriptors:
        descriptor.reset()
    manager.table = None  # type: ignore[assignment]
    manager.policy = None  # type: ignore[assignment]
    # The request fast paths run on bound aliases of the table/policy
    # internals, so wiping the objects above is not enough — clear the
    # aliases too, or a "dead" manager would keep serving hits.
    manager._slots = None  # lint: allow-translation
    manager._frame_of = None  # lint: allow-translation
    manager._policy_on_access = None  # type: ignore[assignment]
    manager._policy_select_victim = None  # type: ignore[assignment]
    manager._policy_insert = None  # type: ignore[assignment]
    manager._policy_remove = None  # type: ignore[assignment]
    manager._note_dirty = None  # type: ignore[assignment]
    manager._note_clean = None  # type: ignore[assignment]
    return CrashImage(
        device=manager.device,
        wal=manager.wal,
        lost_dirty_pages=lost_dirty,
    )


def recover(
    image: CrashImage, retry: RetryPolicy | None = None
) -> RecoveryReport:
    """Redo committed work onto the crashed device.

    Starts from the last durable checkpoint (all earlier updates are
    already on the device by the checkpoint contract) and reapplies every
    durable update record's redo image.  Records that carry no payload
    (pure dirtying without a logged image) are skipped and counted.

    Redo writes run under ``retry`` (default
    :data:`~repro.faults.DEFAULT_RETRY_POLICY`) when the crashed device
    still injects faults: recovery is precisely when giving up on a
    transient error would turn a committed update into lost data, so a
    redo write that stays unwritable after retries raises rather than
    finishing an incomplete recovery silently.
    """
    if retry is None:
        retry = DEFAULT_RETRY_POLICY
    wal = image.wal
    # Recovery trusts only what physically survived: revalidate the log's
    # page images (cached after the first pass) so a flush torn by the
    # crash is excluded from redo rather than half-replayed.
    wal.verify_durable_records()
    start_lsn = min(wal.last_checkpoint_lsn, wal.durable_lsn)
    records = wal.records_since(start_lsn)
    applied = 0
    skipped = 0
    redo_batch: dict[int, object] = {}
    for record in records:
        if record.kind is not WalRecordKind.UPDATE:
            continue
        if record.page is None or record.payload is None:
            skipped += 1
            continue
        # Later records overwrite earlier ones: one device write per page.
        redo_batch[record.page] = record.payload
        applied += 1
    device = image.device
    clock = device.clock
    redo_retries = 0
    for page, payload in redo_batch.items():
        attempt = 1
        while True:
            try:
                device.write_page(page, payload=payload)
                break
            except IOFaultError as fault:
                if not retry.should_retry(fault, attempt):
                    if fault.permanent:
                        raise
                    raise RetriesExhaustedError(
                        "write",
                        (page,),
                        attempt,
                        f"recovery could not redo page {page}",
                        last_fault=fault,
                    ) from fault
                clock.advance(retry.backoff_for(attempt))
                redo_retries += 1
                attempt += 1
    return RecoveryReport(
        start_lsn=start_lsn,
        records_scanned=len(records),
        redo_applied=applied,
        redo_skipped=skipped,
        redo_retries=redo_retries,
    )


@dataclass(frozen=True)
class DurabilityAudit:
    """Outcome of comparing a recovered device against a committed ledger.

    ``lost`` holds ``(page, committed_version, durable_version)`` for every
    page whose recovered payload is *behind* its committed version — each
    one is a committed update the system lost, the single unforgivable
    failure.  ``phantoms`` (exact mode only) holds ``(page,
    expected_version, durable_version)`` for pages *ahead of or diverging
    from* the ledger — redo that replayed work the durable log never
    committed.
    """

    committed_updates: int
    lost: tuple[tuple[int, int, int], ...] = ()
    phantoms: tuple[tuple[int, int, int], ...] = ()

    @property
    def lost_updates(self) -> int:
        return len(self.lost)

    @property
    def phantom_pages(self) -> int:
        return len(self.phantoms)

    @property
    def ok(self) -> bool:
        return not self.lost and not self.phantoms


def _durable_version(device: SimulatedSSD, page: int) -> int:
    """A page's recovered version counter (non-counter payloads are 0)."""
    payload = device.peek(page)
    return payload if isinstance(payload, int) else 0


def audit_committed(
    image: CrashImage,
    report: RecoveryReport | None,
    ledger: Mapping[int, int],
    exact: bool = False,
    pages: Iterable[int] | None = None,
) -> DurabilityAudit:
    """Audit a recovered crash image against a committed-version ledger.

    ``ledger`` maps page -> committed version (payloads are monotone
    version counters, so a page's durable version below its ledger entry
    means a committed update was lost).  ``report`` is accepted for
    symmetry with the recover call-site and future extensions; the audit
    itself reads only the recovered device.

    Two strictnesses, matching the two harnesses that share this helper:

    * ``exact=False`` (the chaos harness): the ledger is a *lower bound* —
      versions at the last commit point.  The device may legitimately be
      ahead (later write-backs made more recent durable work visible), so
      only ``durable < committed`` counts as a failure.
    * ``exact=True`` (the crash-point engine): the ledger is the complete
      durable truth — the version each page must have after redo.  Every
      audited page must match *exactly*; a page ahead of or diverging from
      the ledger is a phantom redo.  ``pages`` extends the audit beyond
      the ledger's keys (e.g. ``range(num_pages)``) so unledgered pages
      are proven untouched too.
    """
    del report  # the audit is a pure function of device state vs ledger
    device = image.device
    lost: list[tuple[int, int, int]] = []
    phantoms: list[tuple[int, int, int]] = []
    audited = set(ledger)
    for page, version in ledger.items():
        durable = _durable_version(device, page)
        if durable < version:
            lost.append((page, version, durable))
        elif exact and durable != version:
            phantoms.append((page, version, durable))
    if exact and pages is not None:
        for page in pages:
            if page in audited:
                continue
            durable = _durable_version(device, page)
            if durable != 0:
                phantoms.append((page, 0, durable))
    return DurabilityAudit(
        committed_updates=sum(ledger.values()),
        lost=tuple(lost),
        phantoms=tuple(phantoms),
    )
