"""Compatibility shim: the partitioned pool moved to the cluster layer.

:class:`PartitionedBufferPoolManager` shards the page space across
independent sub-pools — the in-process half of the sharded-cluster story,
whose page→shard mapping is owned by :mod:`repro.cluster.router` so the
process-parallel cluster engine and this class can never disagree.  That
makes the implementation a cluster-layer concern; it lived here
historically, so this module re-exports it for existing imports.  The
upward import is deliberate and declared (a shim, not a layering
violation — :mod:`repro.cluster` never imports back down into the
bufferpool package's partitioning).
"""

from repro.cluster.partitioned import (  # lint: allow-layering
    ManagerFactory,
    PartitionedBufferPoolManager,
)

__all__ = ["ManagerFactory", "PartitionedBufferPoolManager"]
