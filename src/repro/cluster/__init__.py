"""Sharded cluster engine: N shard nodes, parallel replay, exact merges.

The single-process perf trajectory (hot path → virtual-order engine →
array translation) tops out around one core's worth of accesses per
second.  The next epoch comes from *sharding*: split the page space
across N independent shard nodes — each a complete bufferpool + device
stack riding the same turbo replay path — replay each shard's subtrace
in its own worker process, and merge the per-shard metrics
deterministically.  Four sub-modules:

* :mod:`repro.cluster.router` — the page→shard contract (hash and
  mapped routing, trace/transaction splitting, cross-shard accounting);
* :mod:`repro.cluster.placement` — shard assignment as graph
  partitioning (co-access graphs, hash vs locality-optimized placement,
  cut/imbalance scoring);
* :mod:`repro.cluster.engine` — shard stacks, the parallel executor and
  the deterministic metric merge;
* :mod:`repro.cluster.replication` — replica groups: synchronous WAL
  shipping, deterministic failover/promotion, anti-entropy rejoin and
  the cluster-wide exact durability audit;
* :mod:`repro.cluster.partitioned` — the in-process
  :class:`PartitionedBufferPoolManager` (moved up from
  ``repro.bufferpool.partitioned``, which remains as a shim).
"""

from repro.cluster.engine import (
    ClusterConfig,
    ClusterMetrics,
    ShardJob,
    ShardResult,
    build_router,
    build_shard_stack,
    merge_shard_metrics,
    run_cluster,
    run_cluster_transactions,
)
from repro.cluster.partitioned import PartitionedBufferPoolManager
from repro.cluster.placement import (
    CoAccessGraph,
    coaccess_from_trace,
    coaccess_from_transactions,
    cut_weight,
    hash_placement,
    imbalance,
    locality_placement,
    placement_report,
)
from repro.cluster.replication import (
    FailoverEvent,
    ReplicatedShardResult,
    ReplicationSummary,
    ShardReplicationReport,
    build_replica_stack,
    run_replicated_cluster,
)
from repro.cluster.router import (
    CrossShardStats,
    HashShardRouter,
    MappedShardRouter,
    ShardRouter,
    SplitTransactions,
    StaleRouteError,
)

__all__ = [
    # engine
    "ClusterConfig",
    "ClusterMetrics",
    "ShardJob",
    "ShardResult",
    "build_router",
    "build_shard_stack",
    "merge_shard_metrics",
    "run_cluster",
    "run_cluster_transactions",
    # replication
    "FailoverEvent",
    "ReplicatedShardResult",
    "ReplicationSummary",
    "ShardReplicationReport",
    "build_replica_stack",
    "run_replicated_cluster",
    # partitioned
    "PartitionedBufferPoolManager",
    # placement
    "CoAccessGraph",
    "coaccess_from_trace",
    "coaccess_from_transactions",
    "cut_weight",
    "hash_placement",
    "imbalance",
    "locality_placement",
    "placement_report",
    # router
    "CrossShardStats",
    "HashShardRouter",
    "MappedShardRouter",
    "ShardRouter",
    "SplitTransactions",
    "StaleRouteError",
]
