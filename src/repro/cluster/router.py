"""Deterministic page→shard routing: the cluster's single source of truth.

Every sharded structure in the repo — the in-process
:class:`~repro.cluster.partitioned.PartitionedBufferPoolManager`, the
process-parallel cluster engine, the placement optimizer — must agree on
which shard owns a page, or replays stop being comparable.  This module
owns that mapping.  Routers are pure, deterministic functions of their
construction arguments: the same router routes the same page to the same
shard in every process, which is what makes the parallel cluster replay
byte-identical to the serial one.

Two routers cover the design space the bench sweeps:

* :class:`HashShardRouter` — the classic ``hash(page) % num_shards``
  slice (what ``repro.bufferpool.partitioned`` always did; it now
  delegates here).  Placement-free, balance comes from the hash.
* :class:`MappedShardRouter` — an explicit page→shard assignment vector,
  produced by :mod:`repro.cluster.placement`'s optimizers; pages outside
  the vector fall back to hash routing so the router is total.

Deliberately free of ``repro`` imports: the split helpers are duck-typed
over parallel ``pages``/``writes`` sequences and ``(kind, requests)``
transaction streams, so the low-level bufferpool shim can import this
module without dragging the whole cluster stack (or an import cycle)
with it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "ShardRouter",
    "HashShardRouter",
    "MappedShardRouter",
    "CrossShardStats",
    "SplitTransactions",
]


@dataclass
class CrossShardStats:
    """Transaction-affinity accounting produced by a transaction split.

    A transaction that touches pages owned by more than one shard is
    *cross-shard*: a real cluster pays coordination (two-phase commit,
    remote reads) for it, which the cluster engine models as a virtual
    time penalty per extra shard touched.
    """

    #: Transactions whose page set spans more than one shard.
    cross_shard_transactions: int = 0
    #: Page requests belonging to those transactions.
    cross_shard_accesses: int = 0
    #: Sum over cross-shard transactions of (shards touched - 1) — the
    #: unit the engine multiplies by its per-hop penalty.
    extra_shard_touches: int = 0
    #: Total transactions examined (the denominator for ratios).
    transactions: int = 0

    @property
    def cross_shard_ratio(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.cross_shard_transactions / self.transactions


@dataclass
class SplitTransactions:
    """Result of routing a transaction stream across shards."""

    #: Per-shard ``(kind, requests)`` streams, index = shard id.  A shard
    #: receives its slice of every transaction that touches it, in stream
    #: order, so per-shard replay preserves the original relative order.
    per_shard: list[list[tuple[object, list]]]
    stats: CrossShardStats = field(default_factory=CrossShardStats)


class ShardRouter:
    """Base router: a total, deterministic ``page -> shard`` function."""

    #: Human-readable placement scheme name, recorded in bench epochs.
    placement = "base"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard: {num_shards}")
        self.num_shards = num_shards

    def shard_of(self, page: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------- splits

    def split(
        self, pages: Sequence[int], writes: Sequence[bool]
    ) -> list[tuple[list[int], list[bool]]]:
        """Partition a request stream into per-shard subtraces.

        Returns one ``(pages, writes)`` pair per shard (index = shard
        id).  Each subtrace preserves the relative order of its requests,
        so replaying shard ``i``'s subtrace is exactly what shard ``i``
        would have observed serving the interleaved stream.
        """
        if len(pages) != len(writes):
            raise ValueError(
                f"pages ({len(pages)}) and writes ({len(writes)}) differ "
                "in length"
            )
        shard_of = self.shard_of
        split: list[tuple[list[int], list[bool]]] = [
            ([], []) for _ in range(self.num_shards)
        ]
        for page, is_write in zip(pages, writes):
            sub_pages, sub_writes = split[shard_of(page)]
            sub_pages.append(page)
            sub_writes.append(is_write)
        return split

    def split_transactions(
        self, transactions: Iterable[tuple[object, list]]
    ) -> SplitTransactions:
        """Route a ``(kind, requests)`` stream, accounting affinity.

        Each transaction is sliced per shard (a shard sees only its own
        requests, as its transaction branch); a transaction whose
        requests span several shards is counted in
        :class:`CrossShardStats` so the engine can charge the
        coordination penalty.
        """
        shard_of = self.shard_of
        per_shard: list[list[tuple[object, list]]] = [
            [] for _ in range(self.num_shards)
        ]
        stats = CrossShardStats()
        for kind, requests in transactions:
            stats.transactions += 1
            by_shard: dict[int, list] = {}
            for request in requests:
                by_shard.setdefault(shard_of(request.page), []).append(request)
            for shard in sorted(by_shard):
                per_shard[shard].append((kind, by_shard[shard]))
            if len(by_shard) > 1:
                stats.cross_shard_transactions += 1
                stats.cross_shard_accesses += len(requests)
                stats.extra_shard_touches += len(by_shard) - 1
        return SplitTransactions(per_shard=per_shard, stats=stats)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashShardRouter(ShardRouter):
    """Hash-sliced page space: ``hash(page) % num_shards``.

    For the integer pages the simulator uses this is effectively
    ``page % num_shards`` (CPython hashes small ints to themselves), and
    it is stable across processes — integer hashing does not depend on
    ``PYTHONHASHSEED`` — which the parallel replay relies on.
    """

    placement = "hash"

    def shard_of(self, page: int) -> int:
        return hash(page) % self.num_shards


class MappedShardRouter(ShardRouter):
    """Explicit page→shard assignment, hash fallback outside the map.

    ``assignment[page]`` is the owning shard for every page the
    placement optimizer saw; pages beyond the vector (a trace can touch
    pages the optimization trace never did) fall back to hash routing so
    the router stays total.
    """

    placement = "locality"

    def __init__(self, assignment: Sequence[int], num_shards: int) -> None:
        super().__init__(num_shards)
        assignment = list(assignment)
        for page, shard in enumerate(assignment):
            if not 0 <= shard < num_shards:
                raise ValueError(
                    f"assignment[{page}] = {shard} outside "
                    f"[0, {num_shards})"
                )
        self.assignment = assignment
        self._size = len(assignment)

    def shard_of(self, page: int) -> int:
        if 0 <= page < self._size:
            return self.assignment[page]
        return hash(page) % self.num_shards

    def __repr__(self) -> str:
        return (
            f"MappedShardRouter(num_shards={self.num_shards}, "
            f"mapped_pages={self._size})"
        )
