"""Deterministic page→shard routing: the cluster's single source of truth.

Every sharded structure in the repo — the in-process
:class:`~repro.cluster.partitioned.PartitionedBufferPoolManager`, the
process-parallel cluster engine, the placement optimizer — must agree on
which shard owns a page, or replays stop being comparable.  This module
owns that mapping.  Routers are pure, deterministic functions of their
construction arguments: the same router routes the same page to the same
shard in every process, which is what makes the parallel cluster replay
byte-identical to the serial one.

Two routers cover the design space the bench sweeps:

* :class:`HashShardRouter` — the classic ``hash(page) % num_shards``
  slice (what ``repro.bufferpool.partitioned`` always did; it now
  delegates here).  Placement-free, balance comes from the hash.
* :class:`MappedShardRouter` — an explicit page→shard assignment vector,
  produced by :mod:`repro.cluster.placement`'s optimizers; pages outside
  the vector fall back to hash routing so the router is total.

Routers are **epoch-stamped**: every remap — a shard failing over to a
replica node, a page range reassigned to another shard — produces a *new*
router with ``epoch + 1``, and :meth:`ShardRouter.route` refuses a caller
presenting a stale epoch with a loud :class:`StaleRouteError` rather than
silently routing to the old owner.  The epoch chain is what lets the
replicated cluster engine prove that every post-failover access went
through the remapped table (see docs/architecture.md "Replication &
failover").

Deliberately free of ``repro`` imports (including ``repro.errors`` —
:class:`StaleRouteError` lives here): the split helpers are duck-typed
over parallel ``pages``/``writes`` sequences and ``(kind, requests)``
transaction streams, so the low-level bufferpool shim can import this
module without dragging the whole cluster stack (or an import cycle)
with it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "ShardRouter",
    "HashShardRouter",
    "MappedShardRouter",
    "CrossShardStats",
    "SplitTransactions",
    "StaleRouteError",
]


class StaleRouteError(RuntimeError):
    """A caller routed with an epoch the router has since moved past.

    Raised by :meth:`ShardRouter.route` when ``epoch`` does not match the
    router's current epoch.  Silently honouring a stale epoch would send
    the access to a node that no longer owns the page (or is dead) —
    exactly the failure mode remap epochs exist to surface.
    """

    def __init__(self, presented: int, current: int) -> None:
        self.presented = presented
        self.current = current
        super().__init__(
            f"stale routing epoch {presented} (router is at epoch "
            f"{current}); re-fetch the router before routing"
        )


@dataclass
class CrossShardStats:
    """Transaction-affinity accounting produced by a transaction split.

    A transaction that touches pages owned by more than one shard is
    *cross-shard*: a real cluster pays coordination (two-phase commit,
    remote reads) for it, which the cluster engine models as a virtual
    time penalty per extra shard touched.
    """

    #: Transactions whose page set spans more than one shard.
    cross_shard_transactions: int = 0
    #: Page requests belonging to those transactions.
    cross_shard_accesses: int = 0
    #: Sum over cross-shard transactions of (shards touched - 1) — the
    #: unit the engine multiplies by its per-hop penalty.
    extra_shard_touches: int = 0
    #: Total transactions examined (the denominator for ratios).
    transactions: int = 0

    @property
    def cross_shard_ratio(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.cross_shard_transactions / self.transactions


@dataclass
class SplitTransactions:
    """Result of routing a transaction stream across shards."""

    #: Per-shard ``(kind, requests)`` streams, index = shard id.  A shard
    #: receives its slice of every transaction that touches it, in stream
    #: order, so per-shard replay preserves the original relative order.
    per_shard: list[list[tuple[object, list]]]
    stats: CrossShardStats = field(default_factory=CrossShardStats)


class ShardRouter:
    """Base router: a total, deterministic ``page -> shard`` function.

    Every router also tracks the cluster's *remap state*: an ``epoch``
    counter bumped by every topology change and a per-shard primary-node
    map (which replica-group member currently serves each shard; node 0
    until a failover promotes someone else).  Remaps never mutate a
    router in place — :meth:`with_failover` (and
    :meth:`MappedShardRouter.with_reassignment`) return a *new* router at
    ``epoch + 1``, so holders of the old object keep a consistent but
    provably stale view that :meth:`route` rejects.
    """

    #: Human-readable placement scheme name, recorded in bench epochs.
    placement = "base"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard: {num_shards}")
        self.num_shards = num_shards
        #: Remap generation: 0 at construction, +1 per topology change.
        self.epoch = 0
        self._primary_node = [0] * num_shards

    def shard_of(self, page: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------- remaps

    def route(self, page: int, epoch: int) -> int:
        """Epoch-checked routing: the shard owning ``page``, or a loud
        :class:`StaleRouteError` if ``epoch`` is not the router's current
        one (the caller is holding a pre-remap view of the cluster)."""
        if epoch != self.epoch:
            raise StaleRouteError(presented=epoch, current=self.epoch)
        return self.shard_of(page)

    def node_of(self, shard: int) -> int:
        """The replica-group node currently serving ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} outside [0, {self.num_shards})"
            )
        return self._primary_node[shard]

    def _spawn(self) -> "ShardRouter":
        """A fresh router with this router's routing function (subclass
        hook for the remap constructors)."""
        raise NotImplementedError

    def with_failover(self, shard: int, node: int) -> "ShardRouter":
        """A new router (``epoch + 1``) with ``shard`` served by ``node``.

        This is the failover remap: the shard's page ownership is
        unchanged — the same pages route to the same shard — but the
        serving node moved to a promoted replica.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} outside [0, {self.num_shards})"
            )
        if node < 0:
            raise ValueError(f"node cannot be negative: {node}")
        remapped = self._spawn()
        remapped.epoch = self.epoch + 1
        remapped._primary_node = list(self._primary_node)
        remapped._primary_node[shard] = node
        return remapped

    # ------------------------------------------------------------- splits

    def split(
        self, pages: Sequence[int], writes: Sequence[bool]
    ) -> list[tuple[list[int], list[bool]]]:
        """Partition a request stream into per-shard subtraces.

        Returns one ``(pages, writes)`` pair per shard (index = shard
        id).  Each subtrace preserves the relative order of its requests,
        so replaying shard ``i``'s subtrace is exactly what shard ``i``
        would have observed serving the interleaved stream.
        """
        if len(pages) != len(writes):
            raise ValueError(
                f"pages ({len(pages)}) and writes ({len(writes)}) differ "
                "in length"
            )
        shard_of = self.shard_of
        split: list[tuple[list[int], list[bool]]] = [
            ([], []) for _ in range(self.num_shards)
        ]
        for page, is_write in zip(pages, writes):
            sub_pages, sub_writes = split[shard_of(page)]
            sub_pages.append(page)
            sub_writes.append(is_write)
        return split

    def split_transactions(
        self, transactions: Iterable[tuple[object, list]]
    ) -> SplitTransactions:
        """Route a ``(kind, requests)`` stream, accounting affinity.

        Each transaction is sliced per shard (a shard sees only its own
        requests, as its transaction branch); a transaction whose
        requests span several shards is counted in
        :class:`CrossShardStats` so the engine can charge the
        coordination penalty.
        """
        shard_of = self.shard_of
        per_shard: list[list[tuple[object, list]]] = [
            [] for _ in range(self.num_shards)
        ]
        stats = CrossShardStats()
        for kind, requests in transactions:
            stats.transactions += 1
            by_shard: dict[int, list] = {}
            for request in requests:
                by_shard.setdefault(shard_of(request.page), []).append(request)
            for shard in sorted(by_shard):
                per_shard[shard].append((kind, by_shard[shard]))
            if len(by_shard) > 1:
                stats.cross_shard_transactions += 1
                stats.cross_shard_accesses += len(requests)
                stats.extra_shard_touches += len(by_shard) - 1
        return SplitTransactions(per_shard=per_shard, stats=stats)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashShardRouter(ShardRouter):
    """Hash-sliced page space: ``hash(page) % num_shards``.

    For the integer pages the simulator uses this is effectively
    ``page % num_shards`` (CPython hashes small ints to themselves), and
    it is stable across processes — integer hashing does not depend on
    ``PYTHONHASHSEED`` — which the parallel replay relies on.
    """

    placement = "hash"

    def shard_of(self, page: int) -> int:
        return hash(page) % self.num_shards

    def _spawn(self) -> "HashShardRouter":
        return HashShardRouter(self.num_shards)


class MappedShardRouter(ShardRouter):
    """Explicit page→shard assignment, hash fallback outside the map.

    ``assignment[page]`` is the owning shard for every page the
    placement optimizer saw; pages beyond the vector (a trace can touch
    pages the optimization trace never did) fall back to hash routing so
    the router stays total.
    """

    placement = "locality"

    def __init__(self, assignment: Sequence[int], num_shards: int) -> None:
        super().__init__(num_shards)
        assignment = list(assignment)
        for page, shard in enumerate(assignment):
            if not 0 <= shard < num_shards:
                raise ValueError(
                    f"assignment[{page}] = {shard} outside "
                    f"[0, {num_shards})"
                )
        self.assignment = assignment
        self._size = len(assignment)

    def shard_of(self, page: int) -> int:
        if 0 <= page < self._size:
            return self.assignment[page]
        return hash(page) % self.num_shards

    def _spawn(self) -> "MappedShardRouter":
        return MappedShardRouter(self.assignment, self.num_shards)

    def with_reassignment(
        self, page_range: range, shard: int
    ) -> "MappedShardRouter":
        """A new router (``epoch + 1``) with ``page_range`` owned by
        ``shard``.

        This is the "shard moved" remap: pages change owner, so every
        holder of the old router has a wrong page→shard view, not just a
        wrong node map — which is why the epoch bump (and
        :meth:`ShardRouter.route`'s stale-epoch check) is load-bearing
        here.  The assignment vector is extended as needed; pages newly
        covered by the extension keep their previous (hash-fallback)
        owner unless they are in ``page_range``, so the remap changes
        exactly the requested range.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} outside [0, {self.num_shards})"
            )
        if len(page_range) == 0:
            raise ValueError("cannot reassign an empty page range")
        if page_range[0] < 0:
            raise ValueError(
                f"page range starts below zero: {page_range[0]}"
            )
        size = max(self._size, page_range[-1] + 1)
        assignment = [self.shard_of(page) for page in range(size)]
        for page in page_range:
            assignment[page] = shard
        remapped = MappedShardRouter(assignment, self.num_shards)
        remapped.epoch = self.epoch + 1
        remapped._primary_node = list(self._primary_node)
        return remapped

    def __repr__(self) -> str:
        return (
            f"MappedShardRouter(num_shards={self.num_shards}, "
            f"mapped_pages={self._size})"
        )
