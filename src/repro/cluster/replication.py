"""Replica groups: synchronous WAL shipping and deterministic failover.

Under replication every shard of the cluster becomes a *replica group* —
one primary plus ``R`` replicas, each a complete stack (pool, device,
WAL on its own virtual clock) built exactly like an unreplicated shard
node.  The group's contract is the cluster-level version of PR 8's
durability invariant: **no committed update is ever lost, no
uncommitted update is ever silently kept**, however many nodes die
mid-replay.

The protocol, end to end:

1. **Serve.**  The primary replays the shard subtrace request by
   request (the executor's slow-path semantics: per-op CPU charge, WAL
   flush every ``commit_every`` ops).
2. **Ship.**  At each group-commit boundary the primary flushes its WAL
   and forwards the *newly durable* UPDATE records to every live
   replica.  A replica re-logs the records into its own WAL, flushes,
   and applies the deduplicated redo images to its device — the same
   redo discipline :func:`repro.bufferpool.recovery.recover` uses, so a
   replica's device is *definitionally* the committed durable prefix.
   The commit waits for the slowest replica apply (synchronous
   replication), charged to the primary's clock.
3. **Fail over.**  When a :class:`~repro.faults.nodes.NodeFaultPlan`
   fault kills the primary, the group promotes the most-caught-up live
   replica (max applied commit sequence; ties to the lowest node id).
   Promotion reuses PR 8's recovery machinery verbatim — a
   :class:`~repro.bufferpool.recovery.CrashImage` over the replica's own
   device and WAL through :func:`~repro.bufferpool.recovery.recover`,
   which runs ``verify_durable_records`` and drains the shipped-WAL
   tail.  The promotion's virtual cost is the shard's failover latency.
   In-flight accesses past the last commit boundary died with the old
   primary; the group **rewinds to the boundary and retries them** on
   the new primary — lost-and-retried, never silently dropped (they are
   the availability metric's numerator deficit).  A candidate whose own
   fault is already due dies *during promotion* and the group falls
   through to the next replica (the double-failure scenario).  When no
   live replica remains the group raises a structured
   :class:`~repro.errors.NodeFailure` carrying the partial metrics.
4. **Rejoin.**  A crashed node with a rejoin schedule comes back empty
   and catches up through an anti-entropy pass built on
   :func:`repro.bufferpool.repair.redo_index`: the current primary's
   durable records are re-logged into the rejoiner's fresh WAL and the
   latest redo image per page is applied to its device.

Every step is a pure function of the job (config + subtrace + fault
plan), so replicated cluster metrics remain byte-identical at any
worker count, and the whole history — crashes, promotions, rejoins,
retried accesses — replays identically from the same seed.

After the storm, each shard takes PR 8's **exact** audit: final crash,
:func:`~repro.bufferpool.recovery.recover`, then
:func:`~repro.bufferpool.recovery.audit_committed` with the full-trace
write-count ledger over the whole page space — zero lost updates *and*
zero phantom redo, per shard, cluster-wide.

This module is the sanctioned home of direct replica mutation: lint
rule R014 ("replica-write-path") flags any other code writing to a
replica stack without going through the WAL-apply path here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.recovery import (
    CrashImage,
    audit_committed,
    recover,
    simulate_crash,
)
from repro.bufferpool.repair import redo_index
from repro.bufferpool.stats import BufferStats
from repro.bufferpool.wal import WalRecordKind, WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.metrics import RunMetrics
from repro.errors import NodeFailure
from repro.faults.nodes import NodeFault
from repro.policies.registry import make_policy
from repro.storage.clock import VirtualClock
from repro.storage.device import DeviceStats, SimulatedSSD
from repro.storage.ftl import FtlCounters

__all__ = [
    "REPLICATION_COMMIT_EVERY",
    "FailoverEvent",
    "ShardReplicationReport",
    "ReplicationSummary",
    "ReplicatedShardResult",
    "build_replica_stack",
    "run_replicated_cluster",
]

#: Group-commit boundary (accesses between WAL flush+ship rounds) when
#: the config's ``options.commit_every_ops`` is 0 — replication is
#: meaningless without commit boundaries, so the engine supplies one.
REPLICATION_COMMIT_EVERY = 64


def build_replica_stack(config, shard: int) -> BufferPoolManager:
    """Build one replica-group member: a full stack *with* a WAL.

    Identical to :func:`repro.cluster.engine.build_shard_stack` except
    that every member carries a :class:`~repro.bufferpool.wal.WriteAheadLog`
    on its own clock — the WAL is what gets shipped (primary) and what
    promotion drains (replica), so a group member without one would be
    unable to take either role.
    """
    if not 0 <= shard < config.num_shards:
        raise ValueError(
            f"shard {shard} outside [0, {config.num_shards})"
        )
    clock = VirtualClock()
    device = SimulatedSSD(
        config.profile, num_pages=config.num_pages, clock=clock
    )
    device.format_pages(range(config.num_pages))
    capacity = config.shard_capacity(shard)
    policy = make_policy(config.policy, capacity)
    wal = WriteAheadLog(clock)
    if config.variant == "baseline":
        return BufferPoolManager(
            capacity, policy, device, wal=wal,
            table_backend=config.table_backend,
        )
    ace_config = ACEConfig.for_device(
        config.profile,
        prefetch_enabled=(config.variant == "ace+pf"),
        n_w=config.n_w,
        n_e=config.n_e,
    )
    return ACEBufferPoolManager(
        capacity, policy, device, wal=wal, config=ace_config,
        table_backend=config.table_backend,
    )


@dataclass(frozen=True)
class FailoverEvent:
    """One completed failover: who died, who took over, what it cost."""

    shard: int
    failed_node: int
    promoted_node: int
    #: Per-shard failover ordinal (1 for the shard's first failover).
    #: The cluster-level router epoch is assembled from these in shard
    #: order by :func:`run_replicated_cluster`.
    ordinal: int
    #: Group virtual time when the primary's crash was detected.
    virtual_time_us: float
    #: Virtual cost of the promotion (verify + shipped-tail drain) on
    #: the new primary's clock.
    failover_latency_us: float
    #: Uncommitted in-flight accesses that died with the old primary and
    #: were replayed on the new one.
    retried_accesses: int
    #: Replicas that died *during this promotion* before a live
    #: candidate was found (the double-failure count).
    candidates_lost: int = 0


@dataclass(frozen=True)
class ShardReplicationReport:
    """One shard group's complete failover history and audit verdict."""

    shard: int
    replication_factor: int
    commit_every: int
    failovers: tuple[FailoverEvent, ...]
    #: Total node deaths (primary crashes + replica deaths + candidates
    #: lost during promotion).
    node_crashes: int
    rejoins: int
    #: Serve attempts: every access of the subtrace plus every retry.
    attempted_accesses: int
    retried_accesses: int
    final_primary: int
    #: Redo records forwarded to replicas over the whole run (counted
    #: per receiving replica).
    shipped_records: int
    #: Exact PR 8 audit of the final primary after crash + recover.
    committed_updates: int
    lost_updates: int
    phantom_pages: int
    #: Durable page images of each promoted node right after promotion,
    #: as ``(committed_accesses, node, ((page, payload), ...))`` — only
    #: captured when the config asks (the divergence battery's probe).
    promotion_images: tuple[
        tuple[int, int, tuple[tuple[int, object], ...]], ...
    ] = ()

    @property
    def availability(self) -> float:
        """Fraction of serve attempts not wasted on a dead primary."""
        if self.attempted_accesses == 0:
            return 1.0
        return 1.0 - self.retried_accesses / self.attempted_accesses

    @property
    def audit_ok(self) -> bool:
        return self.lost_updates == 0 and self.phantom_pages == 0


@dataclass(frozen=True)
class ReplicationSummary:
    """Cluster-wide roll-up of the per-shard replication reports."""

    replication_factor: int
    per_shard: tuple[ShardReplicationReport, ...]
    #: Router epoch after applying every failover remap in shard order
    #: (0 = no failovers anywhere).
    final_epoch: int
    #: Node currently serving each shard (index = shard id).
    final_primaries: tuple[int, ...]

    @property
    def failovers(self) -> int:
        return sum(len(report.failovers) for report in self.per_shard)

    @property
    def node_crashes(self) -> int:
        return sum(report.node_crashes for report in self.per_shard)

    @property
    def rejoins(self) -> int:
        return sum(report.rejoins for report in self.per_shard)

    @property
    def retried_accesses(self) -> int:
        return sum(report.retried_accesses for report in self.per_shard)

    @property
    def attempted_accesses(self) -> int:
        return sum(report.attempted_accesses for report in self.per_shard)

    @property
    def availability(self) -> float:
        attempted = self.attempted_accesses
        if attempted == 0:
            return 1.0
        return 1.0 - self.retried_accesses / attempted

    @property
    def failover_latencies_us(self) -> tuple[float, ...]:
        return tuple(
            event.failover_latency_us
            for report in self.per_shard
            for event in report.failovers
        )

    @property
    def max_failover_latency_us(self) -> float:
        return max(self.failover_latencies_us, default=0.0)

    @property
    def lost_updates(self) -> int:
        return sum(report.lost_updates for report in self.per_shard)

    @property
    def phantom_pages(self) -> int:
        return sum(report.phantom_pages for report in self.per_shard)

    @property
    def ok(self) -> bool:
        return all(report.audit_ok for report in self.per_shard)


@dataclass(frozen=True)
class ReplicatedShardResult:
    """What one replicated shard replay produced (duck-compatible with
    :class:`repro.cluster.engine.ShardResult` for the metrics merge)."""

    shard: int
    ops: int
    metrics: RunMetrics
    replay_wall_s: float
    report: ShardReplicationReport


class _GroupNode:
    """One member of a replica group: a full stack plus group state."""

    def __init__(self, node_id: int, config, shard: int) -> None:
        self.node_id = node_id
        self.config = config
        self.shard = shard
        self.manager = build_replica_stack(config, shard)
        self.alive = True
        #: Last own-WAL LSN whose records have been shipped (primary
        #: bookkeeping; replicas receive, they do not ship).
        self.shipped_lsn = 0
        #: Group-commit sequence this node has applied — the
        #: "most-caught-up" promotion order key.
        self.applied_seq = 0
        #: Committed-access threshold at which this (dead) node rejoins.
        self.rejoin_at: int | None = None
        #: Buffer stats frozen at crash time (``simulate_crash`` bricks
        #: the manager but the group still owes its serving segment to
        #: the shard metrics).
        self.frozen_stats: BufferStats | None = None
        #: Primary clock mark when this node started serving.
        self.serve_start_us = 0.0

    @property
    def device(self) -> SimulatedSSD:
        return self.manager.device

    @property
    def wal(self) -> WriteAheadLog:
        wal = self.manager.wal
        assert wal is not None  # build_replica_stack always attaches one
        return wal

    @property
    def clock(self) -> VirtualClock:
        return self.device.clock

    def rebuild(self) -> None:
        """Fresh empty stack for a rejoining node (its memory, device
        contents, and log died with the crash; anti-entropy refills it)."""
        self.manager = build_replica_stack(self.config, self.shard)
        self.shipped_lsn = 0
        self.frozen_stats = None


def _sum_counter_fields(target, source) -> None:
    for spec in fields(type(target)):
        value = getattr(source, spec.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            setattr(target, spec.name,
                    getattr(target, spec.name) + value)


class _ReplicaGroup:
    """The in-worker failover state machine for one shard."""

    def __init__(self, config, shard: int,
                 faults: tuple[NodeFault, ...]) -> None:
        self.config = config
        self.shard = shard
        self.nodes = [
            _GroupNode(node_id, config, shard)
            for node_id in range(config.replication_factor + 1)
        ]
        self.primary = self.nodes[0]
        self.primary.serve_start_us = self.primary.clock.now_us
        self.pending = list(faults)
        self.seq = 0
        self.group_elapsed_us = 0.0
        self.crashes = 0
        self.rejoins = 0
        self.shipped_records = 0
        self.failovers: list[FailoverEvent] = []
        self.promotion_images: list[
            tuple[int, int, tuple[tuple[int, object], ...]]
        ] = []
        #: Nodes that served as primary, in serving order (the shard's
        #: metrics are the sum of their stacks' work).
        self.served = [self.primary]

    # ---------------------------------------------------------- fault plan

    def _fault_due(self, node: _GroupNode, progress: int,
                   time_us: float) -> NodeFault | None:
        for fault in self.pending:
            if fault.node != node.node_id:
                continue
            if (fault.crash_at_access is not None
                    and progress >= fault.crash_at_access):
                return fault
            if fault.crash_at_us is not None and time_us >= fault.crash_at_us:
                return fault
        return None

    def primary_fault_due(self, cursor: int) -> NodeFault | None:
        """The primary's next due fault before serving access ``cursor``."""
        return self._fault_due(
            self.primary, cursor, self.primary.clock.now_us
        )

    def _kill(self, node: _GroupNode, fault: NodeFault,
              committed: int) -> None:
        """Apply one fault: crash the stack, schedule any rejoin."""
        self.pending.remove(fault)
        node.frozen_stats = self.manager_stats(node)
        if node.manager.wal is not None and node.manager.table is not None:
            simulate_crash(node.manager)
        node.alive = False
        self.crashes += 1
        if fault.rejoin_after_accesses is not None:
            node.rejoin_at = committed + fault.rejoin_after_accesses

    @staticmethod
    def manager_stats(node: _GroupNode) -> BufferStats:
        return node.manager.stats.copy()

    # ------------------------------------------------------------ shipping

    def commit(self, committed_end: int) -> None:
        """Group commit: flush, ship the new durable records, apply on
        every live replica, then process replica deaths and rejoins due
        at this boundary."""
        primary = self.primary
        primary.wal.flush()
        records = [
            record
            for record in primary.wal.records_since(primary.shipped_lsn)
            if record.kind is WalRecordKind.UPDATE
            and record.page is not None
            and record.payload is not None
        ]
        primary.shipped_lsn = primary.wal.durable_lsn
        self.seq += 1
        primary.applied_seq = self.seq
        max_apply_us = 0.0
        for node in self.nodes:
            if node is primary or not node.alive:
                continue
            apply_start_us = node.clock.now_us
            if records:
                self._apply_shipment(node, records)
            node.applied_seq = self.seq
            max_apply_us = max(max_apply_us,
                               node.clock.now_us - apply_start_us)
            self.shipped_records += len(records)
        if max_apply_us:
            # Synchronous replication: the commit acknowledges only once
            # the slowest replica has applied, so the wait is primary
            # (= client-visible) virtual time.
            primary.clock.advance(max_apply_us)
        for node in self.nodes:
            if node is primary or not node.alive:
                continue
            fault = self._fault_due(node, committed_end,
                                    primary.clock.now_us)
            if fault is not None:
                self._kill(node, fault, committed_end)
        for node in self.nodes:
            if node.alive or node.rejoin_at is None:
                continue
            if committed_end >= node.rejoin_at:
                self._rejoin(node)

    @staticmethod
    def _apply_shipment(node: _GroupNode, records) -> None:
        """Replicate one commit batch onto ``node``: re-log every record
        (the replica's WAL is the promotion source of truth), flush, and
        apply the recovery-style deduplicated redo images."""
        for record in records:
            node.wal.log_update(record.page, record.payload)
        node.wal.flush()
        redo_batch: dict[int, object] = {}
        for record in records:
            redo_batch[record.page] = record.payload
        device = node.device
        for page, payload in redo_batch.items():
            device.write_page(page, payload=payload)

    def _rejoin(self, node: _GroupNode) -> None:
        """Anti-entropy catch-up: rebuild the node empty, re-log the
        primary's durable history, apply the latest image per page."""
        primary = self.primary
        node.rebuild()
        for record in primary.wal.records_since(0):
            if (record.kind is not WalRecordKind.UPDATE
                    or record.page is None or record.payload is None):
                continue
            node.wal.log_update(record.page, record.payload)
        node.wal.flush()
        device = node.device
        for page, payload in redo_index(primary.wal).items():
            device.write_page(page, payload=payload)
        node.alive = True
        node.rejoin_at = None
        node.applied_seq = self.seq
        self.rejoins += 1

    # ------------------------------------------------------------ failover

    def fail_primary(self, fault: NodeFault, committed: int,
                     retried: int) -> None:
        """The primary died: crash it, promote the most-caught-up live
        replica (skipping candidates whose own fault fires during the
        promotion), remap, and resume from the commit boundary.

        Raises :class:`~repro.errors.NodeFailure` when the group has no
        live replica left — the deterministic end of the shard.
        """
        primary = self.primary
        crash_time_us = primary.clock.now_us
        self.group_elapsed_us += crash_time_us - primary.serve_start_us
        failed_node = primary.node_id
        self._kill(primary, fault, committed)
        candidates = sorted(
            (node for node in self.nodes if node.alive),
            key=lambda node: (-node.applied_seq, node.node_id),
        )
        candidates_lost = 0
        for candidate in candidates:
            # A candidate's own crash point may lie inside the in-flight
            # window (commit boundaries are when replica faults normally
            # fire, and the window never reached one): such a candidate
            # dies *during its promotion* — the double-failure case.
            candidate_fault = self._fault_due(
                candidate, committed + retried, crash_time_us
            )
            if candidate_fault is not None:
                # Double failure: the chosen replica dies during its own
                # promotion; fall through to the next one.
                self._kill(candidate, candidate_fault, committed)
                candidates_lost += 1
                continue
            latency_us = self._promote(candidate)
            self.failovers.append(FailoverEvent(
                shard=self.shard,
                failed_node=failed_node,
                promoted_node=candidate.node_id,
                ordinal=len(self.failovers) + 1,
                virtual_time_us=crash_time_us,
                failover_latency_us=latency_us,
                retried_accesses=retried,
                candidates_lost=candidates_lost,
            ))
            if self.config.capture_promotion_images:
                self.promotion_images.append((
                    committed,
                    candidate.node_id,
                    self._durable_images(candidate),
                ))
            return
        raise NodeFailure(
            shard=self.shard,
            node=failed_node,
            virtual_time_us=crash_time_us,
            cause=(
                f"{fault.describe()} with no live replica to fail over "
                f"to ({candidates_lost} candidate(s) lost during "
                f"promotion)"
            ),
            partial_metrics=None,  # filled by the worker, which owns them
        )

    def _promote(self, candidate: _GroupNode) -> float:
        """Drain the candidate's shipped-WAL tail via the PR 8 recovery
        path and install it as primary; returns the virtual cost."""
        promote_start_us = candidate.clock.now_us
        image = CrashImage(
            device=candidate.device, wal=candidate.wal,
            lost_dirty_pages=(),
        )
        # verify_durable_records + redo of every durable shipped record:
        # the replica's device already holds the applied prefix, so the
        # drain is idempotent — which is exactly the point of reusing
        # the recovery path instead of trusting the apply loop.
        recover(image)
        latency_us = candidate.clock.now_us - promote_start_us
        self.group_elapsed_us += latency_us
        # All live members hold the identical committed prefix, so the
        # new primary's durable log is already fully shipped.
        candidate.shipped_lsn = candidate.wal.durable_lsn
        self.primary = candidate
        self.served.append(candidate)
        candidate.serve_start_us = candidate.clock.now_us
        return latency_us

    def _durable_images(
        self, node: _GroupNode
    ) -> tuple[tuple[int, object], ...]:
        device = node.device
        images = []
        for page in range(self.config.num_pages):
            payload = device.peek(page)
            if payload != 0:
                images.append((page, payload))
        return tuple(images)

    # ------------------------------------------------------------- metrics

    def close_final_segment(self) -> None:
        primary = self.primary
        self.group_elapsed_us += (
            primary.clock.now_us - primary.serve_start_us
        )
        primary.serve_start_us = primary.clock.now_us

    def shard_metrics(self, label: str, ops: int,
                      cpu_time_us: float) -> RunMetrics:
        """The shard's serving-path metrics: the summed work of every
        stack that served as primary.

        A promoted node's counters include the replication traffic its
        device absorbed while it was a replica — that I/O is part of how
        the serving stack got its state, exactly like recovery I/O.
        Replicas that never served stay out of the serving metrics; their
        shipping totals live in the :class:`ShardReplicationReport`.
        """
        buffer = BufferStats()
        device = DeviceStats()
        ftl: FtlCounters | None = FtlCounters()
        wal_pages = 0
        io_time_us = 0.0
        for node in self.served:
            stats = (
                node.frozen_stats if node.frozen_stats is not None
                else node.manager.stats
            )
            _sum_counter_fields(buffer, stats)
            node_device = node.device.stats
            _sum_counter_fields(device, node_device)
            device.largest_write_batch = max(
                device.largest_write_batch, node_device.largest_write_batch
            )
            device.largest_read_batch = max(
                device.largest_read_batch, node_device.largest_read_batch
            )
            for size, count in sorted(
                node_device.write_batch_size_histogram.items()
            ):
                device.write_batch_size_histogram[size] = (
                    device.write_batch_size_histogram.get(size, 0) + count
                )
            if ftl is not None:
                if node.device.ftl is None:
                    ftl = None
                else:
                    _sum_counter_fields(ftl, node.device.ftl.counters)
            wal_pages += node.wal.pages_written
            io_time_us += (
                node_device.read_time_us + node_device.write_time_us
            )
        return RunMetrics(
            label=label,
            elapsed_us=self.group_elapsed_us,
            ops=ops,
            buffer=buffer,
            device=device,
            ftl=ftl,
            wal_pages_written=wal_pages,
            io_time_us=io_time_us,
            cpu_time_us=cpu_time_us,
        )


def _replay_replicated_shard(job) -> ReplicatedShardResult:
    """Worker-side entry point for one replica group's failover replay.

    Pure function of the job, like the plain shard worker: stacks,
    faults, and the whole failover history derive from the job's config
    and subtrace, nothing is read from or stored in process state.
    (Lint rule R013 holds worker entry points to that contract.)
    """
    config = job.config
    assert job.pages is not None and job.writes is not None
    pages, writes = job.pages, job.writes
    total = len(pages)
    commit_every = (
        config.options.commit_every_ops or REPLICATION_COMMIT_EVERY
    )
    cpu_per_op = config.options.cpu_us_per_op
    plan = config.node_faults
    faults = plan.faults_for(job.shard) if plan is not None else ()
    label = f"{config.label}/shard{job.shard}"

    start = time.perf_counter()  # lint: allow-wall-clock, allow-nondeterminism
    group = _ReplicaGroup(config, job.shard, faults)
    committed = 0
    executed = 0
    retried_total = 0
    while committed < total:
        boundary = min(committed + commit_every, total)
        cursor = committed
        due: NodeFault | None = None
        access = group.primary.manager.access
        advance = group.primary.clock.advance
        while cursor < boundary:
            due = group.primary_fault_due(cursor)
            if due is not None:
                break
            if cpu_per_op:
                advance(cpu_per_op)
            access(pages[cursor], writes[cursor])
            executed += 1
            cursor += 1
        if due is not None:
            retried = cursor - committed
            retried_total += retried
            try:
                group.fail_primary(due, committed=committed, retried=retried)
            except NodeFailure as failure:
                # fail_primary already closed the dead primary's serving
                # segment, so the partial metrics are boundary-accurate.
                partial = group.shard_metrics(
                    label, ops=committed,
                    cpu_time_us=cpu_per_op * executed,
                )
                raise NodeFailure(
                    shard=failure.shard,
                    node=failure.node,
                    virtual_time_us=failure.virtual_time_us,
                    cause=failure.cause,
                    partial_metrics=partial,
                ) from None
            continue  # retry the uncommitted tail on the new primary
        group.commit(boundary)
        committed = boundary
    group.close_final_segment()

    # The storm is over: take the exact PR 8 audit on the final primary.
    # Ledger = full-subtrace write counts (everything is committed by the
    # final boundary flush); exact mode over the whole page space proves
    # zero lost updates *and* zero phantom redo.
    ledger: dict[int, int] = {}
    for page, is_write in zip(pages, writes):
        if is_write:
            ledger[page] = ledger.get(page, 0) + 1
    final_primary = group.primary
    metrics = group.shard_metrics(
        label, ops=total, cpu_time_us=cpu_per_op * executed
    )
    image = simulate_crash(final_primary.manager)
    recover(image)
    audit = audit_committed(
        image, None, ledger, exact=True, pages=range(config.num_pages)
    )
    wall_s = time.perf_counter() - start  # lint: allow-wall-clock, allow-nondeterminism

    report = ShardReplicationReport(
        shard=job.shard,
        replication_factor=config.replication_factor,
        commit_every=commit_every,
        failovers=tuple(group.failovers),
        node_crashes=group.crashes,
        rejoins=group.rejoins,
        attempted_accesses=total + retried_total,
        retried_accesses=retried_total,
        final_primary=final_primary.node_id,
        shipped_records=group.shipped_records,
        committed_updates=audit.committed_updates,
        lost_updates=audit.lost_updates,
        phantom_pages=audit.phantom_pages,
        promotion_images=tuple(group.promotion_images),
    )
    return ReplicatedShardResult(
        shard=job.shard,
        ops=total,
        metrics=metrics,
        replay_wall_s=wall_s,
        report=report,
    )


def run_replicated_cluster(config, trace, workers=None, label=None):
    """Replicated counterpart of :func:`repro.cluster.engine.run_cluster`.

    Splits the trace with the epoch-0 router, replays every shard's
    replica group (reusing the engine's job fan-out and retry
    machinery), merges metrics exactly as the unreplicated path does,
    then replays the failover history through the epoch-stamped router
    remaps — the returned :class:`ReplicationSummary`'s ``final_epoch``
    and ``final_primaries`` are read off the remapped router, so the
    router API and the replication engine cannot silently disagree
    about who serves what.
    """
    from repro.cluster.engine import (
        ShardJob,
        _assemble,
        _execute_jobs,
        build_router,
    )
    from repro.cluster.router import CrossShardStats

    router = build_router(config)
    split = router.split(trace.pages, trace.writes)
    jobs = [
        ShardJob(
            shard=shard,
            config=config,
            pages=tuple(sub_pages),
            writes=tuple(sub_writes),
            trace_name=trace.name,
        )
        for shard, (sub_pages, sub_writes) in enumerate(split)
    ]
    results = _execute_jobs(jobs, workers, worker=_replay_replicated_shard)
    metrics = _assemble(config, results, CrossShardStats(), label, trace.name)
    ordered = sorted(results, key=lambda result: result.shard)
    for result in ordered:
        for event in result.report.failovers:
            router = router.with_failover(event.shard, event.promoted_node)
    metrics.replication = ReplicationSummary(
        replication_factor=config.replication_factor,
        per_shard=tuple(result.report for result in ordered),
        final_epoch=router.epoch,
        final_primaries=tuple(
            router.node_of(shard) for shard in range(config.num_shards)
        ),
    )
    return metrics
