"""Shard placement as graph partitioning: minimize cut edges under balance.

Hash routing balances load but is blind to locality: two pages touched by
every transaction of one warehouse land on different shards half the
time, and each such transaction becomes a cross-shard coordination.  The
alternative — the districting formulation — is to build the *co-access
graph* of the workload (nodes = pages weighted by access count, edges
weighted by how often two pages are touched together) and partition it
into ``num_shards`` districts minimizing the total weight of cut edges
subject to a balance constraint, exactly the
partition-a-graph-to-minimize-cut-edges problem the Hess-model
districting literature solves.  Solving it exactly is NP-hard; this
module ships the deterministic greedy + local-refinement heuristic the
bench sweeps (seed by affinity in heavy-first order, then first-choice
hill-climb on move gains), which is enough to strictly beat hash
placement on any workload with transaction locality.

Everything here is pure and deterministic: dict/list structures only,
iteration in sorted or insertion order, no RNG, no ``repro`` imports (the
graph builders are duck-typed over ``pages``/``writes`` sequences and
``(kind, requests)`` transaction streams).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "CoAccessGraph",
    "coaccess_from_trace",
    "coaccess_from_transactions",
    "hash_placement",
    "locality_placement",
    "cut_weight",
    "imbalance",
    "placement_report",
]

#: Transactions touching more distinct pages than this link consecutive
#: pages instead of all pairs, keeping graph construction linear in the
#: stream (a 200-page scan would otherwise contribute ~20k edges).
_ALL_PAIRS_LIMIT = 24


@dataclass
class CoAccessGraph:
    """Weighted page co-access graph.

    ``weights[p]`` is the access count of page ``p`` (the node's load);
    ``adjacency[p][q]`` the number of times ``p`` and ``q`` were
    co-accessed (symmetric).  Pages never co-accessed with anything still
    appear in ``weights`` so the partitioner places them.
    """

    num_pages: int
    weights: dict[int, int] = field(default_factory=dict)
    adjacency: dict[int, dict[int, int]] = field(default_factory=dict)

    def add_access(self, page: int, count: int = 1) -> None:
        self.weights[page] = self.weights.get(page, 0) + count

    def add_edge(self, a: int, b: int, weight: int = 1) -> None:
        if a == b:
            return
        self.adjacency.setdefault(a, {})[b] = (
            self.adjacency.get(a, {}).get(b, 0) + weight
        )
        self.adjacency.setdefault(b, {})[a] = (
            self.adjacency.get(b, {}).get(a, 0) + weight
        )

    @property
    def total_edge_weight(self) -> int:
        return sum(
            weight
            for neighbours in self.adjacency.values()
            for weight in neighbours.values()
        ) // 2

    @property
    def total_node_weight(self) -> int:
        return sum(self.weights.values())


def _link_group(graph: CoAccessGraph, group: list[int]) -> None:
    """Add co-access edges for one affinity group (transaction/window)."""
    distinct = sorted(set(group))
    if len(distinct) <= 1:
        return
    if len(distinct) <= _ALL_PAIRS_LIMIT:
        for i, a in enumerate(distinct):
            for b in distinct[i + 1:]:
                graph.add_edge(a, b)
    else:
        for a, b in zip(distinct, distinct[1:]):
            graph.add_edge(a, b)


def coaccess_from_trace(
    pages: Sequence[int],
    num_pages: int,
    client_ids: Sequence[int] | None = None,
    window: int = 8,
) -> CoAccessGraph:
    """Build the co-access graph of a page-request stream.

    Affinity is *temporal*: two pages accessed within ``window`` requests
    of each other are co-accessed.  When ``client_ids`` attributes
    requests to client sessions, the window runs per client — requests
    interleaved from unrelated clients carry no affinity, which is the
    whole point of recording the side-channel.
    """
    if window < 2:
        raise ValueError(f"window must cover at least 2 requests: {window}")
    graph = CoAccessGraph(num_pages=num_pages)
    recent: dict[int, list[int]] = {}
    for index, page in enumerate(pages):
        graph.add_access(page)
        client = client_ids[index] if client_ids is not None else 0
        tail = recent.setdefault(client, [])
        for other in tail:
            graph.add_edge(page, other)
        tail.append(page)
        if len(tail) >= window:
            del tail[0]
    return graph


def coaccess_from_transactions(
    transactions: Iterable[tuple[object, list]],
    num_pages: int,
) -> CoAccessGraph:
    """Build the co-access graph of a ``(kind, requests)`` stream.

    Affinity is *transactional*: every pair of distinct pages inside one
    transaction is co-accessed (consecutive pages only for very large
    transactions; see :data:`_ALL_PAIRS_LIMIT`).  This is the graph whose
    cut edges are exactly the cross-shard transaction hazards the cluster
    engine charges for.
    """
    graph = CoAccessGraph(num_pages=num_pages)
    for _, requests in transactions:
        group: list[int] = []
        for request in requests:
            graph.add_access(request.page)
            group.append(request.page)
        _link_group(graph, group)
    return graph


# ---------------------------------------------------------------- placement


def hash_placement(num_pages: int, num_shards: int) -> list[int]:
    """The assignment vector hash routing induces (the baseline)."""
    if num_shards < 1:
        raise ValueError(f"need at least one shard: {num_shards}")
    return [hash(page) % num_shards for page in range(num_pages)]


def locality_placement(
    graph: CoAccessGraph,
    num_shards: int,
    balance_slack: float = 0.10,
    refinement_passes: int = 4,
) -> list[int]:
    """Greedy cut-edge-minimizing assignment under a balance constraint.

    The Hess-style formulation: assign each page (node) to one of
    ``num_shards`` districts so that no district's node weight exceeds
    ``(1 + balance_slack)`` times the even share, minimizing the weight
    of edges between districts.  The heuristic:

    1. **Greedy seeding** — place pages in descending weight order (the
       heavy hitters anchor districts); each page goes to the shard it
       has the strongest affinity to (edge weight into already-placed
       neighbours) among shards with capacity left, falling back to the
       lightest shard when it has no placed neighbours.
    2. **First-choice refinement** — repeatedly sweep all pages in page
       order, moving any page whose best alternative shard strictly
       reduces the cut without breaking balance; stop after
       ``refinement_passes`` sweeps or the first sweep with no moves.

    Two seedings are refined and the lower-cut result wins: the greedy
    affinity seeding above, and the hash assignment itself.  Refinement
    only ever removes cut weight, so whenever the slack covers hash
    placement's own imbalance the result is never worse than hash — and
    strictly better as soon as a single improving move exists.

    Pages the graph never saw get hash placement (they carry no load and
    no edges, so any assignment is optimal for them) — the returned
    vector is total over ``[0, num_pages)``.  Fully deterministic: ties
    break on lowest shard load, then lowest shard id, and the greedy
    candidate wins score ties against the hash-seeded one.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard: {num_shards}")
    if balance_slack < 0.0:
        raise ValueError(f"balance slack cannot be negative: {balance_slack}")
    assignment = hash_placement(graph.num_pages, num_shards)
    if num_shards == 1 or not graph.weights:
        return assignment

    total = graph.total_node_weight
    # Per-shard load ceiling: the even share stretched by the slack.  The
    # max() keeps the bound feasible when one page outweighs the share.
    heaviest = max(graph.weights.values())
    bound = max(heaviest, (total * (1.0 + balance_slack)) / num_shards)

    def affinity(placed: dict[int, int], page: int) -> list[int]:
        scores = [0] * num_shards
        for neighbour, weight in graph.adjacency.get(page, {}).items():
            shard = placed.get(neighbour)
            if shard is not None:
                scores[shard] += weight
        return scores

    def refine(placed: dict[int, int], loads: list[int]) -> None:
        for _ in range(max(0, refinement_passes)):
            moved = 0
            for page in sorted(placed):
                weight = graph.weights[page]
                current = placed[page]
                scores = affinity(placed, page)
                # Gain of moving = affinity gained at the target minus
                # affinity lost at the source (the page's own edges are
                # the only terms that change).
                best_target = current
                best_gain = 0
                for shard in range(num_shards):
                    if shard == current:
                        continue
                    if loads[shard] + weight > bound:
                        continue
                    gain = scores[shard] - scores[current]
                    if gain > best_gain:
                        best_gain = gain
                        best_target = shard
                if best_target != current:
                    placed[page] = best_target
                    loads[current] -= weight
                    loads[best_target] += weight
                    moved += 1
            if not moved:
                break

    def placed_cut(placed: dict[int, int]) -> int:
        cut = 0
        for page, neighbours in graph.adjacency.items():
            shard = placed[page]
            for neighbour, weight in neighbours.items():
                if neighbour > page and placed[neighbour] != shard:
                    cut += weight
        return cut

    # Candidate 1: greedy affinity seeding, heavy-first, page id as the
    # deterministic tie-break.
    greedy_loads = [0] * num_shards
    greedy: dict[int, int] = {}
    order = sorted(graph.weights, key=lambda p: (-graph.weights[p], p))
    for page in order:
        weight = graph.weights[page]
        scores = affinity(greedy, page)
        # Best affinity among shards with room; ties to the lightest
        # shard so seeding cannot collapse onto one district.
        best = min(
            range(num_shards),
            key=lambda s: (
                greedy_loads[s] + weight > bound,  # feasible shards first
                -scores[s],
                greedy_loads[s],
                s,
            ),
        )
        greedy[page] = best
        greedy_loads[best] += weight
    refine(greedy, greedy_loads)

    # Candidate 2: refine hash placement in place.  Only eligible when
    # it lands within the balance bound (it starts wherever hash put it;
    # with a slack covering hash's imbalance it always qualifies).
    hashed = {page: assignment[page] for page in graph.weights}
    hashed_loads = [0] * num_shards
    for page, shard in hashed.items():
        hashed_loads[shard] += graph.weights[page]
    refine(hashed, hashed_loads)

    winner = greedy
    if max(hashed_loads) <= bound and placed_cut(hashed) < placed_cut(greedy):
        winner = hashed
    for page, shard in winner.items():
        assignment[page] = shard
    return assignment


# ----------------------------------------------------------------- scoring


def cut_weight(graph: CoAccessGraph, assignment: Sequence[int]) -> int:
    """Total weight of edges whose endpoints live on different shards."""
    total = 0
    for page, neighbours in graph.adjacency.items():
        shard = assignment[page]
        for neighbour, weight in neighbours.items():
            if neighbour > page and assignment[neighbour] != shard:
                total += weight
    return total


def imbalance(
    graph: CoAccessGraph, assignment: Sequence[int], num_shards: int
) -> float:
    """Max shard load over the even share (1.0 = perfectly balanced)."""
    if num_shards < 1:
        raise ValueError(f"need at least one shard: {num_shards}")
    loads = [0] * num_shards
    for page, weight in graph.weights.items():
        loads[assignment[page]] += weight
    total = sum(loads)
    if total == 0:
        return 1.0
    return max(loads) / (total / num_shards)


def placement_report(
    graph: CoAccessGraph, assignment: Sequence[int], num_shards: int
) -> dict[str, float]:
    """The (cut, imbalance) coordinates of one placement — a Pareto point."""
    cut = cut_weight(graph, assignment)
    total = graph.total_edge_weight
    return {
        "cut_edges": float(cut),
        "cut_fraction": (cut / total) if total else 0.0,
        "imbalance": imbalance(graph, assignment, num_shards),
    }
