"""Partitioned bufferpool: pages sharded across independent sub-pools.

Production buffer managers partition their mapping structures (PostgreSQL
partitions the buffer table's lock, many engines shard the whole pool) so
that concurrent backends do not serialise on one latch.  The simulator has
no real concurrency, but partitioning still changes *behaviour*: each
partition runs its own replacement policy over a hash-slice of the page
space, so a hot page in one partition cannot evict a warm page in another.
The cost is imbalance — a skewed workload can overload one partition while
others idle frames.

:class:`PartitionedBufferPoolManager` composes N inner managers (baseline
or ACE — any factory) over one shared device, exposing the same client
API, and aggregates their statistics.  `bench`-style comparisons of
monolithic vs partitioned pools quantify the imbalance cost.

This is the *in-process* half of the sharding story; the page→shard
mapping itself is owned by :class:`~repro.cluster.router.HashShardRouter`
so the process-parallel cluster engine, the placement optimizer and this
class can never disagree about which shard a page belongs to.  (The class
historically lived in ``repro.bufferpool.partitioned``, which remains as
a re-export shim.)
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.stats import BufferStats
from repro.cluster.router import HashShardRouter
from repro.storage.device import SimulatedSSD

#: Counter names aggregated across partitions (BufferStats is slotted, so
#: ``vars()`` is unavailable).
_STAT_FIELDS = tuple(field.name for field in dataclasses.fields(BufferStats))

__all__ = ["PartitionedBufferPoolManager"]

ManagerFactory = Callable[[int, SimulatedSSD], BufferPoolManager]


class PartitionedBufferPoolManager:
    """N independent sub-pools, pages routed by hash.

    Parameters
    ----------
    capacity:
        Total frames, split evenly across partitions (remainder to the
        first partitions).
    num_partitions:
        Number of sub-pools.
    device:
        Shared storage device (all partitions advance the same clock).
    manager_factory:
        Builds one sub-pool given (capacity, device) — e.g. a lambda
        returning a baseline or ACE manager with a fresh policy instance.
    """

    variant = "partitioned"

    def __init__(
        self,
        capacity: int,
        num_partitions: int,
        device: SimulatedSSD,
        manager_factory: ManagerFactory,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if capacity < num_partitions:
            raise ValueError(
                f"capacity {capacity} cannot fill {num_partitions} partitions"
            )
        self.capacity = capacity
        self.device = device
        #: The executor inspects this; per-partition WALs are not modelled
        #: (a real system shares one log across partitions anyway).
        self.wal = None
        #: Single source of truth for page→partition routing, shared with
        #: the cluster engine.
        self.router = HashShardRouter(num_partitions)
        base = capacity // num_partitions
        remainder = capacity % num_partitions
        self.partitions: list[BufferPoolManager] = []
        for index in range(num_partitions):
            partition_capacity = base + (1 if index < remainder else 0)
            self.partitions.append(manager_factory(partition_capacity, device))

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_of(self, page: int) -> BufferPoolManager:
        """The sub-pool responsible for ``page`` (router-owned mapping)."""
        return self.partitions[self.router.shard_of(page)]

    # --------------------------------------------------------- client API

    def read_page(self, page: int) -> object | None:
        return self.partition_of(page).read_page(page)

    def write_page(self, page: int, payload: object | None = None) -> object:
        return self.partition_of(page).write_page(page, payload)

    def access(self, page: int, is_write: bool) -> object | None:
        return self.partition_of(page).access(page, is_write)

    def contains(self, page: int) -> bool:
        return self.partition_of(page).contains(page)

    def flush_all(self) -> int:
        return sum(partition.flush_all() for partition in self.partitions)

    def dirty_pages(self) -> list[int]:
        pages: list[int] = []
        for partition in self.partitions:
            pages.extend(partition.dirty_pages())
        return pages

    def resident_pages(self) -> list[int]:
        pages: list[int] = []
        for partition in self.partitions:
            pages.extend(partition.resident_pages())
        return pages

    # ------------------------------------------------------------- stats

    @property
    def stats(self) -> BufferStats:
        """Aggregated counters across all partitions."""
        total = BufferStats()
        for partition in self.partitions:
            stats = partition.stats
            for field in _STAT_FIELDS:
                setattr(total, field, getattr(total, field) + getattr(stats, field))
        return total

    def occupancy(self) -> list[int]:
        """Used frames per partition (imbalance diagnostics)."""
        return [partition.pool.used_count for partition in self.partitions]

    def __repr__(self) -> str:
        return (
            f"PartitionedBufferPoolManager(partitions={self.num_partitions}, "
            f"capacity={self.capacity})"
        )
