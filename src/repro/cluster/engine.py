"""The cluster engine: N shard nodes replayed in parallel, merged exactly.

A *cluster run* models N independent shard nodes, each a complete stack —
its own :class:`~repro.storage.device.SimulatedSSD` on a private virtual
clock, its own replacement policy instance, its own (baseline or ACE)
:class:`~repro.bufferpool.manager.BufferPoolManager` riding the array
translation layer and the executor's inlined turbo replay.  A
deterministic :class:`~repro.cluster.router.ShardRouter` pre-partitions
the workload into per-shard subtraces; each subtrace is replayed to
completion on its shard (in a worker process when ``workers > 1``, in
process otherwise); the per-shard :class:`~repro.engine.metrics.RunMetrics`
are then merged in shard order.

Because every shard run is a pure function of its
:class:`ShardJob` — fresh device, fresh clock, no shared state — the
merged metrics are **byte-identical at any worker count**: the parallel
fan-out only changes *where* each pure function is evaluated.  The same
pickling discipline and ``BrokenProcessPool`` handling as
:mod:`repro.bench.parallel` applies (fresh pool per retry round, bounded
attempts), except that a shard that still fails is a hard
:class:`~repro.errors.ClusterReplayError` — a cluster cannot drop a
shard and still report merged metrics.

Merge semantics (see docs/architecture.md "Sharded cluster"):

* counters (buffer, device, FTL, WAL) are summed in shard order —
  integer sums commute, float sums are fixed to shard order;
* ``elapsed_us`` is the **makespan**: the max over shard virtual clocks,
  plus the cross-shard coordination penalty — shards are independent
  nodes serving in parallel, so cluster virtual time is bounded by the
  slowest shard;
* ``serial_elapsed_us`` preserves the sum (what a single node doing all
  the work would have taken) — the 1-shard cluster and the differential
  tests key off it;
* cross-shard transactions (a split transaction's coordination) charge
  ``cross_shard_penalty_us`` per extra shard touched, on top of the
  makespan.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.stats import BufferStats
from repro.cluster.router import (
    CrossShardStats,
    HashShardRouter,
    MappedShardRouter,
    ShardRouter,
)
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import ExecutionOptions, run_trace, run_transactions
from repro.engine.metrics import RunMetrics
from repro.errors import ClusterReplayError, NodeFailure
from repro.faults.nodes import NodeFaultPlan
from repro.policies.registry import make_policy
from repro.storage.clock import VirtualClock
from repro.storage.device import DeviceStats, SimulatedSSD
from repro.storage.ftl import FtlCounters
from repro.storage.profiles import DeviceProfile
from repro.workloads.trace import Trace

__all__ = [
    "ClusterConfig",
    "ClusterMetrics",
    "ShardJob",
    "ShardResult",
    "MAX_SHARD_ATTEMPTS",
    "build_router",
    "build_shard_stack",
    "merge_shard_metrics",
    "run_cluster",
    "run_cluster_transactions",
]

#: Total tries per shard job, mirroring ``repro.bench.parallel``: a
#: crashed worker poisons its pool, so retries run on a fresh one.
MAX_SHARD_ATTEMPTS = 3

#: Variants a shard stack can be built as (the bench's vocabulary).
_VARIANTS = ("baseline", "ace", "ace+pf")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build and drive an N-shard cluster.

    Parameters
    ----------
    profile:
        Device profile for every shard node's SSD.
    policy, variant:
        Replacement policy registry name and bufferpool variant
        (``baseline``/``ace``/``ace+pf``) for every shard.
    num_pages:
        Global page space.  Every shard's device covers the whole space
        (pages keep their global ids; a shard simply never sees pages it
        does not own), so the array translation backend's address-space
        auto-selection behaves exactly as in a single-pool run.
    num_shards:
        Shard node count.
    pool_fraction:
        *Cluster-total* buffer capacity as a fraction of the page space,
        split across shards like the partitioned pool splits frames
        (remainder to the first shards).
    placement:
        ``"hash"`` (stateless hash routing) or ``"locality"`` (requires
        ``assignment``).
    assignment:
        Page→shard vector from :mod:`repro.cluster.placement`, required
        for (and only meaningful with) ``placement="locality"``.
    cross_shard_penalty_us:
        Virtual-time coordination cost charged per *extra* shard a
        transaction touches (two-phase-commit style; 0 disables).
    n_w, n_e, table_backend, options:
        As in :class:`~repro.bench.runner.StackConfig`.
    replication_factor:
        Replicas per shard (``R``).  0 keeps the unreplicated fast path
        — the run is byte-identical to a pre-replication cluster.  With
        ``R > 0`` every shard becomes a 1-primary + R-replica group with
        synchronous WAL shipping (:mod:`repro.cluster.replication`).
    node_faults:
        Deterministic node-crash schedule
        (:class:`~repro.faults.nodes.NodeFaultPlan`); a non-null plan
        routes the run through the replication engine even at ``R = 0``
        (where any primary crash is a structured
        :class:`~repro.errors.NodeFailure`).
    capture_promotion_images:
        Record each promoted replica's durable page images at promotion
        time (the divergence battery's probe; off for bench runs — it
        scans the page space per failover).
    """

    profile: DeviceProfile
    policy: str
    variant: str
    num_pages: int
    num_shards: int
    pool_fraction: float = 0.06
    placement: str = "hash"
    assignment: tuple[int, ...] | None = None
    cross_shard_penalty_us: float = 0.0
    n_w: int | None = None
    n_e: int | None = None
    table_backend: str | None = None
    options: ExecutionOptions = field(default_factory=ExecutionOptions)
    replication_factor: int = 0
    node_faults: NodeFaultPlan | None = None
    capture_promotion_images: bool = False

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {self.variant!r}"
            )
        if self.num_shards < 1:
            raise ValueError(f"need at least one shard: {self.num_shards}")
        if self.num_pages < 8:
            raise ValueError("page space must have at least 8 pages")
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ValueError(
                f"pool fraction must be in (0, 1]: {self.pool_fraction}"
            )
        if self.placement not in ("hash", "locality"):
            raise ValueError(
                f"placement must be 'hash' or 'locality': {self.placement!r}"
            )
        if self.placement == "locality" and self.assignment is None:
            raise ValueError("locality placement needs an assignment vector")
        if self.cross_shard_penalty_us < 0:
            raise ValueError("cross-shard penalty cannot be negative")
        if self.replication_factor < 0:
            raise ValueError(
                f"replication factor cannot be negative: "
                f"{self.replication_factor}"
            )
        if self.node_faults is not None:
            if not isinstance(self.node_faults, NodeFaultPlan):
                raise ValueError(
                    f"node_faults must be a NodeFaultPlan: "
                    f"{self.node_faults!r}"
                )
            if self.node_faults.max_shard() >= self.num_shards:
                raise ValueError(
                    f"node fault targets shard "
                    f"{self.node_faults.max_shard()} but the cluster has "
                    f"{self.num_shards} shards"
                )
            if self.node_faults.max_node() > self.replication_factor:
                raise ValueError(
                    f"node fault targets node "
                    f"{self.node_faults.max_node()} but replica groups "
                    f"have nodes 0..{self.replication_factor}"
                )

    @property
    def total_capacity(self) -> int:
        """Cluster-wide frame budget (split across shards)."""
        return max(4 * self.num_shards, int(self.num_pages * self.pool_fraction))

    def shard_capacity(self, shard: int) -> int:
        """Frames of one shard (even split, remainder to the first)."""
        base, remainder = divmod(self.total_capacity, self.num_shards)
        return base + (1 if shard < remainder else 0)

    @property
    def replicated(self) -> bool:
        """Whether this run goes through the replication engine."""
        return self.replication_factor > 0 or (
            self.node_faults is not None and not self.node_faults.is_null
        )

    @property
    def label(self) -> str:
        base = (
            f"{self.policy}/{self.variant}/s{self.num_shards}/{self.placement}"
        )
        if self.replication_factor:
            return f"{base}/r{self.replication_factor}"
        return base


def build_router(config: ClusterConfig) -> ShardRouter:
    """The router a config implies (the cluster's page→shard contract)."""
    if config.placement == "locality":
        assert config.assignment is not None  # __post_init__ guarantees
        return MappedShardRouter(config.assignment, config.num_shards)
    return HashShardRouter(config.num_shards)


def build_shard_stack(config: ClusterConfig, shard: int) -> BufferPoolManager:
    """Build shard node ``shard``: fresh device, clock, policy, manager."""
    if not 0 <= shard < config.num_shards:
        raise ValueError(
            f"shard {shard} outside [0, {config.num_shards})"
        )
    clock = VirtualClock()
    device = SimulatedSSD(
        config.profile, num_pages=config.num_pages, clock=clock
    )
    device.format_pages(range(config.num_pages))
    capacity = config.shard_capacity(shard)
    policy = make_policy(config.policy, capacity)
    if config.variant == "baseline":
        return BufferPoolManager(
            capacity, policy, device, table_backend=config.table_backend
        )
    ace_config = ACEConfig.for_device(
        config.profile,
        prefetch_enabled=(config.variant == "ace+pf"),
        n_w=config.n_w,
        n_e=config.n_e,
    )
    return ACEBufferPoolManager(
        capacity, policy, device, config=ace_config,
        table_backend=config.table_backend,
    )


@dataclass(frozen=True)
class ShardJob:
    """One shard's complete replay recipe — pure and picklable.

    Exactly one of ``pages``/``writes`` (a subtrace) and ``transactions``
    (a per-shard transaction stream) is set.  The job carries everything
    the worker needs; nothing is read from process state, which is what
    makes the result independent of *where* the job runs.
    """

    shard: int
    config: ClusterConfig
    pages: tuple[int, ...] | None = None
    writes: tuple[bool, ...] | None = None
    transactions: tuple[tuple[object, tuple], ...] | None = None
    trace_name: str = "cluster"

    def __post_init__(self) -> None:
        if (self.pages is None) == (self.transactions is None):
            raise ValueError(
                "a ShardJob needs exactly one of pages/writes and "
                "transactions"
            )
        if self.pages is not None and self.writes is None:
            raise ValueError("pages without writes")


@dataclass(frozen=True)
class ShardResult:
    """What one shard replay produced."""

    shard: int
    ops: int
    metrics: RunMetrics
    #: Wall-clock seconds of the replay alone, measured inside the
    #: worker — stack build and pickling excluded, so the number is the
    #: shard node's own serving rate however the jobs were scheduled.
    replay_wall_s: float


def _replay_shard(job: ShardJob) -> ShardResult:
    """Worker-side entry point: build the shard node, replay, measure.

    Everything this function touches is local to the call: the stack is
    built from the job, the subtrace comes with the job, and the result
    is returned, not stored.  (Lint rule R013 holds worker entry points
    to exactly that contract.)
    """
    manager = build_shard_stack(job.config, job.shard)
    label = f"{job.config.label}/shard{job.shard}"
    if job.transactions is not None:
        stream = [(kind, list(requests)) for kind, requests in job.transactions]
        start = time.perf_counter()  # lint: allow-wall-clock, allow-nondeterminism
        metrics = run_transactions(
            manager, stream, options=job.config.options, label=label
        )
        wall_s = time.perf_counter() - start  # lint: allow-wall-clock, allow-nondeterminism
        return ShardResult(job.shard, metrics.ops, metrics, wall_s)
    assert job.pages is not None and job.writes is not None
    trace = Trace(list(job.pages), list(job.writes), name=job.trace_name)
    start = time.perf_counter()  # lint: allow-wall-clock, allow-nondeterminism
    metrics = run_trace(
        manager, trace, options=job.config.options, label=label
    )
    wall_s = time.perf_counter() - start  # lint: allow-wall-clock, allow-nondeterminism
    return ShardResult(job.shard, len(trace), metrics, wall_s)


@dataclass
class ClusterMetrics:
    """Merged cluster measurements plus the per-shard breakdown."""

    label: str
    num_shards: int
    placement: str
    #: Deterministic merge of the shard runs (makespan elapsed; see
    #: :func:`merge_shard_metrics`).
    merged: RunMetrics
    #: Per-shard metrics in shard order (the merge's inputs).
    per_shard: list[RunMetrics]
    per_shard_ops: list[int]
    #: Sum of shard virtual elapsed times (single-node-equivalent work).
    serial_elapsed_us: float
    #: Transaction-affinity accounting from the split (zero for traces).
    cross_shard: CrossShardStats = field(default_factory=CrossShardStats)
    cross_shard_penalty_us: float = 0.0
    #: Per-shard replay wall seconds (measurement side-channel; excluded
    #: from determinism comparisons, obviously).
    replay_wall_s: list[float] = field(default_factory=list)
    #: Replication roll-up
    #: (:class:`repro.cluster.replication.ReplicationSummary`) when the
    #: run went through the replication engine; ``None`` on the
    #: unreplicated fast path.  Typed loosely because the engine only
    #: imports the replication module lazily.
    replication: object | None = None

    @property
    def ops(self) -> int:
        return self.merged.ops

    @property
    def aggregate_accesses_per_sec(self) -> float:
        """Cluster throughput under the makespan model.

        Shards are independent nodes; the cluster clears ``sum(ops)``
        work in the wall time of its slowest shard.  Each shard's wall
        clock is measured around its own replay inside the worker, so
        scheduling artifacts (process spawn, pickling, an oversubscribed
        bench host) do not pollute the number.
        """
        slowest = max(self.replay_wall_s, default=0.0)
        if slowest <= 0.0:
            return 0.0
        return self.merged.ops / slowest

    @property
    def ops_imbalance(self) -> float:
        """Max shard ops over the even share (1.0 = perfectly balanced)."""
        if not self.per_shard_ops or self.merged.ops == 0:
            return 1.0
        return max(self.per_shard_ops) / (
            self.merged.ops / len(self.per_shard_ops)
        )

    def summary(self) -> str:
        merged = self.merged
        return (
            f"{self.label}: {self.num_shards} shards, {merged.ops} ops, "
            f"miss={merged.miss_ratio:.3%}, "
            f"imbalance={self.ops_imbalance:.2f}, "
            f"cross-shard={self.cross_shard.cross_shard_transactions}"
        )


#: BufferStats counter names, summed field-wise in the merge.
_BUFFER_FIELDS = tuple(f.name for f in fields(BufferStats))
#: DeviceStats fields summed field-wise; the histogram and the
#: ``largest_*`` maxima are merged explicitly.
_DEVICE_SUM_FIELDS = tuple(
    f.name
    for f in fields(DeviceStats)
    if f.name
    not in ("write_batch_size_histogram", "largest_write_batch",
            "largest_read_batch")
)
_FTL_FIELDS = tuple(f.name for f in fields(FtlCounters))


def merge_shard_metrics(
    results: Sequence[ShardResult],
    label: str,
    cross_shard_penalty_us: float = 0.0,
) -> RunMetrics:
    """Merge per-shard runs into one cluster-level :class:`RunMetrics`.

    Deterministic by construction: results are processed in shard order
    whatever order they completed in, integer counters sum exactly, and
    float sums always run in the same (shard) order.  ``elapsed_us`` is
    the makespan (max shard virtual time) plus the cross-shard penalty;
    ``io_time_us``/``cpu_time_us`` stay sums — they are *work*, not
    spans.
    """
    ordered = sorted(results, key=lambda result: result.shard)
    if not ordered:
        raise ValueError("cannot merge zero shard results")
    buffer = BufferStats()
    device = DeviceStats()
    ftl: FtlCounters | None = (
        FtlCounters()
        if all(result.metrics.ftl is not None for result in ordered)
        else None
    )
    ops = 0
    transactions = 0
    new_order = 0
    wal_pages = 0
    makespan = 0.0
    io_time = 0.0
    cpu_time = 0.0
    for result in ordered:
        metrics = result.metrics
        ops += metrics.ops
        transactions += metrics.transactions
        new_order += metrics.new_order_transactions
        wal_pages += metrics.wal_pages_written
        makespan = max(makespan, metrics.elapsed_us)
        io_time += metrics.io_time_us
        cpu_time += metrics.cpu_time_us
        for name in _BUFFER_FIELDS:
            setattr(buffer, name,
                    getattr(buffer, name) + getattr(metrics.buffer, name))
        for name in _DEVICE_SUM_FIELDS:
            setattr(device, name,
                    getattr(device, name) + getattr(metrics.device, name))
        device.largest_write_batch = max(
            device.largest_write_batch, metrics.device.largest_write_batch
        )
        device.largest_read_batch = max(
            device.largest_read_batch, metrics.device.largest_read_batch
        )
        for size, count in sorted(
            metrics.device.write_batch_size_histogram.items()
        ):
            device.write_batch_size_histogram[size] = (
                device.write_batch_size_histogram.get(size, 0) + count
            )
        if ftl is not None:
            for name in _FTL_FIELDS:
                setattr(ftl, name,
                        getattr(ftl, name) + getattr(metrics.ftl, name))
    return RunMetrics(
        label=label,
        elapsed_us=makespan + cross_shard_penalty_us,
        ops=ops,
        transactions=transactions,
        new_order_transactions=new_order,
        buffer=buffer,
        device=device,
        ftl=ftl,
        wal_pages_written=wal_pages,
        io_time_us=io_time,
        cpu_time_us=cpu_time,
    )


def _execute_jobs(
    jobs: Sequence[ShardJob],
    workers: int | None,
    worker=_replay_shard,
) -> list:
    """Run every shard job, serially or fanned out; results in shard order.

    ``workers`` defaults to one process per shard; ``workers <= 1`` runs
    in process (no pickling).  ``worker`` is the module-level job
    function — the plain shard replay by default, the replication
    engine's group replay when the config asks for replicas.

    The retry discipline mirrors :func:`repro.bench.parallel.run_grid` —
    a ``BrokenProcessPool`` fails every job queued on the pool, so
    innocent shards retry on a fresh pool — but a shard that exhausts
    its attempts raises :class:`~repro.errors.ClusterReplayError`:
    merged cluster metrics with a missing shard would be silently wrong.
    A :class:`~repro.errors.NodeFailure` is different: a replica group
    dying is a *deterministic* outcome of the job's seeded fault plan,
    so it wraps immediately (attempts as spent) with the structured
    failure attached — retrying would replay the identical crash.
    """
    if workers is None:
        workers = len(jobs)
    if workers < 1:
        raise ValueError(f"worker count must be at least 1: {workers}")
    workers = min(workers, len(jobs))

    if workers <= 1:
        results_serial = []
        for job in jobs:
            try:
                results_serial.append(worker(job))
            except NodeFailure as exc:
                raise ClusterReplayError(
                    shard=job.shard,
                    attempts=1,
                    error=f"{type(exc).__name__}: {exc}",
                    failure=exc,
                ) from exc
        return results_serial

    results: list = [None] * len(jobs)
    attempts = [0] * len(jobs)
    pending = list(range(len(jobs)))
    while pending:
        still_failing: list[int] = []
        failures: list[tuple[int, BaseException]] = []
        # Fresh pool per round: a BrokenProcessPool poisons its executor.
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            submitted = []
            for index in pending:
                attempts[index] += 1
                try:
                    submitted.append(
                        (index, pool.submit(worker, jobs[index]))
                    )
                except Exception as exc:  # pool already broken
                    if attempts[index] >= MAX_SHARD_ATTEMPTS:
                        failures.append((index, exc))
                    else:
                        still_failing.append(index)
            for index, future in submitted:
                try:
                    results[index] = future.result()
                except NodeFailure as exc:
                    raise ClusterReplayError(
                        shard=jobs[index].shard,
                        attempts=attempts[index],
                        error=f"{type(exc).__name__}: {exc}",
                        failure=exc,
                    ) from exc
                except Exception as exc:
                    if attempts[index] >= MAX_SHARD_ATTEMPTS:
                        failures.append((index, exc))
                    else:
                        still_failing.append(index)
        if failures:
            index, exc = failures[0]
            raise ClusterReplayError(
                shard=jobs[index].shard,
                attempts=attempts[index],
                error=f"{type(exc).__name__}: {exc}",
            ) from exc
        pending = still_failing
    assert all(result is not None for result in results)
    return results


def run_cluster(
    config: ClusterConfig,
    trace: Trace,
    workers: int | None = None,
    label: str | None = None,
) -> ClusterMetrics:
    """Split ``trace`` across the cluster, replay every shard, merge.

    Same config + same trace ⇒ byte-identical :class:`ClusterMetrics`
    (modulo the wall-clock side-channel) at any ``workers`` value: the
    split is deterministic, each shard run is a pure function of its
    job, and the merge runs in shard order.

    A config with replicas (or a node-fault schedule) routes through
    :func:`repro.cluster.replication.run_replicated_cluster`; the
    unreplicated path below is untouched by replication — byte-identical
    to what it produced before replica groups existed.
    """
    if config.replicated:
        # Deferred: the replication engine imports this module's job
        # machinery, so a module-scope import would be a cycle.
        from repro.cluster.replication import run_replicated_cluster

        return run_replicated_cluster(
            config, trace, workers=workers, label=label
        )
    router = build_router(config)
    split = router.split(trace.pages, trace.writes)
    jobs = [
        ShardJob(
            shard=shard,
            config=config,
            pages=tuple(sub_pages),
            writes=tuple(sub_writes),
            trace_name=trace.name,
        )
        for shard, (sub_pages, sub_writes) in enumerate(split)
    ]
    results = _execute_jobs(jobs, workers)
    return _assemble(config, results, CrossShardStats(), label, trace.name)


def run_cluster_transactions(
    config: ClusterConfig,
    transactions: Iterable[tuple[object, list]],
    workers: int | None = None,
    label: str | None = None,
) -> ClusterMetrics:
    """Route a transaction stream across the cluster and replay it.

    Each shard replays its slice of every transaction that touches it;
    transactions spanning shards are counted by the router and charged
    ``config.cross_shard_penalty_us`` per extra shard touched in the
    merged elapsed time (the coordination the split cost the cluster).
    """
    if config.replicated:
        raise ValueError(
            "transaction streams do not support replication yet; use a "
            "page trace or replication_factor=0"
        )
    split = build_router(config).split_transactions(transactions)
    jobs = [
        ShardJob(
            shard=shard,
            config=config,
            transactions=tuple(
                (kind, tuple(requests)) for kind, requests in stream
            ),
        )
        for shard, stream in enumerate(split.per_shard)
    ]
    results = _execute_jobs(jobs, workers)
    return _assemble(config, results, split.stats, label, "transactions")


def _assemble(
    config: ClusterConfig,
    results: Sequence[ShardResult],
    cross_shard: CrossShardStats,
    label: str | None,
    stream_name: str,
) -> ClusterMetrics:
    ordered = sorted(results, key=lambda result: result.shard)
    penalty_us = (
        config.cross_shard_penalty_us * cross_shard.extra_shard_touches
    )
    merged_label = (
        label if label is not None else f"{config.label}/{stream_name}"
    )
    merged = merge_shard_metrics(
        ordered, merged_label, cross_shard_penalty_us=penalty_us
    )
    return ClusterMetrics(
        label=merged_label,
        num_shards=config.num_shards,
        placement=config.placement,
        merged=merged,
        per_shard=[replace(result.metrics) for result in ordered],
        per_shard_ops=[result.ops for result in ordered],
        serial_elapsed_us=sum(
            result.metrics.elapsed_us for result in ordered
        ),
        cross_shard=cross_shard,
        cross_shard_penalty_us=penalty_us,
        replay_wall_s=[result.replay_wall_s for result in ordered],
    )
