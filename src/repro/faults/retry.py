"""Retry with exponential backoff, charged against the virtual clock.

The policy is a frozen value object: the buffer manager, background
processes, and recovery all consult the same instance, and every backoff
wait is charged to the shared :class:`~repro.storage.clock.VirtualClock`
so fault-heavy runs are *slower in virtual time* — exactly how production
retries cost real systems throughput.

Semantics the callers rely on:

* **transient faults** are retried up to ``max_attempts`` total attempts,
  sleeping ``backoff_us * multiplier**(attempt-1)`` (capped at
  ``max_backoff_us``) before each retry;
* **permanent faults** are never retried — retrying a dead page only
  burns virtual time;
* **progress resets patience**: a torn batch that lands a prefix proves
  the device is alive, so callers reset the attempt counter whenever an
  attempt acknowledges pages (see ``BufferPoolManager._retry_write_back``).
  Termination is still guaranteed because the remainder strictly shrinks.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import IOFaultError, RetriesExhaustedError
from repro.storage.clock import VirtualClock

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


class RetryPolicy:
    """Bounded exponential backoff for device I/O faults."""

    __slots__ = ("max_attempts", "backoff_us", "multiplier", "max_backoff_us")

    def __init__(
        self,
        max_attempts: int = 5,
        backoff_us: float = 50.0,
        multiplier: float = 2.0,
        max_backoff_us: float = 5_000.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1: {max_attempts}")
        if backoff_us < 0 or max_backoff_us < 0:
            raise ValueError("backoff durations cannot be negative")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {multiplier}")
        self.max_attempts = max_attempts
        self.backoff_us = backoff_us
        self.multiplier = multiplier
        self.max_backoff_us = max_backoff_us

    def backoff_for(self, attempt: int) -> float:
        """Backoff to charge after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt}")
        return min(
            self.backoff_us * self.multiplier ** (attempt - 1),
            self.max_backoff_us,
        )

    def should_retry(self, fault: IOFaultError, attempt: int) -> bool:
        """Whether to retry after ``fault`` on attempt number ``attempt``."""
        return not fault.permanent and attempt < self.max_attempts

    def call(
        self,
        operation: Callable[[], object],
        clock: VirtualClock,
        op: str,
        pages: tuple[int, ...],
        on_retry: Callable[[float], None] | None = None,
    ) -> object:
        """Run ``operation`` under this policy; returns its result.

        Charges each backoff to ``clock`` and invokes ``on_retry(delay_us)``
        before every retry (accounting hook).  Raises the original fault
        for permanent errors and :class:`RetriesExhaustedError` once
        ``max_attempts`` is reached.
        """
        attempt = 1
        while True:
            try:
                return operation()
            except IOFaultError as fault:
                if not self.should_retry(fault, attempt):
                    if fault.permanent:
                        raise
                    raise RetriesExhaustedError(
                        op, pages, attempt, "retries exhausted",
                        last_fault=fault,
                    ) from fault
                delay = self.backoff_for(attempt)
                clock.advance(delay)
                if on_retry is not None:
                    on_retry(delay)
                attempt += 1

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"backoff_us={self.backoff_us}, multiplier={self.multiplier}, "
            f"max_backoff_us={self.max_backoff_us})"
        )


#: The stack-wide default: 5 attempts, 50us..5ms exponential backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()
