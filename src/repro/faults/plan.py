"""Deterministic fault planning: what goes wrong, when, and reproducibly.

A :class:`FaultPlan` is a frozen, picklable description of a failure
environment: per-operation fault rates, the latency-spike magnitude, and an
explicit set of permanently bad pages.  A :class:`FaultInjector` turns the
plan into a concrete, seeded schedule: given the same plan and the same
operation sequence it produces a byte-identical sequence of
:class:`FaultEvent` decisions — which is what keeps fault-injected runs as
deterministic as clean ones (serial or across the parallel grid).

The injector only *decides*; applying the fault (charging virtual time,
mutating device state, raising :class:`~repro.errors.IOFaultError`) is
:class:`~repro.faults.device.FaultyDevice`'s job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultInjector"]


class FaultKind(Enum):
    """The failure modes the injector can schedule.

    The first five raise (or delay) at the faulted operation; the last
    three are *silent*: the operation appears to succeed while the stored
    data quietly diverges from what the caller believes it wrote — they are
    only observable later, through checksum verification or a WAL
    cross-check (see ``docs/architecture.md``).
    """

    TRANSIENT_READ = "transient-read"
    TRANSIENT_WRITE = "transient-write"
    PERMANENT_MEDIA = "permanent-media"
    LATENCY_SPIKE = "latency-spike"
    TORN_BATCH = "torn-batch"
    #: A read-path corruption: the page's stored payload decays in place.
    BITROT = "bitrot"
    #: One write of a batch lands on the *wrong* page: the victim keeps its
    #: old data (under fresh checksum metadata) and a neighbour is
    #: clobbered with the stray payload.
    MISDIRECTED_WRITE = "misdirected-write"
    #: One write of a batch is acknowledged but never persisted: the
    #: victim's old data survives under the new checksum metadata.
    LOST_WRITE = "lost-write"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: which operation, which kind, which pages."""

    index: int
    op: str
    kind: FaultKind
    pages: tuple[int, ...]
    #: Pages of the same operation that land despite the fault (torn
    #: batches, mixed healthy/bad-media batches).
    acknowledged: tuple[int, ...] = ()
    #: Extra virtual time charged by a latency spike.
    delay_us: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded recipe for injected device failures.

    Rates are per *operation* (a batch counts once), in ``[0, 1]``.
    ``media_error_pages`` fail deterministically on every access —
    they model unrecoverable bad blocks and are independent of the RNG.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    torn_batch_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_us: float = 2_000.0
    #: Silent-corruption rates (per operation, like the others).
    bitrot_rate: float = 0.0
    misdirected_write_rate: float = 0.0
    lost_write_rate: float = 0.0
    media_error_pages: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate", "write_error_rate",
            "torn_batch_rate", "latency_spike_rate",
            "bitrot_rate", "misdirected_write_rate", "lost_write_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {rate}")
        if self.latency_spike_us < 0:
            raise ValueError(
                f"latency_spike_us cannot be negative: {self.latency_spike_us}"
            )
        # Accept any iterable of pages for convenience; store a frozenset.
        if not isinstance(self.media_error_pages, frozenset):
            object.__setattr__(
                self, "media_error_pages", frozenset(self.media_error_pages)
            )

    @property
    def is_null(self) -> bool:
        """Whether the plan can never produce a fault (pure pass-through)."""
        return (
            self.read_error_rate == 0.0
            and self.write_error_rate == 0.0
            and self.torn_batch_rate == 0.0
            and self.latency_spike_rate == 0.0
            and self.bitrot_rate == 0.0
            and self.misdirected_write_rate == 0.0
            and self.lost_write_rate == 0.0
            and not self.media_error_pages
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan applying ``rate`` to reads, writes, and torn batches."""
        return cls(
            seed=seed,
            read_error_rate=rate,
            write_error_rate=rate,
            torn_batch_rate=rate,
            latency_spike_rate=rate,
        )

    @classmethod
    def spikes(
        cls, rate: float, spike_us: float = 2_000.0, seed: int = 0
    ) -> "FaultPlan":
        """A latency-spike-only plan (every operation still succeeds).

        The overload harness and the serving-layer circuit breaker tests
        use this shape: spikes inflate tail latency without introducing
        retries or data loss, isolating the admission-control response.
        """
        return cls(seed=seed, latency_spike_rate=rate, latency_spike_us=spike_us)

    @classmethod
    def silent(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A silent-corruption-only plan: bitrot, misdirected, lost writes.

        Every operation still *succeeds* from the caller's point of view —
        the data just quietly goes wrong.  This is the shape the chaos
        harness's detect+repair cell and the scrubber tests use.
        """
        return cls(
            seed=seed,
            bitrot_rate=rate,
            misdirected_write_rate=rate,
            lost_write_rate=rate,
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style spec into a plan.

        Either a bare float — a uniform rate, ``"0"`` giving the null
        pass-through plan — or a comma-separated ``key=value`` list with
        keys ``read``, ``write``, ``torn``, ``spike``, ``spike_us``,
        ``bitrot``, ``misdirect``, ``lost``, ``seed``
        (e.g. ``"read=0.01,torn=0.005,seed=7"``).
        """
        spec = spec.strip()
        if not spec:
            return cls()
        if "=" not in spec:
            return cls.uniform(float(spec))
        keys = {
            "read": "read_error_rate",
            "write": "write_error_rate",
            "torn": "torn_batch_rate",
            "spike": "latency_spike_rate",
            "spike_us": "latency_spike_us",
            "bitrot": "bitrot_rate",
            "misdirect": "misdirected_write_rate",
            "lost": "lost_write_rate",
            "seed": "seed",
        }
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in keys:
                known = ", ".join(sorted(keys))
                raise ValueError(f"unknown fault key {key!r}; known: {known}")
            target = keys[key]
            kwargs[target] = int(value) if target == "seed" else float(value)
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Short human-readable form (used by the chaos harness tables)."""
        if self.is_null:
            return "no faults"
        parts = []
        if self.read_error_rate:
            parts.append(f"read={self.read_error_rate:g}")
        if self.write_error_rate:
            parts.append(f"write={self.write_error_rate:g}")
        if self.torn_batch_rate:
            parts.append(f"torn={self.torn_batch_rate:g}")
        if self.latency_spike_rate:
            parts.append(f"spike={self.latency_spike_rate:g}")
        if self.bitrot_rate:
            parts.append(f"bitrot={self.bitrot_rate:g}")
        if self.misdirected_write_rate:
            parts.append(f"misdirect={self.misdirected_write_rate:g}")
        if self.lost_write_rate:
            parts.append(f"lost={self.lost_write_rate:g}")
        if self.media_error_pages:
            parts.append(f"bad-pages={len(self.media_error_pages)}")
        return ",".join(parts) + f" seed={self.seed}"


class FaultInjector:
    """Seeded decision engine: turns a plan into a concrete fault schedule.

    One injector belongs to one device.  Every decision is appended to
    :attr:`events`, so two runs can be compared for byte-identical fault
    schedules (the determinism acceptance test does exactly that).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: Every fault decided so far, in decision order.
        self.events: list[FaultEvent] = []
        #: Total device operations consulted (faulted or not).
        self.operations = 0

    @property
    def faults_injected(self) -> int:
        return len(self.events)

    def on_read(self, pages: tuple[int, ...]) -> FaultEvent | None:
        """Decide the fate of one read operation over ``pages``."""
        plan = self.plan
        self.operations += 1
        index = self.operations
        bad = plan.media_error_pages.intersection(pages)
        if bad:
            return self._record(FaultEvent(
                index, "read", FaultKind.PERMANENT_MEDIA,
                pages=tuple(sorted(bad)),
            ))
        rng = self.rng
        if plan.read_error_rate and rng.random() < plan.read_error_rate:
            return self._record(FaultEvent(
                index, "read", FaultKind.TRANSIENT_READ, pages=tuple(pages),
            ))
        if plan.bitrot_rate and rng.random() < plan.bitrot_rate:
            # One page of the batch decays in place before it is read.
            victim = pages[rng.randrange(len(pages))]
            rest = tuple(page for page in pages if page != victim)
            return self._record(FaultEvent(
                index, "read", FaultKind.BITROT,
                pages=(victim,), acknowledged=rest,
            ))
        if plan.latency_spike_rate and rng.random() < plan.latency_spike_rate:
            return self._record(FaultEvent(
                index, "read", FaultKind.LATENCY_SPIKE, pages=tuple(pages),
                delay_us=plan.latency_spike_us,
            ))
        return None

    def on_write(self, pages: tuple[int, ...]) -> FaultEvent | None:
        """Decide the fate of one write batch over ``pages`` (in order)."""
        plan = self.plan
        self.operations += 1
        index = self.operations
        bad = plan.media_error_pages.intersection(pages)
        if bad:
            good = tuple(page for page in pages if page not in bad)
            return self._record(FaultEvent(
                index, "write", FaultKind.PERMANENT_MEDIA,
                pages=tuple(sorted(bad)), acknowledged=good,
            ))
        rng = self.rng
        if plan.write_error_rate and rng.random() < plan.write_error_rate:
            return self._record(FaultEvent(
                index, "write", FaultKind.TRANSIENT_WRITE, pages=tuple(pages),
            ))
        if (
            plan.torn_batch_rate
            and len(pages) > 1
            and rng.random() < plan.torn_batch_rate
        ):
            # A proper prefix lands: at least one page written, one lost.
            cut = rng.randrange(1, len(pages))
            return self._record(FaultEvent(
                index, "write", FaultKind.TORN_BATCH,
                pages=tuple(pages[cut:]), acknowledged=tuple(pages[:cut]),
            ))
        if (
            plan.misdirected_write_rate
            and rng.random() < plan.misdirected_write_rate
        ):
            victim = pages[rng.randrange(len(pages))]
            rest = tuple(page for page in pages if page != victim)
            return self._record(FaultEvent(
                index, "write", FaultKind.MISDIRECTED_WRITE,
                pages=(victim,), acknowledged=rest,
            ))
        if plan.lost_write_rate and rng.random() < plan.lost_write_rate:
            victim = pages[rng.randrange(len(pages))]
            rest = tuple(page for page in pages if page != victim)
            return self._record(FaultEvent(
                index, "write", FaultKind.LOST_WRITE,
                pages=(victim,), acknowledged=rest,
            ))
        if plan.latency_spike_rate and rng.random() < plan.latency_spike_rate:
            return self._record(FaultEvent(
                index, "write", FaultKind.LATENCY_SPIKE, pages=tuple(pages),
                delay_us=plan.latency_spike_us,
            ))
        return None

    def _record(self, event: FaultEvent) -> FaultEvent:
        self.events.append(event)
        return event

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, ops={self.operations}, "
            f"faults={len(self.events)})"
        )
