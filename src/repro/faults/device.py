"""FaultyDevice: a fault-injecting wrapper over :class:`SimulatedSSD`.

The wrapper composes — it never touches the simulator.  Every I/O is first
offered to the :class:`~repro.faults.plan.FaultInjector`; if a fault is
scheduled the wrapper applies its semantics and raises a structured
:class:`~repro.errors.IOFaultError`, otherwise it delegates unchanged:

* **transient read/write errors** — the operation's modelled latency is
  still charged (the device was busy failing), nothing lands, the caller
  may retry;
* **permanent media errors** — reads on a bad page always fail; a write
  batch containing bad pages lands its healthy pages and reports the bad
  ones as permanently failed;
* **latency spikes** — the operation succeeds after an extra virtual-time
  charge;
* **torn batches** — only a prefix of a multi-page write batch lands
  (:class:`~repro.errors.TornWriteError` reports both halves).

With a null plan (all rates zero, no bad pages) every method is a plain
delegation guarded by a single attribute test, so a rate-0 wrapper is
behaviourally identical to the bare device — the ``REPRO_FAULTS=0``
pass-through CI job pins that down.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import IOFaultError, TornWriteError
from repro.faults.plan import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.storage.device import DeviceStats, SimulatedSSD
from repro.storage.ftl import FlashTranslationLayer
from repro.storage.clock import VirtualClock

__all__ = ["FaultyDevice"]


class FaultyDevice:
    """Injects :class:`FaultPlan` failures in front of a ``SimulatedSSD``.

    Exposes the full device interface (``read_page``/``read_batch``/
    ``write_page``/``write_batch``/``format_pages``/``stats``/``clock``/
    ``ftl``/...), so a manager built over it cannot tell the difference —
    until an I/O fails.
    """

    def __init__(
        self,
        base: SimulatedSSD,
        plan: FaultPlan,
        injector: FaultInjector | None = None,
    ) -> None:
        self.base = base
        self.plan = plan
        self.injector = injector if injector is not None else FaultInjector(plan)
        self._armed = not plan.is_null

    # ------------------------------------------------- delegated surface

    @property
    def profile(self):
        return self.base.profile

    @property
    def model(self):
        return self.base.model

    @property
    def clock(self) -> VirtualClock:
        return self.base.clock

    @property
    def num_pages(self) -> int | None:
        return self.base.num_pages

    @property
    def stats(self) -> DeviceStats:
        return self.base.stats

    @property
    def ftl(self) -> FlashTranslationLayer | None:
        return self.base.ftl

    @property
    def _payloads(self) -> dict[int, object]:
        # Tests and diagnostics peek at stored payloads through the
        # device; expose the base mapping so a wrapped stack behaves the
        # same under inspection.
        return self.base._payloads

    def contains(self, page: int) -> bool:
        return self.base.contains(page)

    def peek(self, page: int) -> object | None:
        return self.base.peek(page)

    @property
    def checksums_enabled(self) -> bool:
        return self.base.checksums_enabled

    def verify_page(self, page: int) -> bool:
        """Scrub reads are maintenance I/O: charged, but never injected."""
        return self.base.verify_page(page)

    def corrupt_payload(self, page: int, payload: object | None) -> None:
        self.base.corrupt_payload(page, payload)

    def snapshot_payloads(self) -> dict[int, object]:
        return self.base.snapshot_payloads()

    def restore_payloads(self, snapshot: Mapping[int, object]) -> None:
        self.base.restore_payloads(snapshot)

    def format_pages(self, pages: Iterable[int]) -> None:
        """Preloading is an out-of-band operation: never fault-injected."""
        self.base.format_pages(pages)

    def reset_stats(self) -> None:
        self.base.reset_stats()

    # ----------------------------------------------------------- reads

    def read_page(self, page: int) -> object | None:
        if self._armed:
            event = self.injector.on_read((page,))
            if event is not None:
                self._apply_read_fault(event, batch_size=1)
        return self.base.read_page(page)

    def read_batch(self, pages: list[int] | tuple[int, ...]) -> list[object | None]:
        if self._armed and pages:
            event = self.injector.on_read(tuple(pages))
            if event is not None:
                self._apply_read_fault(event, batch_size=len(pages))
        return self.base.read_batch(pages)

    def _apply_read_fault(self, event: FaultEvent, batch_size: int) -> None:
        base = self.base
        stats = base.stats
        if event.kind is FaultKind.LATENCY_SPIKE:
            stats.latency_spikes += 1
            stats.fault_delay_us += event.delay_us
            base.clock.advance(event.delay_us)
            return
        if event.kind is FaultKind.BITROT:
            # The victim page decays in place *before* the read: the caller
            # sees a successful read of garbage — unless the base device
            # has checksums on, in which case the delegated read raises
            # CorruptPageError.  No extra time: the decay is free.
            page = event.pages[0]
            base.corrupt_payload(page, ("bitrot", base.peek(page)))
            stats.silent_corruptions += 1
            return
        # The device was busy failing: the read still costs its latency.
        elapsed = base.model.read_batch_us(batch_size)
        base.clock.advance(elapsed)
        stats.read_faults += 1
        if event.kind is FaultKind.PERMANENT_MEDIA:
            raise IOFaultError(
                "read", event.pages, "permanent media error", permanent=True
            )
        if event.kind is FaultKind.TRANSIENT_READ:
            raise IOFaultError("read", event.pages, "transient read error")
        raise AssertionError(f"unhandled read fault kind: {event.kind}")

    # ---------------------------------------------------------- writes

    def write_page(self, page: int, payload: object | None = None) -> None:
        self.write_batch({page: payload})

    def write_batch(self, pages: Mapping[int, object] | Iterable[int]) -> None:
        if not self._armed:
            self.base.write_batch(pages)
            return
        # Normalise exactly like the base device so a torn batch can be
        # split into an acknowledged prefix and a lost remainder.
        base = self.base
        if isinstance(pages, Mapping):
            items = list(pages.items())
        else:
            payloads = base._payloads
            items = [(page, payloads.get(page)) for page in pages]
        if not items:
            return
        page_ids = tuple(page for page, _ in items)
        if len(set(page_ids)) != len(page_ids):
            raise ValueError(f"duplicate pages in write batch: {list(page_ids)}")
        event = self.injector.on_write(page_ids)
        if event is None:
            base.write_batch(dict(items))
            return
        self._apply_write_fault(event, items)

    def _apply_write_fault(
        self, event: FaultEvent, items: list[tuple[int, object | None]]
    ) -> None:
        base = self.base
        stats = base.stats
        if event.kind is FaultKind.LATENCY_SPIKE:
            stats.latency_spikes += 1
            stats.fault_delay_us += event.delay_us
            base.clock.advance(event.delay_us)
            base.write_batch(dict(items))
            return
        if event.kind is FaultKind.TRANSIENT_WRITE:
            # Nothing lands, but the failed batch occupied the device.
            elapsed = base.model.write_batch_us(len(items))
            base.clock.advance(elapsed)
            stats.write_faults += 1
            raise IOFaultError(
                "write", event.pages, "transient write error"
            )
        if event.kind in (FaultKind.MISDIRECTED_WRITE, FaultKind.LOST_WRITE):
            self._apply_silent_write_fault(event, items)
            return
        acknowledged = set(event.acknowledged)
        landed = {page: payload for page, payload in items if page in acknowledged}
        if landed:
            base.write_batch(landed)
        if event.kind is FaultKind.TORN_BATCH:
            stats.torn_batches += 1
            raise TornWriteError(
                pages=event.pages, acknowledged=event.acknowledged
            )
        if event.kind is FaultKind.PERMANENT_MEDIA:
            # Permanent media error on part (or all) of the batch.
            stats.write_faults += 1
            raise IOFaultError(
                "write", event.pages, "permanent media error",
                acknowledged=event.acknowledged, permanent=True,
            )
        raise AssertionError(f"unhandled write fault kind: {event.kind}")

    def _apply_silent_write_fault(
        self, event: FaultEvent, items: list[tuple[int, object | None]]
    ) -> None:
        """Land the batch "successfully", then quietly betray one page.

        The whole batch is written through the base device first, so the
        timing, stats, FTL, and checksum-metadata accounting are exactly
        those of a healthy batch — the device *believes* it wrote
        everything.  Then the victim page's stored payload is rewound (lost
        write) or additionally smeared onto its neighbour (misdirected
        write) behind the checksums' back, leaving latent damage that only
        a checksum verify or a WAL cross-check can surface.
        """
        base = self.base
        victim = event.pages[0]
        old = base.peek(victim)
        new = dict(items)[victim]
        base.write_batch(dict(items))
        if event.kind is FaultKind.MISDIRECTED_WRITE:
            # The victim's payload landed on a neighbouring page instead.
            num_pages = base.num_pages
            target = (victim + 1) % num_pages if num_pages else victim + 1
            if target != victim:
                base.corrupt_payload(target, new)
        base.corrupt_payload(victim, old)
        base.stats.silent_corruptions += 1

    def __repr__(self) -> str:
        return f"FaultyDevice({self.plan.describe()}, base={self.base!r})"
