"""Deterministic node-level fault planning for replicated clusters.

:mod:`repro.faults.plan` schedules *device* failures — I/O errors a stack
survives in place.  This module schedules *node* failures: a whole shard
stack (pool, device, WAL) losing power mid-replay.  A
:class:`NodeFaultPlan` is the same shape of object as a
:class:`~repro.faults.plan.FaultPlan` — frozen, seeded, picklable — so a
cluster job can carry its failure schedule across the process boundary
and two replays of the same plan produce byte-identical failover
histories.

Each :class:`NodeFault` targets one ``(shard, node)`` member of a replica
group (node 0 is the initial primary, nodes ``1..R`` the replicas) and
fires exactly once, at a *virtual* trigger:

``crash_at_access``
    The node dies before the shard serves access index
    ``crash_at_access`` of its subtrace (primary), or once the shard's
    committed progress passes that index (replica).
``crash_at_us``
    The node dies once the shard group's virtual clock reaches the given
    microsecond mark (checked at access and commit granularity).

A fault is either ``permanent`` (the node never comes back) or carries
``rejoin_after_accesses``: the node is rebuilt empty and caught up via
the anti-entropy pass once the shard's committed progress has advanced
that far past the crash.  Applying the schedule — crashing stacks,
promoting replicas, rebuilding rejoiners — is
:mod:`repro.cluster.replication`'s job; this module only decides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["NodeFault", "NodeFaultPlan"]


@dataclass(frozen=True)
class NodeFault:
    """One scheduled node failure: which group member, which trigger."""

    shard: int
    node: int
    crash_at_access: int | None = None
    crash_at_us: float | None = None
    permanent: bool = False
    #: Committed accesses after the crash before the node rejoins
    #: (``None`` = stays down; mutually exclusive with ``permanent``).
    rejoin_after_accesses: int | None = None

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"shard cannot be negative: {self.shard}")
        if self.node < 0:
            raise ValueError(f"node cannot be negative: {self.node}")
        if (self.crash_at_access is None) == (self.crash_at_us is None):
            raise ValueError(
                "a NodeFault needs exactly one of crash_at_access and "
                "crash_at_us"
            )
        if self.crash_at_access is not None and self.crash_at_access < 0:
            raise ValueError(
                f"crash_at_access cannot be negative: {self.crash_at_access}"
            )
        if self.crash_at_us is not None and self.crash_at_us < 0:
            raise ValueError(
                f"crash_at_us cannot be negative: {self.crash_at_us}"
            )
        if self.permanent and self.rejoin_after_accesses is not None:
            raise ValueError("a permanent loss cannot schedule a rejoin")
        if (
            self.rejoin_after_accesses is not None
            and self.rejoin_after_accesses < 1
        ):
            raise ValueError(
                "rejoin_after_accesses must be positive: "
                f"{self.rejoin_after_accesses}"
            )

    def describe(self) -> str:
        if self.crash_at_access is not None:
            trigger = f"@access {self.crash_at_access}"
        else:
            trigger = f"@{self.crash_at_us:g}us"
        fate = "permanent" if self.permanent else (
            f"rejoin+{self.rejoin_after_accesses}"
            if self.rejoin_after_accesses is not None else "down"
        )
        return f"s{self.shard}/n{self.node} {trigger} ({fate})"


@dataclass(frozen=True)
class NodeFaultPlan:
    """A frozen, seeded schedule of node crashes for a replicated cluster.

    ``faults`` is the complete schedule; :meth:`faults_for` slices it per
    shard in deterministic trigger order.  The plan itself never mutates —
    the replication engine tracks which faults have fired.
    """

    seed: int = 0
    faults: tuple[NodeFault, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, NodeFault):
                raise ValueError(f"not a NodeFault: {fault!r}")

    @property
    def is_null(self) -> bool:
        """Whether the plan can never crash a node."""
        return not self.faults

    def faults_for(self, shard: int) -> tuple[NodeFault, ...]:
        """Shard ``shard``'s faults, ordered by trigger then node id."""
        def key(fault: NodeFault) -> tuple[float, float, int]:
            access = (
                float(fault.crash_at_access)
                if fault.crash_at_access is not None else float("inf")
            )
            at_us = (
                fault.crash_at_us
                if fault.crash_at_us is not None else float("inf")
            )
            return (access, at_us, fault.node)

        return tuple(sorted(
            (fault for fault in self.faults if fault.shard == shard),
            key=key,
        ))

    def max_node(self) -> int:
        """The highest node id any fault targets (-1 for a null plan)."""
        return max((fault.node for fault in self.faults), default=-1)

    def max_shard(self) -> int:
        """The highest shard id any fault targets (-1 for a null plan)."""
        return max((fault.shard for fault in self.faults), default=-1)

    @classmethod
    def random(
        cls,
        num_shards: int,
        replicas: int,
        failure_rate: float,
        accesses_per_shard: int,
        seed: int = 0,
        permanent_fraction: float = 0.25,
        rejoin_fraction: float = 0.75,
    ) -> "NodeFaultPlan":
        """A seeded failure storm over an ``num_shards`` x ``1+R`` cluster.

        Each node of each shard fails with probability ``failure_rate`` at
        a crash point drawn uniformly over the shard subtrace; a faulted
        node is permanently lost with probability ``permanent_fraction``,
        otherwise it rejoins with probability ``rejoin_fraction`` after a
        drawn delay.  At most ``replicas`` members of any group are
        faulted — at least one node per shard always survives, so a
        random storm never strands a shard (strand a group on purpose
        with an explicit fault list; that is the
        :class:`~repro.errors.NodeFailure` path).
        """
        if num_shards < 1:
            raise ValueError(f"need at least one shard: {num_shards}")
        if replicas < 0:
            raise ValueError(f"replica count cannot be negative: {replicas}")
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1]: {failure_rate}")
        if accesses_per_shard < 1:
            raise ValueError(
                f"accesses_per_shard must be positive: {accesses_per_shard}"
            )
        rng = random.Random(seed)
        faults: list[NodeFault] = []
        for shard in range(num_shards):
            candidates = [
                node for node in range(replicas + 1)
                if rng.random() < failure_rate
            ]
            # Never fault the whole group: drop the last-drawn extras.
            del candidates[max(0, replicas):]
            for node in candidates:
                crash_at = rng.randrange(1, accesses_per_shard)
                permanent = rng.random() < permanent_fraction
                rejoin: int | None = None
                if not permanent and rng.random() < rejoin_fraction:
                    rejoin = rng.randrange(
                        1, max(2, accesses_per_shard - crash_at + 1)
                    )
                faults.append(NodeFault(
                    shard=shard,
                    node=node,
                    crash_at_access=crash_at,
                    permanent=permanent,
                    rejoin_after_accesses=rejoin,
                ))
        return cls(seed=seed, faults=tuple(faults))

    def describe(self) -> str:
        """Short human-readable form (used by the failover bench tables)."""
        if self.is_null:
            return "no node faults"
        parts = [fault.describe() for fault in self.faults[:4]]
        if len(self.faults) > 4:
            parts.append(f"+{len(self.faults) - 4} more")
        return "; ".join(parts) + f" seed={self.seed}"
