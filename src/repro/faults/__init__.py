"""Deterministic fault injection for the simulated I/O path.

The paper's argument — batched, deferred, concurrent write-backs are safe
and fast — only holds in production if the stack survives the failures
real SSDs throw: transient I/O errors, latency spikes, torn multi-page
batches, and dead blocks.  This package supplies the failure side of that
argument:

:class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultInjector`
    A frozen, seeded fault schedule: per-operation rates for transient
    read/write errors, torn batches, and latency spikes, plus an explicit
    permanent-media page set.  Same plan + same operation sequence ⇒
    byte-identical fault schedule.

:class:`~repro.faults.device.FaultyDevice`
    Composes over :class:`~repro.storage.device.SimulatedSSD` without
    touching it; applies fault semantics and raises structured
    :class:`~repro.errors.IOFaultError` subclasses.

:class:`~repro.faults.retry.RetryPolicy`
    Bounded exponential backoff charged to the virtual clock, consulted by
    the buffer manager, background writer, checkpointer, and recovery.

The chaos harness that sweeps fault rates across policies and asserts the
end-to-end durability invariant lives in :mod:`repro.bench.chaos`
(``python -m repro chaos``).
"""

from repro.faults.device import FaultyDevice
from repro.faults.nodes import NodeFault, NodeFaultPlan
from repro.faults.plan import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultyDevice",
    "NodeFault",
    "NodeFaultPlan",
    "RetryPolicy",
]
