"""Run metrics: what every experiment measures (paper §VI methodology).

For every experiment the paper records (i) workload latency, (ii)
transactions per second, (iii) buffer misses/hits, and (iv) total writes —
split into *logical* writes (pages the DBMS writes to the device) and
*physical* writes (NAND programs, including garbage collection, read from
SMART).  :class:`RunMetrics` packages exactly those, measured in virtual
time, plus the comparison helpers the figures need (speedup, deltas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.bufferpool.stats import BufferStats
from repro.storage.device import DeviceStats
from repro.storage.ftl import FtlCounters

if TYPE_CHECKING:  # deferred to break the metrics <-> serving import cycle
    from repro.engine.serving.metrics import ServingMetrics

__all__ = ["RunMetrics", "speedup", "percent_delta"]


@dataclass
class RunMetrics:
    """Measurements from one workload execution."""

    label: str
    elapsed_us: float
    ops: int
    transactions: int = 0
    new_order_transactions: int = 0
    buffer: BufferStats = field(default_factory=BufferStats)
    device: DeviceStats = field(default_factory=DeviceStats)
    ftl: FtlCounters | None = None
    wal_pages_written: int = 0
    io_time_us: float = 0.0
    cpu_time_us: float = 0.0
    #: Serving-layer accounting; ``None`` for runs without admission
    #: control (the historical default).
    serving: "ServingMetrics | None" = None

    # ----------------------------------------------------------- derived

    @property
    def runtime_s(self) -> float:
        return self.elapsed_us / 1e6

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.ops / (self.elapsed_us / 1e6)

    @property
    def tps(self) -> float:
        """Transactions per (virtual) second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.transactions / (self.elapsed_us / 1e6)

    @property
    def tpm(self) -> float:
        """Transactions per (virtual) minute."""
        return self.tps * 60.0

    @property
    def tpmc(self) -> float:
        """tpmC: NewOrder transactions per minute (TPC-C's metric)."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.new_order_transactions / (self.elapsed_us / 6e7)

    @property
    def miss_ratio(self) -> float:
        return self.buffer.miss_ratio

    @property
    def logical_writes(self) -> int:
        """Pages the DBMS wrote to the main device (the paper's l-writes)."""
        return self.device.writes

    @property
    def physical_writes(self) -> int:
        """NAND programs including GC (the paper's p-writes via SMART)."""
        if self.ftl is None:
            return self.device.writes
        return self.ftl.physical_writes

    @property
    def write_amplification(self) -> float:
        if self.ftl is None or self.logical_writes == 0:
            return 1.0
        return self.physical_writes / self.logical_writes

    @property
    def faults_injected(self) -> int:
        """Device faults injected during the run (zero without a plan)."""
        return self.device.faults_injected

    @property
    def io_retries(self) -> int:
        """Retries the buffer manager issued against faulted I/O."""
        return self.buffer.io_retries

    @property
    def degraded_writebacks(self) -> int:
        """Write-back batches that landed only a prefix (torn/mixed)."""
        return self.buffer.degraded_writebacks

    def summary(self) -> str:
        """One-line human-readable digest."""
        text = (
            f"{self.label}: {self.runtime_s:.3f}s, {self.ops} ops, "
            f"miss={self.miss_ratio:.3%}, lw={self.logical_writes}, "
            f"pw={self.physical_writes}"
        )
        if self.faults_injected or self.io_retries:
            text += (
                f", faults={self.faults_injected}, retries={self.io_retries}"
                f", degraded_wb={self.degraded_writebacks}"
            )
        return text


def speedup(baseline: RunMetrics, candidate: RunMetrics) -> float:
    """Runtime speedup of ``candidate`` over ``baseline`` (>1 is faster)."""
    if candidate.elapsed_us <= 0:
        raise ValueError("candidate elapsed time must be positive")
    return baseline.elapsed_us / candidate.elapsed_us


def percent_delta(baseline: float, candidate: float) -> float:
    """Percentage change from ``baseline`` to ``candidate``.

    Matches Table III's convention: positive means the candidate (ACE) did
    more (e.g. +0.1 % writes), negative means fewer (e.g. -0.001 % misses).
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (candidate - baseline) / baseline
