"""Multi-client interleaving: merge per-client streams into one schedule.

The paper drives PostgreSQL with 20 concurrent pgbench/TPC-C users.  The
simulator executes a single serialised request stream (DESIGN.md discusses
why that preserves the I/O-path comparisons), but *which* pages interleave
still matters: concurrent clients dilute each other's locality in the
shared bufferpool.  This module builds such interleavings deterministically
so experiments can include the effect.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.workloads.trace import PageRequest, Trace

__all__ = ["interleave_traces", "interleave_transactions"]


def interleave_traces(
    traces: Sequence[Trace],
    mode: str = "round_robin",
    seed: int = 42,
    name: str | None = None,
    weights: Sequence[float] | str | None = None,
) -> Trace:
    """Merge per-client traces into one interleaved trace.

    ``mode`` is ``"round_robin"`` (each client advances one request per
    turn, the tightest interleaving) or ``"random"`` (the next request
    comes from a randomly chosen client with work remaining — a fairer
    model of independent clients).

    ``weights`` (random mode only) controls the per-client draw:

    ``None``
        Uniform over clients with work remaining.  Note that a client with
        10x the requests then *dominates the tail* of the interleaving: the
        short clients exhaust early and the long client runs alone.
    ``"remaining"``
        Weight each client by its remaining request count, i.e. every
        outstanding *request* is equally likely.  Clients of unequal length
        interleave proportionally throughout instead of serialising at the
        end.
    a sequence of floats
        Fixed per-client weights (e.g. think-time ratios); must match
        ``len(traces)`` with positive entries for non-empty clients.

    The result carries a ``client_ids`` side-channel (parallel to
    ``pages``/``writes``) attributing each request to the index of the
    client trace that issued it, so the serving layer can bill sessions.
    """
    if not traces:
        raise ValueError("need at least one client trace")
    if mode not in ("round_robin", "random"):
        raise ValueError(f"unknown interleaving mode: {mode!r}")
    if weights is not None and mode != "random":
        raise ValueError("weights are only meaningful with mode='random'")
    fixed_weights: list[float] | None = None
    if isinstance(weights, str):
        if weights != "remaining":
            raise ValueError(f"unknown weights spec: {weights!r}")
    elif weights is not None:
        fixed_weights = [float(weight) for weight in weights]
        if len(fixed_weights) != len(traces):
            raise ValueError(
                f"weights ({len(fixed_weights)}) and traces ({len(traces)}) "
                "differ in length"
            )
        for index, trace in enumerate(traces):
            if len(trace) and fixed_weights[index] <= 0.0:
                raise ValueError(
                    f"client {index} has requests but non-positive weight "
                    f"{fixed_weights[index]}"
                )

    pages: list[int] = []
    writes: list[bool] = []
    client_ids: list[int] = []
    positions = [0] * len(traces)
    remaining = sum(len(trace) for trace in traces)
    rng = random.Random(seed)
    active = [index for index, trace in enumerate(traces) if len(trace)]

    while remaining:
        if mode == "round_robin":
            next_active = []
            for index in active:
                trace = traces[index]
                position = positions[index]
                pages.append(trace.pages[position])
                writes.append(trace.writes[position])
                client_ids.append(index)
                positions[index] = position + 1
                remaining -= 1
                if positions[index] < len(trace):
                    next_active.append(index)
            active = next_active
        else:
            if weights is None:
                index = active[rng.randrange(len(active))]
            else:
                if fixed_weights is not None:
                    draw_weights = [fixed_weights[i] for i in active]
                else:
                    draw_weights = [
                        float(len(traces[i]) - positions[i]) for i in active
                    ]
                index = rng.choices(active, weights=draw_weights)[0]
            trace = traces[index]
            position = positions[index]
            pages.append(trace.pages[position])
            writes.append(trace.writes[position])
            client_ids.append(index)
            positions[index] = position + 1
            remaining -= 1
            if positions[index] == len(trace):
                active.remove(index)

    label = name if name is not None else f"interleaved[{len(traces)}]"
    return Trace(pages, writes, name=label, client_ids=client_ids)


def interleave_transactions(
    client_streams: Sequence[Sequence[tuple[object, list[PageRequest]]]],
    seed: int = 42,
) -> list[tuple[object, list[PageRequest]]]:
    """Randomly interleave per-client transaction streams.

    Transactions stay atomic (their page requests are not split); only the
    transaction order across clients is interleaved, as a DBMS serialising
    short transactions would exhibit.
    """
    if not client_streams:
        raise ValueError("need at least one client stream")
    rng = random.Random(seed)
    positions = [0] * len(client_streams)
    active = [
        index for index, stream in enumerate(client_streams) if len(stream)
    ]
    merged: list[tuple[object, list[PageRequest]]] = []
    while active:
        index = active[rng.randrange(len(active))]
        merged.append(client_streams[index][positions[index]])
        positions[index] += 1
        if positions[index] == len(client_streams[index]):
            active.remove(index)
    return merged
