"""Compatibility shim: the database layout moved to the bufferpool layer.

:class:`Database` maps relations onto the flat device page space — a
layout concern of the page/tag layer, not of trace execution.  It lived
here historically, which made ``repro.workloads`` (whose TPC-C schema and
pgbench tables build on it) import *upward* into ``repro.engine`` — the
one package-level back-edge in the import graph.  The implementation now
lives in :mod:`repro.bufferpool.database`; this module re-exports it so
existing imports keep working.
"""

from repro.bufferpool.database import AppendCursor, Database, Relation

__all__ = ["AppendCursor", "Database", "Relation"]
