"""Configuration for the overload-resilient serving layer.

All time quantities are **virtual microseconds** on the shared
:class:`~repro.storage.clock.VirtualClock` — lint rule R006 forbids wall
clocks anywhere in this package, which is what keeps every admission,
deadline, and breaker decision byte-reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BreakerConfig", "ServingConfig", "SHED_POLICIES"]

#: The load-shedding policies the admission queue understands.
SHED_POLICIES = ("drop-newest", "drop-oldest", "client-fair")


@dataclass(frozen=True)
class BreakerConfig:
    """Latency-triggered circuit breaker over ACE batch sizes.

    The breaker watches a rolling window of request latencies.  When the
    window p99 exceeds ``p99_threshold_us`` it *trips*: ACE's write-back /
    eviction batches are degraded to ``degraded_n_w`` / ``degraded_n_e``
    (a full ``n_w``-page batch stalls the triggering request and everything
    queued behind it, so under a latency spike smaller batches cut the
    tail).  After ``cooldown_us`` of degraded running the breaker restores
    full batching on probation; ``probation`` clean evaluations close it
    again, another threshold breach re-trips it.

    Parameters
    ----------
    p99_threshold_us:
        Window p99 above which the breaker trips.
    window:
        Number of most-recent request latencies evaluated.
    min_samples:
        Evaluations are suppressed until the window holds this many
        samples (avoids tripping on the first slow request).
    eval_every:
        Evaluate the window p99 every that-many completions (the window
        itself is updated on every completion).
    cooldown_us:
        Virtual time to stay tripped (degraded) before probing recovery.
    probation:
        Clean evaluations required in the half-open state before the
        breaker fully closes.
    degraded_n_w, degraded_n_e:
        Batch sizes applied while tripped (clamped to the manager's
        configured sizes).
    """

    p99_threshold_us: float = 5_000.0
    window: int = 256
    min_samples: int = 32
    eval_every: int = 8
    cooldown_us: float = 50_000.0
    probation: int = 4
    degraded_n_w: int = 1
    degraded_n_e: int = 1

    def __post_init__(self) -> None:
        if self.p99_threshold_us <= 0:
            raise ValueError("p99 threshold must be positive")
        if self.window < 1 or self.min_samples < 1 or self.eval_every < 1:
            raise ValueError("window, min_samples and eval_every must be >= 1")
        if self.min_samples > self.window:
            raise ValueError("min_samples cannot exceed the window size")
        if self.cooldown_us <= 0:
            raise ValueError("cooldown must be positive")
        if self.probation < 1:
            raise ValueError("probation must be >= 1")
        if self.degraded_n_w < 1 or self.degraded_n_e < 1:
            raise ValueError("degraded batch sizes must be >= 1")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the request-serving layer.

    Parameters
    ----------
    queue_capacity:
        Bound of the admission queue.  Arrivals beyond it are shed
        according to ``shed_policy``.
    deadline_us:
        Per-request deadline, charged from *arrival* on the virtual clock.
        A request still queued past its deadline is dropped (``expired``);
        one that completes past it counts as ``completed_late`` and does
        not contribute to goodput.  ``0`` disables deadlines.
    shed_policy:
        ``"drop-newest"`` rejects the incoming request when the queue is
        full; ``"drop-oldest"`` evicts the head (oldest queued) to admit
        the newcomer; ``"client-fair"`` drops the newest request of the
        client holding the most queue slots (deterministic tie-break on
        the lower client id), so one aggressive session cannot starve the
        rest.
    arrival_interval_us:
        Open-loop arrival pacing: request ``i`` arrives at
        ``start + i * arrival_interval_us`` regardless of service progress
        (how offered load above capacity is modelled).  ``0`` selects the
        closed-loop model: the next request arrives when the server frees
        up, so the queue never overflows and shedding never engages.
    max_attempts:
        Dispatch attempts per request.  ``PoolExhaustedError`` and
        *transient* ``IOFaultError`` outcomes requeue the request with
        capped exponential backoff (below); permanent faults fail it
        immediately.
    requeue_backoff_us, requeue_backoff_multiplier, requeue_backoff_cap_us:
        Backoff schedule between dispatch attempts, charged to the virtual
        clock while the server keeps serving other requests: attempt ``k``
        (1-based) waits ``min(cap, base * multiplier**(k-1))``.
    pressure_threshold:
        Admission gate on :attr:`BufferPoolManager.pool_pressure`: when the
        fraction of pinned-or-dirty frames is at or above this value, new
        arrivals are shed before touching the queue.  ``None`` (default)
        disables the gate.
    breaker:
        Optional :class:`BreakerConfig`; ``None`` runs without a breaker.
    """

    queue_capacity: int = 64
    deadline_us: float = 50_000.0
    shed_policy: str = "drop-newest"
    arrival_interval_us: float = 0.0
    max_attempts: int = 4
    requeue_backoff_us: float = 200.0
    requeue_backoff_multiplier: float = 2.0
    requeue_backoff_cap_us: float = 5_000.0
    pressure_threshold: float | None = None
    breaker: BreakerConfig | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if self.deadline_us < 0:
            raise ValueError("deadline cannot be negative")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        if self.arrival_interval_us < 0:
            raise ValueError("arrival interval cannot be negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.requeue_backoff_us < 0 or self.requeue_backoff_cap_us < 0:
            raise ValueError("backoff times cannot be negative")
        if self.requeue_backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1.0")
        if self.pressure_threshold is not None and not (
            0.0 < self.pressure_threshold <= 1.0
        ):
            raise ValueError("pressure threshold must be in (0, 1]")

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retrying after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt}")
        backoff = self.requeue_backoff_us * (
            self.requeue_backoff_multiplier ** (attempt - 1)
        )
        return min(backoff, self.requeue_backoff_cap_us)
