"""Overload-resilient request serving in front of the execution engine.

This package models the request layer of a loaded DBMS: bounded admission
queues, per-request deadlines, capped-backoff requeue of transient
failures, configurable load shedding, and a latency-triggered circuit
breaker that degrades ACE batch sizes under pressure.  Everything is
deterministic on the virtual clock — see ``docs/architecture.md``,
"Overload & admission control".
"""

from repro.engine.serving.breaker import CircuitBreaker
from repro.engine.serving.config import SHED_POLICIES, BreakerConfig, ServingConfig
from repro.engine.serving.layer import ServingLayer
from repro.engine.serving.metrics import ClientStats, ServingMetrics
from repro.engine.serving.queue import AdmissionQueue, Request

__all__ = [
    "AdmissionQueue",
    "BreakerConfig",
    "CircuitBreaker",
    "ClientStats",
    "Request",
    "ServingConfig",
    "ServingLayer",
    "ServingMetrics",
    "SHED_POLICIES",
]
