"""Latency-triggered circuit breaker over ACE's batch sizes.

State machine (all transitions on the virtual clock, all deterministic)::

    CLOSED ──p99 > threshold──> OPEN (batches degraded)
    OPEN ──cooldown elapsed──> HALF_OPEN (full batches, on probation)
    HALF_OPEN ──`probation` clean evals──> CLOSED
    HALF_OPEN ──p99 > threshold──> OPEN (re-trip)

Rationale: an ACE write-back batch of ``n_w`` pages stalls the request
that triggered it — and, through head-of-line blocking, everything queued
behind it — for the whole batch.  When injected latency spikes (or a
device whose concurrency collapsed) push tail latency past the threshold,
trading batch amortisation for shorter stalls lowers p99; once pressure
clears, full batching returns.  Managers without the degraded-batching
hooks (the baseline) still get breaker *bookkeeping* (trip/restore ticks),
just no actuation.

The latency window is cleared at every transition so each state is judged
only on samples gathered while it was active.
"""

from __future__ import annotations

import math
from collections import deque

from repro.engine.serving.config import BreakerConfig

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Rolling-p99 breaker actuating ``enter/exit_degraded_batching``."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, config: BreakerConfig, manager: object) -> None:
        self.config = config
        self.state = self.CLOSED
        self._enter_degraded = getattr(manager, "enter_degraded_batching", None)
        self._exit_degraded = getattr(manager, "exit_degraded_batching", None)
        self._window: deque[float] = deque(maxlen=config.window)
        self._since_eval = 0
        self._opened_at_us = 0.0
        self._probation_left = 0
        #: Event ticks as ``(virtual_time_us, completed_count)``.
        self.trips: list[tuple[float, int]] = []
        self.restores: list[tuple[float, int]] = []
        self.recoveries: list[tuple[float, int]] = []

    @property
    def actuates(self) -> bool:
        """Whether the manager exposes the degraded-batching hooks."""
        return self._enter_degraded is not None

    def observe(self, latency_us: float, now_us: float, completed: int) -> None:
        """Feed one completed request's latency and advance the machine."""
        config = self.config
        if self.state == self.OPEN:
            if now_us - self._opened_at_us >= config.cooldown_us:
                self._restore(now_us, completed)
            return
        self._window.append(latency_us)
        self._since_eval += 1
        if (
            self._since_eval < config.eval_every
            or len(self._window) < config.min_samples
        ):
            return
        self._since_eval = 0
        if self._window_p99() > config.p99_threshold_us:
            self._trip(now_us, completed)
        elif self.state == self.HALF_OPEN:
            self._probation_left -= 1
            if self._probation_left <= 0:
                self._close(now_us, completed)

    def finish(self) -> None:
        """End of run: leave the manager at full batch sizes."""
        if self._exit_degraded is not None:
            self._exit_degraded()

    # --------------------------------------------------------- transitions

    def _trip(self, now_us: float, completed: int) -> None:
        self.state = self.OPEN
        self._opened_at_us = now_us
        self.trips.append((now_us, completed))
        self._window.clear()
        self._since_eval = 0
        if self._enter_degraded is not None:
            self._enter_degraded(
                self.config.degraded_n_w, self.config.degraded_n_e
            )

    def _restore(self, now_us: float, completed: int) -> None:
        self.state = self.HALF_OPEN
        self._probation_left = self.config.probation
        self.restores.append((now_us, completed))
        self._window.clear()
        self._since_eval = 0
        if self._exit_degraded is not None:
            self._exit_degraded()

    def _close(self, now_us: float, completed: int) -> None:
        self.state = self.CLOSED
        self.recoveries.append((now_us, completed))
        self._window.clear()
        self._since_eval = 0

    # ----------------------------------------------------------- internals

    def _window_p99(self) -> float:
        ordered = sorted(self._window)
        rank = math.ceil(0.99 * len(ordered))
        return ordered[max(0, rank - 1)]
