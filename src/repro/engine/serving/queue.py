"""Bounded admission queue with pluggable load shedding.

The queue is the serving layer's backpressure point: arrivals beyond
``capacity`` must displace something (drop-oldest, client-fair) or be
rejected (drop-newest).  All choices are deterministic — ties break on
stable, explicit keys — so a serving run is a pure function of (trace,
config, fault plan, seed).
"""

from __future__ import annotations

from collections import deque

__all__ = ["Request", "AdmissionQueue"]


class Request:
    """One in-flight client request tracked by the serving layer."""

    __slots__ = (
        "index",
        "client",
        "page",
        "is_write",
        "arrival_us",
        "deadline_us",
        "attempts",
        "not_before_us",
    )

    def __init__(
        self,
        index: int,
        client: int,
        page: int,
        is_write: bool,
        arrival_us: float,
        deadline_us: float,
    ) -> None:
        self.index = index
        self.client = client
        self.page = page
        self.is_write = is_write
        self.arrival_us = arrival_us
        #: Absolute virtual time; ``inf`` when deadlines are disabled.
        self.deadline_us = deadline_us
        #: Dispatch attempts made so far (incremented on failure).
        self.attempts = 0
        #: Earliest virtual time the next dispatch may happen (requeue
        #: backoff); 0 for a fresh request.
        self.not_before_us = 0.0

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return (
            f"Request(#{self.index} client={self.client} {kind}({self.page}) "
            f"arrived={self.arrival_us:.0f}us)"
        )


class AdmissionQueue:
    """FIFO admission queue bounded at ``capacity`` with shedding.

    :meth:`offer` returns the request that was shed — the incoming one
    (drop-newest, or client-fair deciding the newcomer's own session is
    the heaviest) or a displaced queued one — or ``None`` when the arrival
    was absorbed without shedding.
    """

    def __init__(self, capacity: int, shed_policy: str) -> None:
        self.capacity = capacity
        self.shed_policy = shed_policy
        self._queue: deque[Request] = deque()
        self._per_client: dict[int, int] = {}
        #: High-water mark of the queue length.
        self.peak = 0

    def __len__(self) -> int:
        return len(self._queue)

    def queued_for(self, client: int) -> int:
        return self._per_client.get(client, 0)

    def offer(self, request: Request) -> Request | None:
        """Admit ``request``, shedding per policy when full."""
        if len(self._queue) < self.capacity:
            self._append(request)
            return None
        if self.shed_policy == "drop-newest":
            return request
        if self.shed_policy == "drop-oldest":
            victim = self._queue.popleft()
            self._account_removed(victim)
            self._append(request)
            return victim
        # client-fair: shed the *newest* queued request of the client
        # occupying the most slots.  The newcomer's own session counts too
        # (as if admitted): if it already holds the most slots, the
        # newcomer itself is shed — one hot client cannot displace others.
        counts = dict(self._per_client)
        counts[request.client] = counts.get(request.client, 0) + 1
        heaviest = max(counts, key=lambda client: (counts[client], -client))
        if heaviest == request.client:
            return request
        victim = self._remove_newest_of(heaviest)
        self._append(request)
        return victim

    def pop(self) -> Request:
        """Dequeue the oldest request."""
        request = self._queue.popleft()
        self._account_removed(request)
        return request

    def expire_due(self, now_us: float) -> list[Request]:
        """Remove and return every queued request past its deadline."""
        if not self._queue:
            return []
        expired = [r for r in self._queue if r.deadline_us <= now_us]
        if expired:
            for request in expired:
                self._queue.remove(request)
                self._account_removed(request)
        return expired

    # ----------------------------------------------------------- internals

    def _append(self, request: Request) -> None:
        self._queue.append(request)
        self._per_client[request.client] = (
            self._per_client.get(request.client, 0) + 1
        )
        if len(self._queue) > self.peak:
            self.peak = len(self._queue)

    def _account_removed(self, request: Request) -> None:
        count = self._per_client[request.client] - 1
        if count:
            self._per_client[request.client] = count
        else:
            del self._per_client[request.client]

    def _remove_newest_of(self, client: int) -> Request:
        for position in range(len(self._queue) - 1, -1, -1):
            if self._queue[position].client == client:
                victim = self._queue[position]
                del self._queue[position]
                self._account_removed(victim)
                return victim
        raise AssertionError(f"no queued request for client {client}")
