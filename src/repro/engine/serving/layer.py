"""The serving layer: deterministic request admission in front of a manager.

``ServingLayer`` models what sits between "millions of users" and the
bufferpool in a real system: per-client sessions whose requests arrive on
the virtual clock (open-loop pacing) or back-to-back (closed loop), wait in
a bounded admission queue, carry deadlines, are requeued with capped
backoff on transient failures (`PoolExhaustedError`, transient
``IOFaultError``), are shed under overload, and are watched by an optional
circuit breaker that degrades ACE batch sizes when tail latency spikes.

Everything runs on the shared :class:`~repro.storage.clock.VirtualClock`;
given the same (trace, config, fault plan) two runs produce identical
metrics, queue decisions, and breaker ticks.  The layer is pay-for-what-
you-use: ``run_trace(..., serving=None)`` never touches this module's
hot path.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence

from repro.engine.latency import LatencyRecorder
from repro.engine.metrics import RunMetrics
from repro.engine.serving.breaker import CircuitBreaker
from repro.engine.serving.config import ServingConfig
from repro.engine.serving.metrics import ServingMetrics
from repro.engine.serving.queue import AdmissionQueue, Request
from repro.errors import IOFaultError, PoolExhaustedError
from repro.workloads.tpcc.transactions import TransactionType
from repro.workloads.trace import PageRequest, Trace

__all__ = ["ServingLayer"]

_INF = float("inf")


class ServingLayer:
    """Serves a trace or transaction stream through a buffer manager."""

    def __init__(self, manager, config: ServingConfig | None = None) -> None:
        self.manager = manager
        self.config = config if config is not None else ServingConfig()
        #: Metrics of the most recent serve call.
        self.metrics: ServingMetrics | None = None

    # -------------------------------------------------------- trace mode

    def serve_trace(
        self,
        trace: Trace,
        options=None,
        bg_writer=None,
        checkpointer=None,
        label: str | None = None,
        latencies: LatencyRecorder | None = None,
    ) -> RunMetrics:
        """Serve ``trace`` under admission control; returns ``RunMetrics``.

        The trace's ``client_ids`` side-channel (see
        :func:`~repro.engine.multiclient.interleave_traces`) attributes
        requests to sessions; a plain trace is billed to client 0.
        """
        options = self._resolve_options(options)
        manager = self.manager
        config = self.config
        clock = manager.device.clock
        start_us = clock.now_us
        start_reads = manager.device.stats.read_time_us
        start_writes = manager.device.stats.write_time_us

        metrics = self._begin_run()
        queue = self._queue
        deferred = self._deferred
        client_ids = trace.client_ids
        pages = trace.pages
        writes = trace.writes
        total = len(trace)
        interval = config.arrival_interval_us
        deadline_us = config.deadline_us if config.deadline_us > 0 else _INF
        cpu_per_op = options.cpu_us_per_op
        commit_every = options.commit_every_ops
        wal = manager.wal
        next_bg_writer_us = start_us + options.bg_writer_interval_us
        since_commit = 0
        next_index = 0  # arrival pointer into the trace

        while next_index < total or deferred or len(queue):
            now = clock.now_us
            # 1. Requeued requests whose backoff elapsed rejoin the queue.
            self._promote_deferred(now)
            # 2. Admit arrivals.
            if interval:
                while (
                    next_index < total
                    and start_us + next_index * interval <= now
                ):
                    arrival = start_us + next_index * interval
                    self._admit(
                        Request(
                            next_index,
                            client_ids[next_index] if client_ids else 0,
                            pages[next_index],
                            writes[next_index],
                            arrival,
                            arrival + deadline_us,
                        )
                    )
                    next_index += 1
            elif not len(queue) and next_index < total:
                # Closed loop: the next request "arrives" as the server
                # frees up, so backpressure cannot build by construction.
                self._admit(
                    Request(
                        next_index,
                        client_ids[next_index] if client_ids else 0,
                        pages[next_index],
                        writes[next_index],
                        now,
                        now + deadline_us,
                    )
                )
                next_index += 1
            # 3. Nothing runnable: jump the clock to the next event.
            if not len(queue):
                next_event = _INF
                if deferred:
                    next_event = deferred[0][0]
                if interval and next_index < total:
                    next_event = min(
                        next_event, start_us + next_index * interval
                    )
                if next_event == _INF or next_event <= now:
                    continue
                clock.advance(next_event - now)
                continue
            # 4. Dispatch the queue head.
            request = queue.pop()
            if request.deadline_us <= now:
                self._expire(request)
                continue
            if cpu_per_op:
                clock.advance(cpu_per_op)
            try:
                manager.access(request.page, request.is_write)
            except PoolExhaustedError:
                self._requeue_or_fail(request, clock.now_us)
            except IOFaultError as fault:
                if _is_permanent(fault):
                    self._fail(request)
                else:
                    self._requeue_or_fail(request, clock.now_us)
            else:
                self._complete(request, clock.now_us, latencies)
                if wal is not None:
                    if request.is_write:
                        self._versions[request.page] = (
                            self._versions.get(request.page, 0) + 1
                        )
                    if commit_every:
                        since_commit += 1
                        if since_commit >= commit_every:
                            wal.flush()  # commit point: durable prefix
                            metrics.committed_versions = dict(self._versions)
                            since_commit = 0
            if bg_writer is not None and clock.now_us >= next_bg_writer_us:
                bg_writer.run_round()
                next_bg_writer_us = clock.now_us + options.bg_writer_interval_us
            if checkpointer is not None:
                checkpointer.maybe_checkpoint()

        self._end_run(clock.now_us - start_us)
        io_time = (
            manager.device.stats.read_time_us
            - start_reads
            + manager.device.stats.write_time_us
            - start_writes
        )
        return RunMetrics(
            label=(
                label
                if label is not None
                else f"{manager.variant}/{trace.name}+serving"
            ),
            elapsed_us=metrics.elapsed_us,
            ops=metrics.completed,
            buffer=manager.stats.copy(),
            device=manager.device.stats.copy(),
            ftl=manager.device.ftl.counters.copy() if manager.device.ftl else None,
            wal_pages_written=manager.wal.pages_written if manager.wal else 0,
            io_time_us=io_time,
            cpu_time_us=metrics.elapsed_us - io_time,
            serving=metrics,
        )

    # -------------------------------------------------- transaction mode

    def serve_transactions(
        self,
        transactions: Iterable[tuple[TransactionType, list[PageRequest]]],
        options=None,
        bg_writer=None,
        checkpointer=None,
        label: str = "transactions+serving",
        client_ids: Sequence[int] | None = None,
    ) -> RunMetrics:
        """Serve a transaction stream; the admission unit is a transaction.

        Admission, deadlines, and shedding act on whole transactions
        (their page requests stay atomic).  A transaction hitting a
        transient failure is requeued only when no write of it has been
        applied yet (there is no rollback in the simulator); later
        failures count the transaction as ``failed``.
        """
        options = self._resolve_options(options)
        manager = self.manager
        config = self.config
        clock = manager.device.clock
        start_us = clock.now_us
        start_reads = manager.device.stats.read_time_us
        start_writes = manager.device.stats.write_time_us

        metrics = self._begin_run()
        queue = self._queue
        deferred = self._deferred
        stream = list(transactions)
        total = len(stream)
        if client_ids is not None and len(client_ids) != total:
            raise ValueError(
                f"client_ids ({len(client_ids)}) and transactions ({total}) "
                "differ in length"
            )
        interval = config.arrival_interval_us
        deadline_us = config.deadline_us if config.deadline_us > 0 else _INF
        cpu_per_op = options.cpu_us_per_op
        wal = manager.wal
        next_bg_writer_us = start_us + options.bg_writer_interval_us
        next_index = 0
        executed_ops = 0
        new_order_count = 0

        while next_index < total or deferred or len(queue):
            now = clock.now_us
            self._promote_deferred(now)
            if interval:
                while (
                    next_index < total
                    and start_us + next_index * interval <= now
                ):
                    arrival = start_us + next_index * interval
                    self._admit(
                        Request(
                            next_index,
                            client_ids[next_index] if client_ids else 0,
                            -1,
                            False,
                            arrival,
                            arrival + deadline_us,
                        )
                    )
                    next_index += 1
            elif not len(queue) and next_index < total:
                self._admit(
                    Request(
                        next_index,
                        client_ids[next_index] if client_ids else 0,
                        -1,
                        False,
                        now,
                        now + deadline_us,
                    )
                )
                next_index += 1
            if not len(queue):
                next_event = _INF
                if deferred:
                    next_event = deferred[0][0]
                if interval and next_index < total:
                    next_event = min(
                        next_event, start_us + next_index * interval
                    )
                if next_event == _INF or next_event <= now:
                    continue
                clock.advance(next_event - now)
                continue
            request = queue.pop()
            if request.deadline_us <= now:
                self._expire(request)
                continue
            kind, requests = stream[request.index]
            if options.cpu_us_per_transaction:
                clock.advance(options.cpu_us_per_transaction)
            writes_applied = 0
            outcome = "completed"
            for page_request in requests:
                if cpu_per_op:
                    clock.advance(cpu_per_op)
                try:
                    manager.access(page_request.page, page_request.is_write)
                except PoolExhaustedError:
                    outcome = "requeue" if not writes_applied else "failed"
                    break
                except IOFaultError as fault:
                    if _is_permanent(fault) or writes_applied:
                        outcome = "failed"
                    else:
                        outcome = "requeue"
                    break
                else:
                    executed_ops += 1
                    if page_request.is_write:
                        writes_applied += 1
                        if wal is not None:
                            self._versions[page_request.page] = (
                                self._versions.get(page_request.page, 0) + 1
                            )
            if outcome == "requeue":
                self._requeue_or_fail(request, clock.now_us)
            elif outcome == "failed":
                self._fail(request)
            else:
                if wal is not None:
                    wal.flush()  # commit: WAL must be durable
                    metrics.committed_versions = dict(self._versions)
                self._complete(request, clock.now_us, None)
                metrics.transactions_completed += 1
                if kind is TransactionType.NEW_ORDER:
                    new_order_count += 1
            if bg_writer is not None and clock.now_us >= next_bg_writer_us:
                bg_writer.run_round()
                next_bg_writer_us = clock.now_us + options.bg_writer_interval_us
            if checkpointer is not None:
                checkpointer.maybe_checkpoint()

        self._end_run(clock.now_us - start_us)
        io_time = (
            manager.device.stats.read_time_us
            - start_reads
            + manager.device.stats.write_time_us
            - start_writes
        )
        return RunMetrics(
            label=label,
            elapsed_us=metrics.elapsed_us,
            ops=executed_ops,
            transactions=metrics.transactions_completed,
            new_order_transactions=new_order_count,
            buffer=manager.stats.copy(),
            device=manager.device.stats.copy(),
            ftl=manager.device.ftl.counters.copy() if manager.device.ftl else None,
            wal_pages_written=manager.wal.pages_written if manager.wal else 0,
            io_time_us=io_time,
            cpu_time_us=metrics.elapsed_us - io_time,
            serving=metrics,
        )

    # ------------------------------------------------------- run plumbing

    def _resolve_options(self, options):
        if options is not None:
            return options
        from repro.engine.executor import ExecutionOptions

        return ExecutionOptions()

    def _begin_run(self) -> ServingMetrics:
        config = self.config
        self.metrics = metrics = ServingMetrics()
        self._queue = AdmissionQueue(config.queue_capacity, config.shed_policy)
        #: Heap of (not_before_us, request index, request) — the index
        #: breaks time ties deterministically.
        self._deferred: list[tuple[float, int, Request]] = []
        self._versions: dict[int, int] = {}
        self._breaker = (
            CircuitBreaker(config.breaker, self.manager)
            if config.breaker is not None
            else None
        )
        return metrics

    def _end_run(self, elapsed_us: float) -> None:
        metrics = self.metrics
        metrics.elapsed_us = elapsed_us
        metrics.queue_peak = self._queue.peak
        if self._breaker is not None:
            metrics.breaker_trips = list(self._breaker.trips)
            metrics.breaker_restores = list(self._breaker.restores)
            metrics.breaker_recoveries = list(self._breaker.recoveries)
            self._breaker.finish()

    # ------------------------------------------------------ request steps

    def _admit(self, request: Request) -> None:
        metrics = self.metrics
        client = metrics.client(request.client)
        metrics.offered += 1
        client.offered += 1
        threshold = self.config.pressure_threshold
        if (
            threshold is not None
            and self.manager.pool_pressure >= threshold
        ):
            metrics.shed += 1
            metrics.shed_pressure += 1
            client.shed += 1
            return
        queue = self._queue
        if len(queue) >= queue.capacity:
            # Expired entries should not force shedding; sweep them first.
            for expired in queue.expire_due(self.manager.device.clock.now_us):
                self._expire(expired)
        victim = queue.offer(request)
        if victim is not request:
            metrics.admitted += 1
            client.admitted += 1
        if victim is not None:
            metrics.shed += 1
            metrics.client(victim.client).shed += 1

    def _promote_deferred(self, now_us: float) -> None:
        deferred = self._deferred
        while deferred and deferred[0][0] <= now_us:
            _, _, request = heapq.heappop(deferred)
            victim = self._queue.offer(request)
            if victim is not None:
                metrics = self.metrics
                metrics.shed += 1
                metrics.client(victim.client).shed += 1

    def _requeue_or_fail(self, request: Request, now_us: float) -> None:
        request.attempts += 1
        if request.attempts >= self.config.max_attempts:
            self._fail(request)
            return
        metrics = self.metrics
        metrics.requeued += 1
        request.not_before_us = now_us + self.config.backoff_for(request.attempts)
        heapq.heappush(
            self._deferred, (request.not_before_us, request.index, request)
        )

    def _expire(self, request: Request) -> None:
        metrics = self.metrics
        metrics.expired += 1
        metrics.client(request.client).expired += 1

    def _fail(self, request: Request) -> None:
        metrics = self.metrics
        metrics.failed += 1
        metrics.client(request.client).failed += 1

    def _complete(
        self,
        request: Request,
        now_us: float,
        latencies: LatencyRecorder | None,
    ) -> None:
        metrics = self.metrics
        client = metrics.client(request.client)
        latency = now_us - request.arrival_us
        metrics.completed += 1
        client.completed += 1
        if now_us > request.deadline_us:
            metrics.completed_late += 1
            client.completed_late += 1
        metrics.latency.record(latency)
        client.latency.record(latency)
        if latencies is not None:
            latencies.record(latency)
        if self._breaker is not None:
            self._breaker.observe(latency, now_us, metrics.completed)


def _is_permanent(fault: IOFaultError) -> bool:
    """Whether no retry/requeue can ever serve this request."""
    if fault.permanent:
        return True
    last = getattr(fault, "last_fault", None)
    return last is not None and last.permanent
