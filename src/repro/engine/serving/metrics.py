"""Serving-layer accounting: admission outcomes, per-client tails, goodput.

Every count is an exact integer over virtual-time events, so two runs of
the same (trace, config, fault plan) produce identical metrics — the
overload harness and the chaos tests assert on that.
"""

from __future__ import annotations

from repro.engine.latency import LatencyRecorder

__all__ = ["ClientStats", "ServingMetrics"]


class ClientStats:
    """Per-client-session slice of the serving counters."""

    __slots__ = (
        "client",
        "offered",
        "admitted",
        "shed",
        "expired",
        "completed",
        "completed_late",
        "failed",
        "latency",
    )

    def __init__(self, client: int) -> None:
        self.client = client
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.expired = 0
        self.completed = 0
        self.completed_late = 0
        self.failed = 0
        #: Arrival-to-completion latency of completed requests (queue wait
        #: + requeue backoff + service time, all virtual).
        self.latency = LatencyRecorder()

    @property
    def on_time(self) -> int:
        return self.completed - self.completed_late

    def summary(self) -> dict[str, float]:
        return {
            "client": float(self.client),
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "expired": float(self.expired),
            "completed": float(self.completed),
            "completed_late": float(self.completed_late),
            "failed": float(self.failed),
            "p50_us": self.latency.p50_us,
            "p99_us": self.latency.p99_us,
        }


class ServingMetrics:
    """Aggregate outcome of one serving run.

    Request accounting is a partition: every offered request ends up in
    exactly one of ``shed``, ``expired``, ``failed``, or ``completed``
    (``completed_late`` is the subset of ``completed`` that missed its
    deadline).  ``requeued`` counts backoff round-trips, not requests.
    """

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        #: Subset of ``shed`` caused by the pool-pressure admission gate
        #: (the rest is queue overflow).
        self.shed_pressure = 0
        self.expired = 0
        self.completed = 0
        self.completed_late = 0
        self.failed = 0
        #: Requeue events (a request failing twice counts twice).
        self.requeued = 0
        self.latency = LatencyRecorder()
        self.per_client: dict[int, ClientStats] = {}
        self.queue_peak = 0
        self.elapsed_us = 0.0
        #: Transactions completed / shed (transaction-mode runs only).
        self.transactions_completed = 0
        #: Breaker event ticks, each ``(virtual_time_us, completed_count)``:
        #: ``trips`` = CLOSED/HALF_OPEN -> OPEN, ``restores`` = OPEN ->
        #: HALF_OPEN (full batching back on probation), ``recoveries`` =
        #: HALF_OPEN -> CLOSED.
        self.breaker_trips: list[tuple[float, int]] = []
        self.breaker_restores: list[tuple[float, int]] = []
        self.breaker_recoveries: list[tuple[float, int]] = []
        #: Per-page completed-write versions at the last WAL flush: the
        #: ledger the chaos harness audits against when shedding means the
        #: raw trace prefix no longer describes what actually executed.
        self.committed_versions: dict[int, int] = {}

    def client(self, client: int) -> ClientStats:
        stats = self.per_client.get(client)
        if stats is None:
            stats = self.per_client[client] = ClientStats(client)
        return stats

    # ----------------------------------------------------------- derived

    @property
    def on_time(self) -> int:
        """Completions that met their deadline (the goodput numerator)."""
        return self.completed - self.completed_late

    @property
    def goodput_per_s(self) -> float:
        """On-time completions per virtual second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.on_time / (self.elapsed_us / 1e6)

    @property
    def offered_per_s(self) -> float:
        """Offered load in requests per virtual second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.offered / (self.elapsed_us / 1e6)

    @property
    def breaker_tripped(self) -> int:
        return len(self.breaker_trips)

    def summary(self) -> dict[str, float]:
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "shed_pressure": float(self.shed_pressure),
            "expired": float(self.expired),
            "requeued": float(self.requeued),
            "completed": float(self.completed),
            "completed_late": float(self.completed_late),
            "failed": float(self.failed),
            "queue_peak": float(self.queue_peak),
            "p50_us": self.latency.p50_us,
            "p99_us": self.latency.p99_us,
            "goodput_per_s": self.goodput_per_s,
            "offered_per_s": self.offered_per_s,
            "breaker_trips": float(len(self.breaker_trips)),
        }

    def __repr__(self) -> str:
        return (
            f"ServingMetrics(offered={self.offered}, "
            f"completed={self.completed} ({self.on_time} on time), "
            f"shed={self.shed}, expired={self.expired}, "
            f"failed={self.failed}, requeued={self.requeued})"
        )
