"""Execution engine: drives traces and transaction streams through a manager.

The executor is the simulator's analogue of the paper's pgbench / TPC-C
clients hitting PostgreSQL: it replays page requests against a buffer
manager, charges a small CPU cost per request on the shared virtual clock
(so hit-heavy phases take nonzero time, as real query processing does), and
optionally schedules the background writer and checkpointer on virtual-time
intervals.  All reported latencies are virtual — the deterministic sum of
modelled CPU and device time — which is what makes baseline-vs-ACE
comparisons exact rather than noisy.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.manager import BufferPoolManager
from repro.engine.latency import LatencyRecorder
from repro.engine.metrics import RunMetrics
from repro.workloads.tpcc.transactions import TransactionType
from repro.workloads.trace import PageRequest, Trace

__all__ = ["ExecutionOptions", "run_trace", "run_transactions"]


@dataclass(frozen=True)
class ExecutionOptions:
    """Knobs of the execution model.

    Parameters
    ----------
    cpu_us_per_op:
        CPU time charged per page request (query processing share).
    cpu_us_per_transaction:
        Extra CPU time charged per transaction (parse/plan/commit path).
    bg_writer_interval_us, checkpoint_interval_us:
        Virtual-time periods for the background processes (when attached).
    commit_every_ops:
        When positive, flush the WAL every that-many trace requests —
        page-trace workloads then have commit points (durability
        boundaries) the way transaction streams do, which the chaos
        harness uses to define "committed updates".  ``0`` (the default)
        keeps the historical behaviour: no mid-trace WAL flushes.
    """

    cpu_us_per_op: float = 2.0
    cpu_us_per_transaction: float = 20.0
    bg_writer_interval_us: float = 50_000.0
    checkpoint_interval_us: float = 10e6
    commit_every_ops: int = 0

    def __post_init__(self) -> None:
        if self.cpu_us_per_op < 0 or self.cpu_us_per_transaction < 0:
            raise ValueError("CPU costs cannot be negative")
        if self.bg_writer_interval_us <= 0 or self.checkpoint_interval_us <= 0:
            raise ValueError("background intervals must be positive")
        if self.commit_every_ops < 0:
            raise ValueError("commit_every_ops cannot be negative")


def run_trace(
    manager: BufferPoolManager,
    trace: Trace,
    options: ExecutionOptions | None = None,
    bg_writer: BackgroundWriter | None = None,
    checkpointer: Checkpointer | None = None,
    label: str | None = None,
    latencies: LatencyRecorder | None = None,
    warmup_ops: int = 0,
    serving=None,
) -> RunMetrics:
    """Replay ``trace`` against ``manager`` and collect metrics.

    Pass a :class:`LatencyRecorder` as ``latencies`` to additionally
    capture the per-request latency distribution (mean/p50/p95/p99).

    ``warmup_ops`` replays that many leading requests before measurement
    starts (the pool fills, stats and clock baselines reset afterwards),
    for steady-state methodology.

    ``serving`` enables the overload-resilient admission layer: pass a
    :class:`~repro.engine.serving.ServingConfig` (or a prebuilt
    :class:`~repro.engine.serving.ServingLayer` bound to ``manager``) and
    the trace is served through a bounded admission queue with deadlines,
    load shedding, requeue backoff, and an optional circuit breaker; the
    returned metrics carry a ``serving`` field.  ``None`` (the default)
    keeps the historical direct-replay path, at zero overhead.
    """
    if options is None:
        options = ExecutionOptions()
    if warmup_ops:
        if warmup_ops >= len(trace):
            raise ValueError(
                f"warmup ({warmup_ops}) must leave measured requests "
                f"(trace has {len(trace)})"
            )
        for page, is_write in zip(
            trace.pages[:warmup_ops], trace.writes[:warmup_ops]
        ):
            manager.access(page, is_write)
        manager.stats = type(manager.stats)()
        # Measurement boundary: device (and FTL) counters must cover only
        # the measured window, matching the buffer-stats reset above.
        manager.device.reset_stats()
        trace = trace.slice(warmup_ops, len(trace))
    if serving is not None:
        from repro.engine.serving.layer import ServingLayer

        layer = (
            serving
            if isinstance(serving, ServingLayer)
            else ServingLayer(manager, serving)
        )
        if layer.manager is not manager:
            raise ValueError("serving layer is bound to a different manager")
        return layer.serve_trace(
            trace,
            options=options,
            bg_writer=bg_writer,
            checkpointer=checkpointer,
            label=label,
            latencies=latencies,
        )
    clock = manager.device.clock
    start_us = clock.now_us
    start_reads = manager.device.stats.read_time_us
    start_writes = manager.device.stats.write_time_us
    cpu_per_op = options.cpu_us_per_op

    if (
        latencies is None
        and bg_writer is None
        and checkpointer is None
        and not options.commit_every_ops
    ):
        # Fast path: nothing observes the clock between requests, so the
        # per-op CPU charge can be applied in one advance at the end
        # (identical modulo float-summation rounding).  Hoisting
        # ``manager.access`` and zipping the parallel arrays directly is
        # worth ~15% on hit-heavy traces.
        access = manager.access
        for page, is_write in zip(trace.pages, trace.writes):
            access(page, is_write)
        if cpu_per_op:
            clock.advance(cpu_per_op * len(trace))
    else:
        access = manager.access
        advance = clock.advance
        next_bg_writer_us = start_us + options.bg_writer_interval_us
        commit_every = options.commit_every_ops
        wal = manager.wal
        since_commit = 0
        for page, is_write in zip(trace.pages, trace.writes):
            request_start_us = clock.now_us
            if cpu_per_op:
                advance(cpu_per_op)
            access(page, is_write)
            if commit_every and wal is not None:
                since_commit += 1
                if since_commit >= commit_every:
                    wal.flush()  # commit point: updates so far are durable
                    since_commit = 0
            if latencies is not None:
                latencies.record(clock.now_us - request_start_us)
            if bg_writer is not None and clock.now_us >= next_bg_writer_us:
                bg_writer.run_round()
                next_bg_writer_us = clock.now_us + options.bg_writer_interval_us
            if checkpointer is not None:
                checkpointer.maybe_checkpoint()

    elapsed = clock.now_us - start_us
    io_time = (
        manager.device.stats.read_time_us
        - start_reads
        + manager.device.stats.write_time_us
        - start_writes
    )
    return RunMetrics(
        label=label if label is not None else f"{manager.variant}/{trace.name}",
        elapsed_us=elapsed,
        ops=len(trace),
        buffer=manager.stats.copy(),
        device=manager.device.stats.copy(),
        ftl=manager.device.ftl.counters.copy() if manager.device.ftl else None,
        wal_pages_written=manager.wal.pages_written if manager.wal else 0,
        io_time_us=io_time,
        cpu_time_us=elapsed - io_time,
    )


def run_transactions(
    manager: BufferPoolManager,
    transactions: Iterable[tuple[TransactionType, list[PageRequest]]],
    options: ExecutionOptions | None = None,
    bg_writer: BackgroundWriter | None = None,
    checkpointer: Checkpointer | None = None,
    label: str = "transactions",
    serving=None,
) -> RunMetrics:
    """Run a (type, requests) transaction stream; tracks tpmC.

    Transactions execute back to back on the virtual clock (the paper's
    gains are I/O-path effects, so a single-stream model preserves relative
    behaviour; see DESIGN.md).

    ``serving`` (a :class:`~repro.engine.serving.ServingConfig` or bound
    :class:`~repro.engine.serving.ServingLayer`) routes the stream through
    the admission layer with whole transactions as the admission unit; see
    :meth:`ServingLayer.serve_transactions`.
    """
    if options is None:
        options = ExecutionOptions()
    if serving is not None:
        from repro.engine.serving.layer import ServingLayer

        layer = (
            serving
            if isinstance(serving, ServingLayer)
            else ServingLayer(manager, serving)
        )
        if layer.manager is not manager:
            raise ValueError("serving layer is bound to a different manager")
        return layer.serve_transactions(
            transactions,
            options=options,
            bg_writer=bg_writer,
            checkpointer=checkpointer,
            label=label,
        )
    clock = manager.device.clock
    start_us = clock.now_us
    start_reads = manager.device.stats.read_time_us
    start_writes = manager.device.stats.write_time_us
    cpu_per_op = options.cpu_us_per_op

    ops = 0
    transaction_count = 0
    new_order_count = 0
    if bg_writer is None and checkpointer is None:
        # Fast path (see run_trace): no mid-run clock observers, so the
        # per-op and per-transaction CPU charges collapse into one advance.
        access = manager.access
        wal = manager.wal
        wal_flush = wal.flush if wal is not None else None
        for kind, requests in transactions:
            for request in requests:
                access(request.page, request.is_write)
            ops += len(requests)
            if wal_flush is not None:
                wal_flush()  # commit: WAL must be durable
            transaction_count += 1
            if kind is TransactionType.NEW_ORDER:
                new_order_count += 1
        cpu_total = (
            options.cpu_us_per_transaction * transaction_count
            + cpu_per_op * ops
        )
        if cpu_total:
            clock.advance(cpu_total)
    else:
        next_bg_writer_us = start_us + options.bg_writer_interval_us
        for kind, requests in transactions:
            if options.cpu_us_per_transaction:
                clock.advance(options.cpu_us_per_transaction)
            for request in requests:
                if cpu_per_op:
                    clock.advance(cpu_per_op)
                manager.access(request.page, request.is_write)
                ops += 1
            if manager.wal is not None:
                manager.wal.flush()  # commit: WAL must be durable
            transaction_count += 1
            if kind is TransactionType.NEW_ORDER:
                new_order_count += 1
            if bg_writer is not None and clock.now_us >= next_bg_writer_us:
                bg_writer.run_round()
                next_bg_writer_us = clock.now_us + options.bg_writer_interval_us
            if checkpointer is not None:
                checkpointer.maybe_checkpoint()

    elapsed = clock.now_us - start_us
    io_time = (
        manager.device.stats.read_time_us
        - start_reads
        + manager.device.stats.write_time_us
        - start_writes
    )
    return RunMetrics(
        label=label,
        elapsed_us=elapsed,
        ops=ops,
        transactions=transaction_count,
        new_order_transactions=new_order_count,
        buffer=manager.stats.copy(),
        device=manager.device.stats.copy(),
        ftl=manager.device.ftl.counters.copy() if manager.device.ftl else None,
        wal_pages_written=manager.wal.pages_written if manager.wal else 0,
        io_time_us=io_time,
        cpu_time_us=elapsed - io_time,
    )
