"""Execution engine: drives traces and transaction streams through a manager.

The executor is the simulator's analogue of the paper's pgbench / TPC-C
clients hitting PostgreSQL: it replays page requests against a buffer
manager, charges a small CPU cost per request on the shared virtual clock
(so hit-heavy phases take nonzero time, as real query processing does), and
optionally schedules the background writer and checkpointer on virtual-time
intervals.  All reported latencies are virtual — the deterministic sum of
modelled CPU and device time — which is what makes baseline-vs-ACE
comparisons exact rather than noisy.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.manager import BufferPoolManager
from repro.errors import PageNotBufferedError
from repro.engine.latency import LatencyRecorder
from repro.engine.metrics import RunMetrics
from repro.workloads.tpcc.transactions import TransactionType
from repro.workloads.trace import PageRequest, Trace

__all__ = ["ExecutionOptions", "run_trace", "run_transactions"]


@dataclass(frozen=True)
class ExecutionOptions:
    """Knobs of the execution model.

    Parameters
    ----------
    cpu_us_per_op:
        CPU time charged per page request (query processing share).
    cpu_us_per_transaction:
        Extra CPU time charged per transaction (parse/plan/commit path).
    bg_writer_interval_us, checkpoint_interval_us:
        Virtual-time periods for the background processes (when attached).
    commit_every_ops:
        When positive, flush the WAL every that-many trace requests —
        page-trace workloads then have commit points (durability
        boundaries) the way transaction streams do, which the chaos
        harness uses to define "committed updates".  ``0`` (the default)
        keeps the historical behaviour: no mid-trace WAL flushes.
    """

    cpu_us_per_op: float = 2.0
    cpu_us_per_transaction: float = 20.0
    bg_writer_interval_us: float = 50_000.0
    checkpoint_interval_us: float = 10e6
    commit_every_ops: int = 0

    def __post_init__(self) -> None:
        if self.cpu_us_per_op < 0 or self.cpu_us_per_transaction < 0:
            raise ValueError("CPU costs cannot be negative")
        if self.bg_writer_interval_us <= 0 or self.checkpoint_interval_us <= 0:
            raise ValueError("background intervals must be positive")
        if self.commit_every_ops < 0:
            raise ValueError("commit_every_ops cannot be negative")


def _replay_turbo_baseline(manager: BufferPoolManager, trace: Trace) -> None:
    """Replay ``trace`` against a bare baseline manager, fully inlined.

    The strictest specialisation: requires the *base* manager class (no
    ACE override of ``_handle_miss``), a bare :class:`SimulatedSSD` (the
    manager's ``_turbo`` tuple exists), no WAL, and no observer.  Under
    those conditions every step of the request path — probe, hit
    bookkeeping, victim write-back, eviction, device read, install, dirty
    marking — is straight-line code here, and the *commuting* integer
    counters (hits, evictions, device read/write counts, the batch
    histogram) are accumulated in locals and flushed once.  Floating-point
    accounting (the virtual clock and device time sums) stays sequential
    per event, so the resulting metrics are byte-identical to the
    per-request replay, not merely equal modulo summation order.

    Counter locals that must not count a failed request (device reads,
    write-backs) are bumped exactly where the per-request path bumps
    them, so an exception mid-trace flushes the same totals the
    per-request replay would have recorded.
    """
    (
        free,
        slots,
        frame_of,
        array_slots,
        payloads,
        page_of,
        dirty_bits,
        pin_counts,
        prefetched_bits,
        device_payloads,
        read_us,
        write_us,
        num_pages,
        ftl,
        clock,
        select_victim,
        policy_remove,
        policy_insert,
        note_clean,
        dirty_discard,
    ) = manager._turbo
    probe_space = manager._probe_space
    on_access = manager._policy_on_access
    note_dirty = manager._note_dirty
    dirty_add = manager._dirty_set.add
    stats = manager.stats
    device_stats = manager._plain_device.stats
    hits = 0
    misses = 0
    prefetch_hits = 0
    read_requests = 0
    write_requests = 0
    evictions = 0
    clean_evictions = 0
    dirty_evictions = 0
    prefetch_unused = 0
    reads_done = 0
    writebacks_done = 0
    try:
        for page, is_write in zip(trace.pages, trace.writes):
            frame_id = slots[page] if 0 <= page < probe_space else -1
            if frame_id >= 0:
                hits += 1
                if prefetched_bits[frame_id]:
                    prefetched_bits[frame_id] = 0
                    prefetch_hits += 1
                if is_write:
                    write_requests += 1
                    on_access(page, True)
                else:
                    read_requests += 1
                    on_access(page, False)
                    continue
            else:
                misses += 1
                if is_write:
                    write_requests += 1
                else:
                    read_requests += 1
                # Miss: evict (when full), read, install — the manager's
                # turbo ``_handle_miss`` body, step for step.
                if not free:
                    victim = select_victim()
                    if victim is None:
                        raise manager._pool_exhausted(page)
                    victim_frame = slots[victim]
                    if dirty_bits[victim_frame]:
                        dirty_evictions += 1
                        clock._now_us += write_us
                        device_stats.write_time_us += write_us
                        device_payloads[victim] = payloads[victim_frame]
                        if ftl is not None:
                            ftl.write(victim)
                        dirty_bits[victim_frame] = 0
                        dirty_discard(victim)
                        if pin_counts[victim_frame]:
                            manager._dirty_pinned_overlap -= 1
                        note_clean(victim)
                        writebacks_done += 1
                    else:
                        clean_evictions += 1
                    if prefetched_bits[victim_frame]:
                        prefetch_unused += 1
                        prefetched_bits[victim_frame] = 0
                    evictions += 1
                    del frame_of[victim]
                    if array_slots:
                        slots[victim] = -1
                    policy_remove(victim)
                    page_of[victim_frame] = -1
                    payloads[victim_frame] = None
                    free.append(victim_frame)
                if num_pages is not None and not 0 <= page < num_pages:
                    raise IndexError(
                        f"page {page} out of device range [0, {num_pages})"
                    )
                clock._now_us += read_us
                device_stats.read_time_us += read_us
                reads_done += 1
                if ftl is not None:
                    ftl.read(page)
                try:
                    payload = device_payloads[page]
                except KeyError:
                    payload = None
                frame_id = free.pop()
                page_of[frame_id] = page
                payloads[frame_id] = payload
                frame_of[page] = frame_id
                if array_slots:
                    slots[page] = frame_id
                policy_insert(page, False)
                if not is_write:
                    continue
            # Write post-work (hit or miss): dirty marking + version bump.
            if not dirty_bits[frame_id]:
                dirty_bits[frame_id] = 1
                dirty_add(page)
                if pin_counts[frame_id]:
                    manager._dirty_pinned_overlap += 1
                note_dirty(page)
            current = payloads[frame_id]
            payloads[frame_id] = (current if isinstance(current, int) else 0) + 1
    finally:
        # One flush of the commuting integer counters (identical totals to
        # the per-request replay, including on mid-trace exceptions — see
        # the docstring).
        stats.hits += hits
        stats.misses += misses
        stats.read_requests += read_requests
        stats.write_requests += write_requests
        stats.prefetch_hits += prefetch_hits
        stats.evictions += evictions
        stats.clean_evictions += clean_evictions
        stats.dirty_evictions += dirty_evictions
        stats.prefetch_unused += prefetch_unused
        stats.writebacks += writebacks_done
        stats.writeback_batches += writebacks_done
        device_stats.reads += reads_done
        device_stats.read_batches += reads_done
        if reads_done and device_stats.largest_read_batch < 1:
            device_stats.largest_read_batch = 1
        device_stats.writes += writebacks_done
        device_stats.write_batches += writebacks_done
        if writebacks_done:
            histogram = device_stats.write_batch_size_histogram
            histogram[1] = histogram.get(1, 0) + writebacks_done
            if device_stats.largest_write_batch < 1:
                device_stats.largest_write_batch = 1


def _replay_hit_runs(manager: BufferPoolManager, trace: Trace) -> None:
    """Replay ``trace`` resolving runs of requests with inline probes.

    A request whose translation probe resolves (``slots[page] >= 0``) is
    a buffer hit by definition, and for a hit ``read_page``/``write_page``
    do a short, fixed sequence of steps: bump counters, clear the
    prefetched bit (counting a prefetch hit), notify the policy and the
    observer, and — for writes — mark the frame dirty, bump the payload
    version, and log to the WAL.  Doing all of that inline — no executor
    frame, no ``read_page``/``write_page`` frame — and flushing the
    counters in one add at the end is what the translation vector buys
    the executor.  A miss falls back to the manager's own
    ``_handle_miss`` (the retry/fault-capable entry point), so semantics,
    metrics, and determinism are byte-identical to the request-by-request
    replay (counter addition commutes; nothing observes the stats mid-run
    on this path, and the per-request step order within each access is
    preserved exactly).

    Only called for managers advertising ``hit_run_ready`` (the
    ``_slots``/``_probe_space``/``_prefetched_bits`` handshake) without a
    sanitizer attached (its op wrappers must see every request).
    """
    slots = manager._slots  # lint: allow-translation
    probe_space = manager._probe_space
    prefetched_bits = manager._prefetched_bits
    dirty_bits = manager._dirty_bits
    pin_counts = manager._pin_counts
    payloads = manager._payloads
    dirty_add = manager._dirty_set.add
    note_dirty = manager._note_dirty
    on_access = manager.policy.on_access
    handle_miss = manager._handle_miss
    observer = manager._observer
    wal = manager.wal
    wal_log = wal.log_update if wal is not None else None
    stats = manager.stats
    hits = 0
    misses = 0
    prefetch_hits = 0
    read_requests = 0
    write_requests = 0
    try:
        if observer is None:
            for page, is_write in zip(trace.pages, trace.writes):
                frame_id = slots[page] if 0 <= page < probe_space else -1
                if not is_write:
                    read_requests += 1
                    if frame_id >= 0:
                        hits += 1
                        if prefetched_bits[frame_id]:
                            prefetched_bits[frame_id] = 0
                            prefetch_hits += 1
                        on_access(page, False)
                    else:
                        misses += 1
                        frame_id = handle_miss(page)
                        if frame_id is None:
                            raise PageNotBufferedError(
                                f"miss handling failed to load page {page}"
                            )
                    continue
                write_requests += 1
                if frame_id >= 0:
                    hits += 1
                    if prefetched_bits[frame_id]:
                        prefetched_bits[frame_id] = 0
                        prefetch_hits += 1
                    on_access(page, True)
                else:
                    misses += 1
                    frame_id = handle_miss(page)
                    if frame_id is None:
                        raise PageNotBufferedError(
                            f"miss handling failed to load page {page}"
                        )
                if not dirty_bits[frame_id]:
                    dirty_bits[frame_id] = 1
                    dirty_add(page)
                    if pin_counts[frame_id]:
                        manager._dirty_pinned_overlap += 1
                    note_dirty(page)
                current = payloads[frame_id]
                payload = (current if isinstance(current, int) else 0) + 1
                payloads[frame_id] = payload
                if wal_log is not None:
                    wal_log(page, payload)
        else:
            for page, is_write in zip(trace.pages, trace.writes):
                frame_id = slots[page] if 0 <= page < probe_space else -1
                if not is_write:
                    read_requests += 1
                    if frame_id >= 0:
                        hits += 1
                        if prefetched_bits[frame_id]:
                            prefetched_bits[frame_id] = 0
                            prefetch_hits += 1
                        on_access(page, False)
                    else:
                        misses += 1
                        frame_id = handle_miss(page)
                        if frame_id is None:
                            raise PageNotBufferedError(
                                f"miss handling failed to load page {page}"
                            )
                    observer(page)
                    continue
                write_requests += 1
                if frame_id >= 0:
                    hits += 1
                    if prefetched_bits[frame_id]:
                        prefetched_bits[frame_id] = 0
                        prefetch_hits += 1
                    on_access(page, True)
                else:
                    misses += 1
                    frame_id = handle_miss(page)
                    if frame_id is None:
                        raise PageNotBufferedError(
                            f"miss handling failed to load page {page}"
                        )
                observer(page)
                if not dirty_bits[frame_id]:
                    dirty_bits[frame_id] = 1
                    dirty_add(page)
                    if pin_counts[frame_id]:
                        manager._dirty_pinned_overlap += 1
                    note_dirty(page)
                current = payloads[frame_id]
                payload = (current if isinstance(current, int) else 0) + 1
                payloads[frame_id] = payload
                if wal_log is not None:
                    wal_log(page, payload)
    finally:
        # Flushed even if a request raised (pool exhaustion, device
        # errors) so the recorded stats match the per-request replay —
        # the failing request's request/miss counters were bumped before
        # its miss handler raised, exactly as in ``read_page``.
        stats.read_requests += read_requests
        stats.write_requests += write_requests
        stats.hits += hits
        stats.misses += misses
        stats.prefetch_hits += prefetch_hits


def run_trace(
    manager: BufferPoolManager,
    trace: Trace,
    options: ExecutionOptions | None = None,
    bg_writer: BackgroundWriter | None = None,
    checkpointer: Checkpointer | None = None,
    label: str | None = None,
    latencies: LatencyRecorder | None = None,
    warmup_ops: int = 0,
    serving=None,
    scrubber=None,
) -> RunMetrics:
    """Replay ``trace`` against ``manager`` and collect metrics.

    Pass a :class:`LatencyRecorder` as ``latencies`` to additionally
    capture the per-request latency distribution (mean/p50/p95/p99).

    ``scrubber`` attaches an
    :class:`~repro.bufferpool.background.IdleScrubber`: like the
    background writer, it runs on its own virtual-time interval and heals
    latent silent corruption between requests.

    ``warmup_ops`` replays that many leading requests before measurement
    starts (the pool fills, stats and clock baselines reset afterwards),
    for steady-state methodology.

    ``serving`` enables the overload-resilient admission layer: pass a
    :class:`~repro.engine.serving.ServingConfig` (or a prebuilt
    :class:`~repro.engine.serving.ServingLayer` bound to ``manager``) and
    the trace is served through a bounded admission queue with deadlines,
    load shedding, requeue backoff, and an optional circuit breaker; the
    returned metrics carry a ``serving`` field.  ``None`` (the default)
    keeps the historical direct-replay path, at zero overhead.
    """
    if options is None:
        options = ExecutionOptions()
    if warmup_ops:
        if warmup_ops >= len(trace):
            raise ValueError(
                f"warmup ({warmup_ops}) must leave measured requests "
                f"(trace has {len(trace)})"
            )
        for page, is_write in zip(
            trace.pages[:warmup_ops], trace.writes[:warmup_ops]
        ):
            manager.access(page, is_write)
        manager.stats = type(manager.stats)()
        # Measurement boundary: device (and FTL) counters must cover only
        # the measured window, matching the buffer-stats reset above.
        manager.device.reset_stats()
        trace = trace.slice(warmup_ops, len(trace))
    if serving is not None:
        from repro.engine.serving.layer import ServingLayer

        layer = (
            serving
            if isinstance(serving, ServingLayer)
            else ServingLayer(manager, serving)
        )
        if layer.manager is not manager:
            raise ValueError("serving layer is bound to a different manager")
        return layer.serve_trace(
            trace,
            options=options,
            bg_writer=bg_writer,
            checkpointer=checkpointer,
            label=label,
            latencies=latencies,
        )
    clock = manager.device.clock
    start_us = clock.now_us
    start_reads = manager.device.stats.read_time_us
    start_writes = manager.device.stats.write_time_us
    cpu_per_op = options.cpu_us_per_op

    if (
        latencies is None
        and bg_writer is None
        and checkpointer is None
        and scrubber is None
        and not options.commit_every_ops
    ):
        # Fast path: nothing observes the clock between requests, so the
        # per-op CPU charge can be applied in one advance at the end
        # (identical modulo float-summation rounding).
        if manager.sanitizer is None and getattr(
            manager, "hit_run_ready", False
        ):
            if (
                type(manager) is BufferPoolManager
                and manager._plain_device is not None
                and manager.wal is None
                and manager._observer is None
            ):
                # Bare baseline stack: the whole request path inlines.
                _replay_turbo_baseline(manager, trace)
            else:
                _replay_hit_runs(manager, trace)
        else:
            # Sanitised managers (instance-attribute op wrappers) and
            # facade managers without the ``hit_run_ready`` handshake
            # (e.g. the partitioned pool) replay request by request.
            access = manager.access
            for page, is_write in zip(trace.pages, trace.writes):
                access(page, is_write)
        if cpu_per_op:
            clock.advance(cpu_per_op * len(trace))
    else:
        access = manager.access
        advance = clock.advance
        next_bg_writer_us = start_us + options.bg_writer_interval_us
        commit_every = options.commit_every_ops
        wal = manager.wal
        since_commit = 0
        for page, is_write in zip(trace.pages, trace.writes):
            request_start_us = clock.now_us
            if cpu_per_op:
                advance(cpu_per_op)
            access(page, is_write)
            if commit_every and wal is not None:
                since_commit += 1
                if since_commit >= commit_every:
                    wal.flush()  # commit point: updates so far are durable
                    since_commit = 0
            if latencies is not None:
                latencies.record(clock.now_us - request_start_us)
            if bg_writer is not None and clock.now_us >= next_bg_writer_us:
                bg_writer.run_round()
                next_bg_writer_us = clock.now_us + options.bg_writer_interval_us
            if checkpointer is not None:
                checkpointer.maybe_checkpoint()
            if scrubber is not None:
                scrubber.maybe_scrub()

    elapsed = clock.now_us - start_us
    io_time = (
        manager.device.stats.read_time_us
        - start_reads
        + manager.device.stats.write_time_us
        - start_writes
    )
    return RunMetrics(
        label=label if label is not None else f"{manager.variant}/{trace.name}",
        elapsed_us=elapsed,
        ops=len(trace),
        buffer=manager.stats.copy(),
        device=manager.device.stats.copy(),
        ftl=manager.device.ftl.counters.copy() if manager.device.ftl else None,
        wal_pages_written=manager.wal.pages_written if manager.wal else 0,
        io_time_us=io_time,
        cpu_time_us=elapsed - io_time,
    )


def run_transactions(
    manager: BufferPoolManager,
    transactions: Iterable[tuple[TransactionType, list[PageRequest]]],
    options: ExecutionOptions | None = None,
    bg_writer: BackgroundWriter | None = None,
    checkpointer: Checkpointer | None = None,
    label: str = "transactions",
    serving=None,
) -> RunMetrics:
    """Run a (type, requests) transaction stream; tracks tpmC.

    Transactions execute back to back on the virtual clock (the paper's
    gains are I/O-path effects, so a single-stream model preserves relative
    behaviour; see DESIGN.md).

    ``serving`` (a :class:`~repro.engine.serving.ServingConfig` or bound
    :class:`~repro.engine.serving.ServingLayer`) routes the stream through
    the admission layer with whole transactions as the admission unit; see
    :meth:`ServingLayer.serve_transactions`.
    """
    if options is None:
        options = ExecutionOptions()
    if serving is not None:
        from repro.engine.serving.layer import ServingLayer

        layer = (
            serving
            if isinstance(serving, ServingLayer)
            else ServingLayer(manager, serving)
        )
        if layer.manager is not manager:
            raise ValueError("serving layer is bound to a different manager")
        return layer.serve_transactions(
            transactions,
            options=options,
            bg_writer=bg_writer,
            checkpointer=checkpointer,
            label=label,
        )
    clock = manager.device.clock
    start_us = clock.now_us
    start_reads = manager.device.stats.read_time_us
    start_writes = manager.device.stats.write_time_us
    cpu_per_op = options.cpu_us_per_op

    ops = 0
    transaction_count = 0
    new_order_count = 0
    if bg_writer is None and checkpointer is None:
        # Fast path (see run_trace): no mid-run clock observers, so the
        # per-op and per-transaction CPU charges collapse into one advance.
        access = manager.access
        wal = manager.wal
        wal_flush = wal.flush if wal is not None else None
        for kind, requests in transactions:
            for request in requests:
                access(request.page, request.is_write)
            ops += len(requests)
            if wal_flush is not None:
                wal_flush()  # commit: WAL must be durable
            transaction_count += 1
            if kind is TransactionType.NEW_ORDER:
                new_order_count += 1
        cpu_total = (
            options.cpu_us_per_transaction * transaction_count
            + cpu_per_op * ops
        )
        if cpu_total:
            clock.advance(cpu_total)
    else:
        next_bg_writer_us = start_us + options.bg_writer_interval_us
        for kind, requests in transactions:
            if options.cpu_us_per_transaction:
                clock.advance(options.cpu_us_per_transaction)
            for request in requests:
                if cpu_per_op:
                    clock.advance(cpu_per_op)
                manager.access(request.page, request.is_write)
                ops += 1
            if manager.wal is not None:
                manager.wal.flush()  # commit: WAL must be durable
            transaction_count += 1
            if kind is TransactionType.NEW_ORDER:
                new_order_count += 1
            if bg_writer is not None and clock.now_us >= next_bg_writer_us:
                bg_writer.run_round()
                next_bg_writer_us = clock.now_us + options.bg_writer_interval_us
            if checkpointer is not None:
                checkpointer.maybe_checkpoint()

    elapsed = clock.now_us - start_us
    io_time = (
        manager.device.stats.read_time_us
        - start_reads
        + manager.device.stats.write_time_us
        - start_writes
    )
    return RunMetrics(
        label=label,
        elapsed_us=elapsed,
        ops=ops,
        transactions=transaction_count,
        new_order_transactions=new_order_count,
        buffer=manager.stats.copy(),
        device=manager.device.stats.copy(),
        ftl=manager.device.ftl.counters.copy() if manager.device.ftl else None,
        wal_pages_written=manager.wal.pages_written if manager.wal else 0,
        io_time_us=io_time,
        cpu_time_us=elapsed - io_time,
    )
