"""B-tree index substrate: page-level access patterns of index traversals.

PostgreSQL reads index pages through the same bufferpool as heap pages, so
a faithful request stream interleaves both: every key lookup touches the
(red-hot) root, one or two (warm) internal pages, and a (cooler) leaf
before reaching the heap.  This module models a B-tree's *page shape* —
fanout, height, page ranges per level — and emits the page-access
sequences of lookups, range scans, and inserts, without materialising keys.

The index is laid out over a relation allocated from the shared
:class:`~repro.bufferpool.database.Database`, so index pages compete for
bufferpool frames exactly like data pages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.bufferpool.database import Database, Relation
from repro.workloads.trace import PageRequest

__all__ = ["BTreeIndex", "BTreeShape"]


@dataclass(frozen=True)
class BTreeShape:
    """Static shape of a B-tree over ``num_keys`` keys."""

    num_keys: int
    fanout: int
    leaf_capacity: int
    height: int            # number of levels including the leaf level
    pages_per_level: tuple[int, ...]  # root first, leaves last

    @property
    def total_pages(self) -> int:
        return sum(self.pages_per_level)


def _compute_shape(num_keys: int, fanout: int, leaf_capacity: int) -> BTreeShape:
    leaves = max(1, math.ceil(num_keys / leaf_capacity))
    levels = [leaves]
    while levels[-1] > 1:
        levels.append(math.ceil(levels[-1] / fanout))
    levels.reverse()  # root first
    return BTreeShape(
        num_keys=num_keys,
        fanout=fanout,
        leaf_capacity=leaf_capacity,
        height=len(levels),
        pages_per_level=tuple(levels),
    )


class BTreeIndex:
    """A page-shape B-tree over a key space, backed by a relation.

    Parameters
    ----------
    database:
        The shared layout; the index allocates its pages here.
    name:
        Relation name for the index (e.g. ``"pgbench_accounts_pkey"``).
    num_keys:
        Number of indexed keys (rows of the underlying table).
    fanout:
        Children per internal page (~a few hundred for 8 KB pages).
    leaf_capacity:
        Index entries per leaf page.
    """

    def __init__(
        self,
        database: Database,
        name: str,
        num_keys: int,
        fanout: int = 256,
        leaf_capacity: int = 256,
    ) -> None:
        if num_keys < 1:
            raise ValueError("an index needs at least one key")
        if fanout < 2 or leaf_capacity < 1:
            raise ValueError("fanout must be >= 2 and leaf capacity >= 1")
        self.shape = _compute_shape(num_keys, fanout, leaf_capacity)
        self.relation: Relation = database.add_relation(
            name, num_rows=self.shape.total_pages, rows_per_page=1
        )
        # Per-level base offsets inside the relation, root first.
        offsets = []
        offset = 0
        for count in self.shape.pages_per_level:
            offsets.append(offset)
            offset += count
        self._level_offsets = tuple(offsets)

    # ------------------------------------------------------------ mapping

    def _page_at(self, level: int, index_in_level: int) -> int:
        count = self.shape.pages_per_level[level]
        if not 0 <= index_in_level < count:
            raise IndexError(
                f"level {level} has {count} pages; asked for {index_in_level}"
            )
        return self.relation.page_of_block(
            self._level_offsets[level] + index_in_level
        )

    def root_page(self) -> int:
        return self._page_at(0, 0)

    def leaf_of_key(self, key: int) -> int:
        """The leaf page holding ``key``."""
        self._check_key(key)
        leaf_index = key // self.shape.leaf_capacity
        return self._page_at(self.shape.height - 1, leaf_index)

    def path_to_key(self, key: int) -> list[int]:
        """Root-to-leaf page path for a key lookup."""
        self._check_key(key)
        path = []
        leaves = self.shape.pages_per_level[-1]
        leaf_index = key // self.shape.leaf_capacity
        for level in range(self.shape.height):
            count = self.shape.pages_per_level[level]
            # The key's subtree at this level, by proportional position.
            index_in_level = min(count - 1, leaf_index * count // leaves)
            path.append(self._page_at(level, index_in_level))
        return path

    # ----------------------------------------------------------- accesses

    def lookup(self, key: int) -> list[PageRequest]:
        """Page reads of a single-key index probe."""
        return [PageRequest(page, False) for page in self.path_to_key(key)]

    def insert(self, key: int, split_probability: float = 0.0,
               rng: random.Random | None = None) -> list[PageRequest]:
        """Page accesses of an index insert: traverse, then dirty the leaf.

        With ``split_probability`` the leaf "splits": its neighbour and the
        parent are dirtied too (the occasional write burst real B-trees
        exhibit).
        """
        path = self.path_to_key(key)
        requests = [PageRequest(page, False) for page in path]
        requests.append(PageRequest(path[-1], True))
        if split_probability > 0.0:
            if rng is None:
                rng = random.Random(key)
            if rng.random() < split_probability:
                leaf_level = self.shape.height - 1
                leaf_count = self.shape.pages_per_level[leaf_level]
                leaf_index = key // self.shape.leaf_capacity
                neighbour = min(leaf_count - 1, leaf_index + 1)
                requests.append(
                    PageRequest(self._page_at(leaf_level, neighbour), True)
                )
                if len(path) >= 2:
                    requests.append(PageRequest(path[-2], True))
        return requests

    def range_scan(self, start_key: int, num_keys: int) -> list[PageRequest]:
        """Page reads of a leaf-level range scan: one probe + leaf walk."""
        if num_keys < 1:
            raise ValueError("scan must cover at least one key")
        self._check_key(start_key)
        requests = [PageRequest(page, False) for page in self.path_to_key(start_key)]
        leaf_level = self.shape.height - 1
        leaf_count = self.shape.pages_per_level[leaf_level]
        first_leaf = start_key // self.shape.leaf_capacity
        last_key = min(start_key + num_keys - 1, self.shape.num_keys - 1)
        last_leaf = last_key // self.shape.leaf_capacity
        for leaf_index in range(first_leaf + 1, min(last_leaf, leaf_count - 1) + 1):
            requests.append(PageRequest(self._page_at(leaf_level, leaf_index), False))
        return requests

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.shape.num_keys:
            raise IndexError(
                f"key {key} outside [0, {self.shape.num_keys})"
            )

    def __repr__(self) -> str:
        return (
            f"BTreeIndex({self.relation.name!r}, keys={self.shape.num_keys}, "
            f"height={self.shape.height}, pages={self.shape.total_pages})"
        )
