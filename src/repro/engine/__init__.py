"""Execution substrate: database layout, trace execution, metrics."""

from repro.bufferpool.database import AppendCursor, Database, Relation
from repro.engine.executor import ExecutionOptions, run_trace, run_transactions
from repro.engine.latency import LatencyRecorder
from repro.engine.metrics import RunMetrics, percent_delta, speedup
from repro.engine.multiclient import interleave_traces, interleave_transactions
from repro.engine.serving import (
    BreakerConfig,
    CircuitBreaker,
    ServingConfig,
    ServingLayer,
    ServingMetrics,
)

__all__ = [
    "Database",
    "Relation",
    "AppendCursor",
    "ExecutionOptions",
    "run_trace",
    "run_transactions",
    "RunMetrics",
    "speedup",
    "percent_delta",
    "interleave_traces",
    "interleave_transactions",
    "LatencyRecorder",
    "BreakerConfig",
    "CircuitBreaker",
    "ServingConfig",
    "ServingLayer",
    "ServingMetrics",
]
