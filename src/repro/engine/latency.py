"""Per-request latency distribution tracking.

The paper reports total workload latency; a production bufferpool also
cares about *tail* latency.  ACE changes the shape of the distribution in
an interesting way: the request that trips a batched write-back pays for
``n_w`` writes at one write latency (slightly slower than a single write
when ``n_w > k_w`` would split into waves), while the following ``n_w - 1``
dirty-victim requests become clean evictions and get dramatically faster.
The recorder makes that visible (mean and p95 drop; the extreme tail
reflects the batch stalls).
"""

from __future__ import annotations

import math

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Collects per-request latencies and reports distribution statistics."""

    def __init__(self) -> None:
        self._samples_us: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, latency_us: float) -> None:
        """Add one request's latency (microseconds of virtual time)."""
        if latency_us < 0:
            raise ValueError(f"latency cannot be negative: {latency_us}")
        self._samples_us.append(latency_us)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples_us)

    @property
    def count(self) -> int:
        return len(self._samples_us)

    @property
    def mean_us(self) -> float:
        if not self._samples_us:
            return 0.0
        return sum(self._samples_us) / len(self._samples_us)

    @property
    def max_us(self) -> float:
        if not self._samples_us:
            return 0.0
        return max(self._samples_us)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100), nearest-rank method."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100]: {p}")
        if not self._samples_us:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples_us)
        rank = math.ceil(p / 100.0 * len(self._sorted))
        return self._sorted[max(0, rank - 1)]

    @property
    def p50_us(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_us(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_us(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> dict[str, float]:
        """Mean plus the standard percentile set, as a dict."""
        return {
            "count": float(self.count),
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "max_us": self.max_us,
        }

    def __repr__(self) -> str:
        if not self._samples_us:
            return "LatencyRecorder(empty)"
        return (
            f"LatencyRecorder(n={self.count}, mean={self.mean_us:.1f}us, "
            f"p99={self.p99_us:.1f}us)"
        )
