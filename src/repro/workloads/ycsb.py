"""YCSB core workloads A-F as page-request generators.

The Yahoo! Cloud Serving Benchmark's six core workloads are the de-facto
key-value access patterns; mapped onto pages they exercise the bufferpool
corners the paper's four synthetic mixes do not (zipfian skew, read-latest
recency, range scans, read-modify-write):

=====  =====================  =======================================
 name  operations             distribution
=====  =====================  =======================================
  A    50% read / 50% update  zipfian
  B    95% read / 5% update   zipfian
  C    100% read              zipfian
  D    95% read / 5% insert   latest (reads concentrate on new keys)
  E    95% scan / 5% insert   zipfian start + short uniform scan
  F    50% read / 50% RMW     zipfian (RMW = read then write same page)
=====  =====================  =======================================

Records map to pages through ``records_per_page``; the zipfian generator
uses bounded inverse-CDF sampling so runs are deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

__all__ = ["YCSBConfig", "YCSB_WORKLOADS", "generate_ycsb_trace", "zipfian_ranks"]


@dataclass(frozen=True)
class YCSBConfig:
    """One YCSB core workload's parameters."""

    name: str
    read_fraction: float
    update_fraction: float
    insert_fraction: float = 0.0
    scan_fraction: float = 0.0
    rmw_fraction: float = 0.0
    distribution: str = "zipfian"  # zipfian | latest | uniform
    max_scan_length: int = 20

    def __post_init__(self) -> None:
        total = (
            self.read_fraction + self.update_fraction + self.insert_fraction
            + self.scan_fraction + self.rmw_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix of {self.name} sums to {total}")
        if self.distribution not in ("zipfian", "latest", "uniform"):
            raise ValueError(f"unknown distribution {self.distribution!r}")


YCSB_WORKLOADS: dict[str, YCSBConfig] = {
    "A": YCSBConfig("A", read_fraction=0.5, update_fraction=0.5),
    "B": YCSBConfig("B", read_fraction=0.95, update_fraction=0.05),
    "C": YCSBConfig("C", read_fraction=1.0, update_fraction=0.0),
    "D": YCSBConfig(
        "D", read_fraction=0.95, update_fraction=0.0,
        insert_fraction=0.05, distribution="latest",
    ),
    "E": YCSBConfig(
        "E", read_fraction=0.0, update_fraction=0.0,
        insert_fraction=0.05, scan_fraction=0.95,
    ),
    "F": YCSBConfig("F", read_fraction=0.5, update_fraction=0.0, rmw_fraction=0.5),
}


def zipfian_ranks(
    rng: np.random.Generator, count: int, universe: int, theta: float = 0.99
) -> np.ndarray:
    """Sample ``count`` zipfian ranks in [0, universe) via inverse CDF.

    Rank 0 is the most popular item.  ``theta`` is YCSB's zipfian constant.
    """
    if universe < 1:
        raise ValueError("universe must be positive")
    if not 0.0 < theta < 1.0:
        raise ValueError(f"theta must be in (0, 1): {theta}")
    weights = 1.0 / np.power(np.arange(1, universe + 1), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    uniforms = rng.random(count)
    return np.searchsorted(cdf, uniforms)


def generate_ycsb_trace(
    workload: str,
    num_pages: int,
    num_ops: int,
    records_per_page: int = 16,
    seed: int = 42,
    theta: float = 0.99,
) -> Trace:
    """Generate a page-level trace for YCSB core workload ``workload``.

    ``num_pages`` is the table's page span (records = pages x
    records_per_page); inserts extend a virtual tail that wraps within the
    page span, and "latest" reads concentrate near the insertion point.
    """
    config = YCSB_WORKLOADS.get(workload.upper())
    if config is None:
        known = ", ".join(sorted(YCSB_WORKLOADS))
        raise KeyError(f"unknown YCSB workload {workload!r}; known: {known}")
    if num_pages < 2 or num_ops < 1:
        raise ValueError("need at least 2 pages and 1 operation")

    rng = np.random.default_rng(seed)
    # A random permutation decouples popularity rank from page number, so
    # zipfian skew does not masquerade as sequentiality.
    page_of_rank = rng.permutation(num_pages)

    pages: list[int] = []
    writes: list[bool] = []
    insert_cursor = num_pages - 1  # tail page index (grows, wraps)
    operation_draws = rng.random(num_ops)
    scan_lengths = rng.integers(1, config.max_scan_length + 1, num_ops)
    zipf_pool = zipfian_ranks(rng, num_ops, num_pages, theta=theta)
    latest_offsets = zipfian_ranks(rng, num_ops, num_pages, theta=theta)
    uniform_pool = rng.integers(0, num_pages, num_ops)

    def skewed_page(index: int) -> int:
        if config.distribution == "uniform":
            return int(uniform_pool[index])
        if config.distribution == "latest":
            # Concentrate near the newest pages (just behind the cursor).
            offset = int(latest_offsets[index])
            return (insert_cursor - offset) % num_pages
        return int(page_of_rank[zipf_pool[index]])

    for index in range(num_ops):
        draw = operation_draws[index]
        if draw < config.read_fraction:
            pages.append(skewed_page(index))
            writes.append(False)
        elif draw < config.read_fraction + config.update_fraction:
            pages.append(skewed_page(index))
            writes.append(True)
        elif draw < (
            config.read_fraction + config.update_fraction
            + config.insert_fraction
        ):
            insert_cursor = (insert_cursor + 1) % num_pages
            pages.append(insert_cursor)
            writes.append(True)
        elif draw < (
            config.read_fraction + config.update_fraction
            + config.insert_fraction + config.scan_fraction
        ):
            start = skewed_page(index)
            for step in range(int(scan_lengths[index])):
                pages.append((start + step) % num_pages)
                writes.append(False)
        else:  # read-modify-write
            page = skewed_page(index)
            pages.append(page)
            writes.append(False)
            pages.append(page)
            writes.append(True)

    return Trace(pages, writes, name=f"ycsb-{config.name}")
