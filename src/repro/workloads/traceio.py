"""Trace persistence: save and load page-request traces.

Reproducibility plumbing: experiments can dump the exact request stream
they executed and reload it later (or on another machine) byte-for-byte.
Two formats:

* ``.npz`` — compact binary via numpy (pages as int64, writes as bool);
* ``.csv`` — human-readable ``page,is_write`` rows with a header.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.workloads.trace import Trace

__all__ = ["save_trace", "load_trace"]


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path``; the suffix selects the format."""
    path = Path(path)
    if path.suffix == ".npz":
        np.savez_compressed(
            path,
            pages=np.asarray(trace.pages, dtype=np.int64),
            writes=np.asarray(trace.writes, dtype=bool),
            name=np.asarray(trace.name),
        )
    elif path.suffix == ".csv":
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["page", "is_write"])
            for page, is_write in zip(trace.pages, trace.writes):
                writer.writerow([page, int(is_write)])
    else:
        raise ValueError(
            f"unsupported trace format {path.suffix!r}; use .npz or .csv"
        )
    return path


def load_trace(path: str | Path, name: str | None = None) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no trace file at {path}")
    if path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as data:
            pages = data["pages"]
            writes = data["writes"]
            stored_name = str(data["name"]) if "name" in data else path.stem
        return Trace.from_arrays(
            pages, writes, name=name if name is not None else stored_name
        )
    if path.suffix == ".csv":
        pages: list[int] = []
        writes: list[bool] = []
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != ["page", "is_write"]:
                raise ValueError(f"unrecognised trace CSV header: {header}")
            for row in reader:
                pages.append(int(row[0]))
                writes.append(bool(int(row[1])))
        return Trace(
            pages, writes, name=name if name is not None else path.stem
        )
    raise ValueError(
        f"unsupported trace format {path.suffix!r}; use .npz or .csv"
    )
