"""pgbench-style TPC-B-like workload (the paper's synthetic substrate).

The paper drives its synthetic experiments through ``pgbench`` at scale
factor 1000 (~15 GB).  pgbench's schema has four tables per scale unit —
100,000 accounts, 10 tellers, 1 branch, plus an append-only history — and
its standard transaction updates one row in each of accounts/tellers/
branches, re-reads the account balance, and inserts a history row.

Because branches and tellers are tiny, their pages are extremely hot, which
is where pgbench's natural skew comes from.  The module exposes both the
standard TPC-B transaction mix and the page-level trace the bufferpool
sees.  ``rows_per_page`` defaults keep the page count laptop-sized while
preserving the relative table footprints.
"""

from __future__ import annotations

import random

from repro.bufferpool.database import AppendCursor, Database
from repro.workloads.trace import PageRequest, Trace

__all__ = ["PgbenchWorkload"]

_ACCOUNTS_PER_SCALE = 100_000
_TELLERS_PER_SCALE = 10
_BRANCHES_PER_SCALE = 1


class PgbenchWorkload:
    """TPC-B-like schema and transaction generator.

    Parameters
    ----------
    scale:
        pgbench scale factor; each unit adds 100k accounts, 10 tellers and
        1 branch.
    rows_per_page:
        Account rows packed per page.  pgbench packs ~60 rows into an 8 KB
        page; a higher value shrinks the simulated page space
        proportionally without changing access skew.
    history_headroom_pages:
        Pages reserved for history inserts before the cursor wraps.
    """

    def __init__(
        self,
        scale: int = 10,
        rows_per_page: int = 60,
        history_headroom_pages: int = 512,
        seed: int = 42,
    ) -> None:
        if scale < 1:
            raise ValueError("scale factor must be at least 1")
        self.scale = scale
        self.num_accounts = _ACCOUNTS_PER_SCALE * scale
        self.num_tellers = _TELLERS_PER_SCALE * scale
        self.num_branches = _BRANCHES_PER_SCALE * scale
        self.database = Database(name=f"pgbench-s{scale}")
        self.accounts = self.database.add_relation(
            "pgbench_accounts", self.num_accounts, rows_per_page
        )
        self.tellers = self.database.add_relation(
            "pgbench_tellers", self.num_tellers, rows_per_page
        )
        self.branches = self.database.add_relation(
            "pgbench_branches", self.num_branches, rows_per_page
        )
        self.history = self.database.add_relation(
            "pgbench_history", 0, rows_per_page,
            headroom_pages=history_headroom_pages,
        )
        self._history_cursor = AppendCursor(self.history)
        self._rng = random.Random(seed)

    @property
    def total_pages(self) -> int:
        return self.database.total_pages

    def transaction(self) -> list[PageRequest]:
        """One standard TPC-B transaction as page requests.

        UPDATE accounts; SELECT abalance; UPDATE tellers; UPDATE branches;
        INSERT INTO history.
        """
        rng = self._rng
        account_page = self.accounts.page_of_row(rng.randrange(self.num_accounts))
        teller_page = self.tellers.page_of_row(rng.randrange(self.num_tellers))
        branch_page = self.branches.page_of_row(rng.randrange(self.num_branches))
        history_page = self._history_cursor.append()
        return [
            PageRequest(account_page, True),   # UPDATE pgbench_accounts
            PageRequest(account_page, False),  # SELECT abalance
            PageRequest(teller_page, True),    # UPDATE pgbench_tellers
            PageRequest(branch_page, True),    # UPDATE pgbench_branches
            PageRequest(history_page, True),   # INSERT INTO pgbench_history
        ]

    def transactions(self, count: int) -> list[list[PageRequest]]:
        """A batch of ``count`` standard transactions."""
        if count < 0:
            raise ValueError("transaction count cannot be negative")
        return [self.transaction() for _ in range(count)]

    def trace(self, num_transactions: int) -> Trace:
        """Flatten ``num_transactions`` transactions into one trace."""
        requests: list[PageRequest] = []
        for transaction in self.transactions(num_transactions):
            requests.extend(transaction)
        return Trace.from_requests(requests, name=f"pgbench-s{self.scale}")
