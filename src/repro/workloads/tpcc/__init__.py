"""TPC-C benchmark substrate: schema layout, transactions, mix driver."""

from repro.workloads.tpcc.driver import TPCCWorkload
from repro.workloads.tpcc.schema import DISTRICTS_PER_WAREHOUSE, TPCCDatabase, nurand
from repro.workloads.tpcc.transactions import (
    STANDARD_MIX,
    TPCCTransactionGenerator,
    TransactionType,
)

__all__ = [
    "TPCCWorkload",
    "TPCCDatabase",
    "TPCCTransactionGenerator",
    "TransactionType",
    "STANDARD_MIX",
    "DISTRICTS_PER_WAREHOUSE",
    "nurand",
]
