"""TPC-C schema laid out over device pages.

A TPC-C database has nine tables whose cardinalities scale with the number
of warehouses (paper §VI-B): per warehouse there are 10 districts, 30,000
customers, 100,000 stock rows, 30,000 initial orders (3,000 per district)
with ~10 order lines each, and 9,000 pending new-orders; the item catalog
(100,000 rows) is global.

``row_scale`` shrinks every per-warehouse cardinality proportionally so the
simulated page space stays laptop-sized while preserving the *relative*
footprints (stock and order-line dominate, warehouse/district pages are
white-hot).  The paper's 500-warehouse/50 GB setup corresponds to
``warehouses=500, row_scale=1.0``; benches use fewer warehouses with
``row_scale=0.1`` and note the substitution in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import random

from repro.bufferpool.database import AppendCursor, Database

__all__ = ["TPCCDatabase", "DISTRICTS_PER_WAREHOUSE", "nurand"]

DISTRICTS_PER_WAREHOUSE = 10

# Spec cardinalities (per warehouse unless noted).
_SPEC_CUSTOMERS_PER_DISTRICT = 3_000
_SPEC_STOCK_PER_WAREHOUSE = 100_000
_SPEC_ITEMS_TOTAL = 100_000
_SPEC_ORDERS_PER_DISTRICT = 3_000
_SPEC_NEW_ORDERS_PER_DISTRICT = 900
_SPEC_LINES_PER_ORDER = 10


def nurand(rng: random.Random, a: int, x: int, y: int, c: int) -> int:
    """TPC-C non-uniform random: NURand(A, x, y) with constant ``c``."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x


class TPCCDatabase:
    """Page layout and row→page mapping for a scaled TPC-C database."""

    def __init__(
        self,
        warehouses: int = 10,
        row_scale: float = 0.1,
        seed: int = 42,
    ) -> None:
        if warehouses < 1:
            raise ValueError("need at least one warehouse")
        if not 0.001 <= row_scale <= 1.0:
            raise ValueError(f"row_scale must be in [0.001, 1]: {row_scale}")
        self.warehouses = warehouses
        self.row_scale = row_scale
        self._rng = random.Random(seed)
        # NURand C constants, drawn once per database as the spec requires.
        self.c_customer = self._rng.randint(0, 1023)
        self.c_item = self._rng.randint(0, 8191)

        def scaled(value: int, minimum: int = 10) -> int:
            return max(minimum, math.ceil(value * row_scale))

        self.customers_per_district = scaled(_SPEC_CUSTOMERS_PER_DISTRICT)
        self.stock_per_warehouse = scaled(_SPEC_STOCK_PER_WAREHOUSE, minimum=100)
        self.num_items = scaled(_SPEC_ITEMS_TOTAL, minimum=100)
        self.orders_per_district = scaled(_SPEC_ORDERS_PER_DISTRICT)
        self.new_orders_per_district = scaled(_SPEC_NEW_ORDERS_PER_DISTRICT)
        self.lines_per_order = _SPEC_LINES_PER_ORDER

        num_districts = warehouses * DISTRICTS_PER_WAREHOUSE
        database = Database(name=f"tpcc-w{warehouses}")
        self.warehouse = database.add_relation(
            "warehouse", warehouses, rows_per_page=25
        )
        self.district = database.add_relation(
            "district", num_districts, rows_per_page=10
        )
        self.customer = database.add_relation(
            "customer",
            num_districts * self.customers_per_district,
            rows_per_page=20,
        )
        self.stock = database.add_relation(
            "stock", warehouses * self.stock_per_warehouse, rows_per_page=30
        )
        self.item = database.add_relation(
            "item", self.num_items, rows_per_page=50
        )
        self.orders = database.add_relation(
            "orders", num_districts * self.orders_per_district, rows_per_page=25
        )
        self.new_order = database.add_relation(
            "new_order",
            num_districts * self.new_orders_per_district,
            rows_per_page=50,
        )
        self.order_line = database.add_relation(
            "order_line",
            num_districts * self.orders_per_district * self.lines_per_order,
            rows_per_page=30,
        )
        history_pages = max(64, num_districts)
        self.history = database.add_relation(
            "history", 0, rows_per_page=40, headroom_pages=history_pages
        )
        self.database = database
        self.history_cursor = AppendCursor(self.history)

        # Per-district ring positions for order/new-order/order-line growth.
        self._next_order: list[int] = [0] * num_districts
        self._oldest_new_order: list[int] = [0] * num_districts

    # ------------------------------------------------------- page mapping

    @property
    def total_pages(self) -> int:
        return self.database.total_pages

    def district_index(self, w: int, d: int) -> int:
        self._check_wd(w, d)
        return w * DISTRICTS_PER_WAREHOUSE + d

    def warehouse_page(self, w: int) -> int:
        self._check_w(w)
        return self.warehouse.page_of_row(w)

    def district_page(self, w: int, d: int) -> int:
        return self.district.page_of_row(self.district_index(w, d))

    def customer_page(self, w: int, d: int, c: int) -> int:
        if not 0 <= c < self.customers_per_district:
            raise IndexError(f"customer {c} out of range")
        row = self.district_index(w, d) * self.customers_per_district + c
        return self.customer.page_of_row(row)

    def stock_page(self, w: int, item: int) -> int:
        self._check_w(w)
        stock_row = item % self.stock_per_warehouse
        return self.stock.page_of_row(w * self.stock_per_warehouse + stock_row)

    def item_page(self, item: int) -> int:
        if not 0 <= item < self.num_items:
            raise IndexError(f"item {item} out of range")
        return self.item.page_of_row(item)

    def order_page(self, w: int, d: int, order_seq: int) -> int:
        """Page of the order at ring position ``order_seq`` in district."""
        slot = order_seq % self.orders_per_district
        row = self.district_index(w, d) * self.orders_per_district + slot
        return self.orders.page_of_row(row)

    def new_order_page(self, w: int, d: int, seq: int) -> int:
        slot = seq % self.new_orders_per_district
        row = self.district_index(w, d) * self.new_orders_per_district + slot
        return self.new_order.page_of_row(row)

    def order_line_pages(self, w: int, d: int, order_seq: int, lines: int) -> list[int]:
        """Distinct pages covering ``lines`` lines of the given order."""
        slot = order_seq % self.orders_per_district
        base_line = (
            self.district_index(w, d) * self.orders_per_district + slot
        ) * self.lines_per_order
        pages: list[int] = []
        for line in range(min(lines, self.lines_per_order)):
            page = self.order_line.page_of_row(base_line + line)
            if not pages or pages[-1] != page:
                pages.append(page)
        return pages

    # ----------------------------------------------------- order sequencing

    def allocate_order(self, w: int, d: int) -> int:
        """Take the district's next order number (D_NEXT_O_ID)."""
        index = self.district_index(w, d)
        order_seq = self._next_order[index]
        self._next_order[index] += 1
        return order_seq

    def pop_oldest_new_order(self, w: int, d: int) -> int | None:
        """Oldest undelivered order of the district, or ``None`` if empty."""
        index = self.district_index(w, d)
        oldest = self._oldest_new_order[index]
        if oldest >= self._next_order[index]:
            return None
        self._oldest_new_order[index] = oldest + 1
        return oldest

    def latest_order(self, w: int, d: int) -> int | None:
        """Most recently placed order of the district (for OrderStatus)."""
        index = self.district_index(w, d)
        if self._next_order[index] == 0:
            return None
        return self._next_order[index] - 1

    def recent_orders(self, w: int, d: int, count: int) -> list[int]:
        """Up to ``count`` most recent order numbers (for StockLevel)."""
        index = self.district_index(w, d)
        newest = self._next_order[index]
        oldest = max(0, newest - count)
        return list(range(oldest, newest))

    # ------------------------------------------------------------- checks

    def _check_w(self, w: int) -> None:
        if not 0 <= w < self.warehouses:
            raise IndexError(f"warehouse {w} out of range [0, {self.warehouses})")

    def _check_wd(self, w: int, d: int) -> None:
        self._check_w(w)
        if not 0 <= d < DISTRICTS_PER_WAREHOUSE:
            raise IndexError(f"district {d} out of range")
