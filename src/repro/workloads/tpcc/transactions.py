"""The five TPC-C transactions as page-access generators (paper §VI-B).

Each generator models the rows a transaction touches per the TPC-C spec and
emits the corresponding page-level reads and writes:

* **NewOrder** (45 %, read-write): district sequence bump, customer lookup,
  5-15 items each with an item read and a stock read-modify-write, order /
  new-order / order-line inserts; 1 % abort after the item phase.
* **Payment** (43 %, read-write): warehouse and district YTD updates,
  customer update (60 % selected by last name — extra index-scan reads),
  history insert.
* **OrderStatus** (4 %, read-only): customer, their latest order, its lines.
* **StockLevel** (4 %, read-only): district, recent order lines, distinct
  stock rows below threshold.
* **Delivery** (4 %, write-heavy): for each of the 10 districts, consume the
  oldest new-order, update the order, its order lines, and the customer.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.workloads.tpcc.schema import DISTRICTS_PER_WAREHOUSE, TPCCDatabase, nurand
from repro.workloads.trace import PageRequest

__all__ = ["TransactionType", "TPCCTransactionGenerator", "STANDARD_MIX"]


class TransactionType(Enum):
    """TPC-C transaction types with their standard mix frequencies."""

    NEW_ORDER = "NewOrder"
    PAYMENT = "Payment"
    ORDER_STATUS = "OrderStatus"
    STOCK_LEVEL = "StockLevel"
    DELIVERY = "Delivery"


#: The paper's mix: NewOrder 45 %, Payment 43 %, OrderStatus 4 %,
#: StockLevel 4 %, Delivery 4 %.
STANDARD_MIX: dict[TransactionType, float] = {
    TransactionType.NEW_ORDER: 0.45,
    TransactionType.PAYMENT: 0.43,
    TransactionType.ORDER_STATUS: 0.04,
    TransactionType.STOCK_LEVEL: 0.04,
    TransactionType.DELIVERY: 0.04,
}

#: Cap on distinct stock probes in StockLevel.  The spec joins the last 20
#: orders' lines against stock (up to 200 probes); the simulator caps the
#: probe count to keep trace sizes manageable while preserving the
#: transaction's read-heavy footprint.  Documented in EXPERIMENTS.md.
_STOCK_LEVEL_PROBE_CAP = 60


class TPCCTransactionGenerator:
    """Generates page-request lists for TPC-C transactions."""

    def __init__(self, db: TPCCDatabase, seed: int = 42) -> None:
        self.db = db
        self.rng = random.Random(seed)
        self.aborted_new_orders = 0

    # ------------------------------------------------------------ helpers

    def _random_warehouse(self) -> int:
        return self.rng.randrange(self.db.warehouses)

    def _random_district(self) -> int:
        return self.rng.randrange(DISTRICTS_PER_WAREHOUSE)

    def _random_customer(self) -> int:
        return nurand(
            self.rng, 1023, 0, self.db.customers_per_district - 1,
            self.db.c_customer,
        ) % self.db.customers_per_district

    def _random_item(self) -> int:
        return nurand(
            self.rng, 8191, 0, self.db.num_items - 1, self.db.c_item
        ) % self.db.num_items

    def _customer_lookup(self, w: int, d: int) -> list[PageRequest]:
        """Customer selection: 60 % by last name (index scan), 40 % by id."""
        db = self.db
        c = self._random_customer()
        target = db.customer_page(w, d, c)
        requests: list[PageRequest] = []
        if self.rng.random() < 0.60:
            # A last-name lookup scans a few index/heap pages of the
            # district's customer range before settling on one row.
            for _ in range(2):
                neighbour = self.rng.randrange(db.customers_per_district)
                requests.append(
                    PageRequest(db.customer_page(w, d, neighbour), False)
                )
        requests.append(PageRequest(target, False))
        return requests

    # -------------------------------------------------------- transactions

    def new_order(self) -> list[PageRequest]:
        db, rng = self.db, self.rng
        w = self._random_warehouse()
        d = self._random_district()
        requests = [
            PageRequest(db.warehouse_page(w), False),      # W_TAX
            PageRequest(db.district_page(w, d), False),    # D_TAX, D_NEXT_O_ID
            PageRequest(db.district_page(w, d), True),     # bump D_NEXT_O_ID
            PageRequest(db.customer_page(w, d, self._random_customer()), False),
        ]
        ol_cnt = rng.randint(5, 15)
        item_phase: list[PageRequest] = []
        stock_writes: list[PageRequest] = []
        for _ in range(ol_cnt):
            item = self._random_item()
            item_phase.append(PageRequest(db.item_page(item), False))
            supply_w = w
            if db.warehouses > 1 and rng.random() < 0.01:
                supply_w = rng.randrange(db.warehouses)
            stock_page = db.stock_page(supply_w, item)
            item_phase.append(PageRequest(stock_page, False))
            stock_writes.append(PageRequest(stock_page, True))
        requests.extend(item_phase)
        if rng.random() < 0.01:
            # Invalid item: the transaction aborts after the lookups.
            self.aborted_new_orders += 1
            return requests
        requests.extend(stock_writes)
        order_seq = db.allocate_order(w, d)
        requests.append(PageRequest(db.order_page(w, d, order_seq), True))
        requests.append(PageRequest(db.new_order_page(w, d, order_seq), True))
        for page in db.order_line_pages(w, d, order_seq, ol_cnt):
            requests.append(PageRequest(page, True))
        return requests

    def payment(self) -> list[PageRequest]:
        db, rng = self.db, self.rng
        w = self._random_warehouse()
        d = self._random_district()
        # 15 % of payments are for a customer of a remote warehouse.
        customer_w, customer_d = w, d
        if db.warehouses > 1 and rng.random() < 0.15:
            customer_w = rng.randrange(db.warehouses)
            customer_d = self._random_district()
        requests = [
            PageRequest(db.warehouse_page(w), False),
            PageRequest(db.warehouse_page(w), True),       # W_YTD
            PageRequest(db.district_page(w, d), False),
            PageRequest(db.district_page(w, d), True),     # D_YTD
        ]
        lookup = self._customer_lookup(customer_w, customer_d)
        requests.extend(lookup)
        requests.append(PageRequest(lookup[-1].page, True))  # balance update
        requests.append(PageRequest(db.history_cursor.append(), True))
        return requests

    def order_status(self) -> list[PageRequest]:
        db = self.db
        w = self._random_warehouse()
        d = self._random_district()
        requests = self._customer_lookup(w, d)
        latest = db.latest_order(w, d)
        if latest is None:
            return requests
        requests.append(PageRequest(db.order_page(w, d, latest), False))
        for page in db.order_line_pages(w, d, latest, db.lines_per_order):
            requests.append(PageRequest(page, False))
        return requests

    def stock_level(self) -> list[PageRequest]:
        db, rng = self.db, self.rng
        w = self._random_warehouse()
        d = self._random_district()
        requests = [PageRequest(db.district_page(w, d), False)]
        seen_ol_pages: set[int] = set()
        probes = 0
        stock_pages: list[int] = []
        seen_stock: set[int] = set()
        for order_seq in db.recent_orders(w, d, 20):
            for page in db.order_line_pages(w, d, order_seq, db.lines_per_order):
                if page not in seen_ol_pages:
                    seen_ol_pages.add(page)
                    requests.append(PageRequest(page, False))
            # Each order's lines reference ~10 items whose stock is probed.
            for _ in range(db.lines_per_order):
                if probes >= _STOCK_LEVEL_PROBE_CAP:
                    break
                probes += 1
                page = db.stock_page(w, self._random_item())
                if page not in seen_stock:
                    seen_stock.add(page)
                    stock_pages.append(page)
        rng.shuffle(stock_pages)
        requests.extend(PageRequest(page, False) for page in stock_pages)
        return requests

    def delivery(self) -> list[PageRequest]:
        db = self.db
        w = self._random_warehouse()
        requests: list[PageRequest] = []
        for d in range(DISTRICTS_PER_WAREHOUSE):
            order_seq = db.pop_oldest_new_order(w, d)
            if order_seq is None:
                continue
            new_order_page = db.new_order_page(w, d, order_seq)
            requests.append(PageRequest(new_order_page, False))
            requests.append(PageRequest(new_order_page, True))   # delete row
            order_page = db.order_page(w, d, order_seq)
            requests.append(PageRequest(order_page, False))
            requests.append(PageRequest(order_page, True))       # O_CARRIER_ID
            for page in db.order_line_pages(w, d, order_seq, db.lines_per_order):
                requests.append(PageRequest(page, False))
                requests.append(PageRequest(page, True))         # OL_DELIVERY_D
            customer_page = db.customer_page(w, d, self._random_customer())
            requests.append(PageRequest(customer_page, False))
            requests.append(PageRequest(customer_page, True))    # C_BALANCE
        return requests

    def generate(self, kind: TransactionType) -> list[PageRequest]:
        """Dispatch to the generator for ``kind``."""
        generators = {
            TransactionType.NEW_ORDER: self.new_order,
            TransactionType.PAYMENT: self.payment,
            TransactionType.ORDER_STATUS: self.order_status,
            TransactionType.STOCK_LEVEL: self.stock_level,
            TransactionType.DELIVERY: self.delivery,
        }
        return generators[kind]()
