"""TPC-C workload driver: mix sampling and trace generation.

Builds a scaled :class:`~repro.workloads.tpcc.schema.TPCCDatabase`, seeds
its districts with initial orders (so Delivery/OrderStatus/StockLevel have
work on arrival, as after the standard initial load), and emits transaction
streams either at the paper's standard mix or as single-transaction-type
workloads (Figure 11 evaluates both).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.workloads.tpcc.schema import DISTRICTS_PER_WAREHOUSE, TPCCDatabase
from repro.workloads.tpcc.transactions import (
    STANDARD_MIX,
    TPCCTransactionGenerator,
    TransactionType,
)
from repro.workloads.trace import PageRequest, Trace

__all__ = ["TPCCWorkload"]


class TPCCWorkload:
    """A runnable TPC-C workload over a scaled database.

    Parameters
    ----------
    warehouses:
        Number of warehouses (the TPC-C scaling unit; Figure 12 sweeps it).
    row_scale:
        Per-warehouse cardinality scale (see
        :class:`~repro.workloads.tpcc.schema.TPCCDatabase`).
    initial_orders_per_district:
        Orders pre-created per district before the measured run, so the
        delivery queue and order history are non-empty.
    """

    def __init__(
        self,
        warehouses: int = 10,
        row_scale: float = 0.1,
        seed: int = 42,
        initial_orders_per_district: int = 30,
    ) -> None:
        self.db = TPCCDatabase(warehouses=warehouses, row_scale=row_scale, seed=seed)
        self.generator = TPCCTransactionGenerator(self.db, seed=seed + 1)
        self._rng = random.Random(seed + 2)
        for w in range(warehouses):
            for d in range(DISTRICTS_PER_WAREHOUSE):
                for _ in range(initial_orders_per_district):
                    self.db.allocate_order(w, d)

    @property
    def total_pages(self) -> int:
        return self.db.total_pages

    def sample_type(self, mix: dict[TransactionType, float] | None = None) -> TransactionType:
        """Draw a transaction type from ``mix`` (standard mix by default)."""
        if mix is None:
            mix = STANDARD_MIX
        kinds = list(mix)
        weights = [mix[kind] for kind in kinds]
        return self._rng.choices(kinds, weights=weights, k=1)[0]

    def transaction_stream(
        self,
        count: int,
        mix: dict[TransactionType, float] | None = None,
        only: TransactionType | None = None,
    ) -> Iterator[tuple[TransactionType, list[PageRequest]]]:
        """Yield ``count`` transactions as (type, page requests) pairs.

        ``only`` restricts the stream to a single transaction type, as in
        the paper's per-transaction TPC-C experiments.
        """
        if count < 0:
            raise ValueError("transaction count cannot be negative")
        for _ in range(count):
            kind = only if only is not None else self.sample_type(mix)
            yield kind, self.generator.generate(kind)

    def trace(
        self,
        count: int,
        mix: dict[TransactionType, float] | None = None,
        only: TransactionType | None = None,
    ) -> Trace:
        """Flatten a transaction stream into a page-request trace."""
        requests: list[PageRequest] = []
        for _, transaction in self.transaction_stream(count, mix=mix, only=only):
            requests.extend(transaction)
        label = only.value if only is not None else "mix"
        return Trace.from_requests(
            requests, name=f"tpcc-w{self.db.warehouses}-{label}"
        )
