"""Page-request traces: the interface between workloads and the bufferpool.

Every workload in the paper — pgbench-style synthetic mixes and TPC-C —
ultimately presents the bufferpool with a stream of (page, read/write)
requests.  :class:`Trace` stores that stream compactly (parallel lists) and
offers both bulk access for the executor's hot loop and a request-object
view for tests and examples.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

__all__ = ["PageRequest", "Trace"]


@dataclass(frozen=True)
class PageRequest:
    """One logical page access."""

    page: int
    is_write: bool

    def __str__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"{kind}({self.page})"


class Trace:
    """An ordered stream of page requests.

    ``client_ids`` is an optional parallel list attributing each request to
    the client session that issued it (see
    :func:`repro.engine.multiclient.interleave_traces`).  Single-client
    traces leave it ``None``; the serving layer then attributes every
    request to client 0.
    """

    def __init__(
        self,
        pages: list[int],
        writes: list[bool],
        name: str = "trace",
        client_ids: list[int] | None = None,
    ) -> None:
        if len(pages) != len(writes):
            raise ValueError(
                f"pages ({len(pages)}) and writes ({len(writes)}) differ in length"
            )
        if client_ids is not None and len(client_ids) != len(pages):
            raise ValueError(
                f"client_ids ({len(client_ids)}) and pages ({len(pages)}) "
                "differ in length"
            )
        self.pages = pages
        self.writes = writes
        self.name = name
        self.client_ids = client_ids

    @classmethod
    def from_arrays(
        cls, pages: np.ndarray, writes: np.ndarray, name: str = "trace"
    ) -> "Trace":
        """Build a trace from numpy arrays (generator fast path)."""
        return cls(pages.astype(np.int64).tolist(), writes.astype(bool).tolist(), name)

    @classmethod
    def from_requests(
        cls, requests: Iterable[PageRequest], name: str = "trace"
    ) -> "Trace":
        pages: list[int] = []
        writes: list[bool] = []
        for request in requests:
            pages.append(request.page)
            writes.append(request.is_write)
        return cls(pages, writes, name)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[PageRequest]:
        for page, is_write in zip(self.pages, self.writes):
            yield PageRequest(page, is_write)

    def __getitem__(self, index: int) -> PageRequest:
        return PageRequest(self.pages[index], self.writes[index])

    def concat(self, other: "Trace", name: str | None = None) -> "Trace":
        """A new trace running this trace followed by ``other``."""
        client_ids: list[int] | None = None
        if self.client_ids is not None or other.client_ids is not None:
            client_ids = (self.client_ids or [0] * len(self)) + (
                other.client_ids or [0] * len(other)
            )
        return Trace(
            self.pages + other.pages,
            self.writes + other.writes,
            name if name is not None else f"{self.name}+{other.name}",
            client_ids=client_ids,
        )

    def slice(self, start: int, stop: int) -> "Trace":
        client_ids = (
            self.client_ids[start:stop] if self.client_ids is not None else None
        )
        return Trace(
            self.pages[start:stop],
            self.writes[start:stop],
            self.name,
            client_ids=client_ids,
        )

    # ------------------------------------------------------------ metrics

    @property
    def num_writes(self) -> int:
        return sum(self.writes)

    @property
    def num_reads(self) -> int:
        return len(self) - self.num_writes

    @property
    def read_fraction(self) -> float:
        if not self.pages:
            return 0.0
        return self.num_reads / len(self)

    def unique_pages(self) -> int:
        return len(set(self.pages))

    def footprint(self) -> tuple[int, int]:
        """(min page, max page) touched by the trace."""
        if not self.pages:
            raise ValueError("empty trace has no footprint")
        return min(self.pages), max(self.pages)

    def locality(self, hot_fraction: float = 0.1, total_pages: int | None = None) -> float:
        """Fraction of accesses landing on the hottest ``hot_fraction`` pages.

        ``hot_fraction`` is taken relative to ``total_pages`` (the database
        page space) when given, else relative to the pages the trace
        touched.  For a 90/10 workload over its page space this returns
        ~0.9 with ``hot_fraction=0.1`` — the empirical check the Table II
        bench performs.
        """
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot fraction must be in (0, 1]: {hot_fraction}")
        if not self.pages:
            return 0.0
        counts: dict[int, int] = {}
        for page in self.pages:
            counts[page] = counts.get(page, 0) + 1
        page_space = total_pages if total_pages is not None else len(counts)
        hot_count = max(1, int(page_space * hot_fraction))
        hottest = sorted(counts.values(), reverse=True)[:hot_count]
        return sum(hottest) / len(self.pages)

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, ops={len(self)}, "
            f"read_fraction={self.read_fraction:.2f})"
        )
