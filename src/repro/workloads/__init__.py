"""Workload substrate: traces, synthetic mixes, pgbench, TPC-C."""

from repro.workloads.pgbench import PgbenchWorkload
from repro.workloads.synthetic import (
    MS,
    MU,
    PAPER_WORKLOADS,
    RIS,
    WIS,
    WorkloadSpec,
    generate_trace,
    rw_ratio_spec,
)
from repro.workloads.trace import PageRequest, Trace
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBConfig, generate_ycsb_trace

__all__ = [
    "save_trace",
    "load_trace",
    "YCSBConfig",
    "YCSB_WORKLOADS",
    "generate_ycsb_trace",
    "PageRequest",
    "Trace",
    "WorkloadSpec",
    "MS",
    "WIS",
    "RIS",
    "MU",
    "PAPER_WORKLOADS",
    "generate_trace",
    "rw_ratio_spec",
    "PgbenchWorkload",
]
