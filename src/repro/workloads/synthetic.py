"""Synthetic workloads: the paper's MS, WIS, RIS and MU mixes (Table II).

Each workload is characterised by a **read/write ratio** (the fraction of
page requests that are reads) and a **locality** ``x/y`` — ``x`` percent of
all operations touch ``y`` percent of the pages (90/10 for the skewed
workloads, uniform otherwise).  The paper's four synthetic workloads,
inspired by the flash-bufferpool literature it cites:

=====  ====================  ==========  =========
name   meaning               read/write  locality
=====  ====================  ==========  =========
MS     Mixed Skewed          50/50       90/10
WIS    Write-Intensive Skewed 10/90      90/10
RIS    Read-Intensive Skewed  90/10      90/10
MU     Mixed Uniform          50/50      uniform
=====  ====================  ==========  =========

The generator also powers the read/write-ratio sweeps of Figures 10c, 10d
and 10i (ratio 0/100 ... 100/0 at fixed 90/10 locality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

__all__ = [
    "WorkloadSpec",
    "MS",
    "WIS",
    "RIS",
    "MU",
    "PAPER_WORKLOADS",
    "generate_trace",
    "rw_ratio_spec",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a synthetic workload.

    Attributes
    ----------
    name:
        Short identifier used in reports ("MS", "WIS", ...).
    read_fraction:
        Probability that a request is a read (0.9 means 90/10 read/write).
    locality:
        ``(op_fraction, page_fraction)`` — e.g. ``(0.9, 0.1)`` sends 90 % of
        operations to a randomly chosen 10 % of the pages; ``None`` means
        uniform access.
    description:
        Human-readable label.
    """

    name: str
    read_fraction: float
    locality: tuple[float, float] | None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read fraction must be in [0, 1]: {self.read_fraction}"
            )
        if self.locality is not None:
            op_fraction, page_fraction = self.locality
            if not 0.0 < op_fraction < 1.0 or not 0.0 < page_fraction < 1.0:
                raise ValueError(f"locality fractions must be in (0, 1): {self.locality}")


MS = WorkloadSpec("MS", 0.5, (0.9, 0.1), "Mixed Skewed (50/50 r/w, 90/10)")
WIS = WorkloadSpec("WIS", 0.1, (0.9, 0.1), "Write-Intensive Skewed (10/90 r/w, 90/10)")
RIS = WorkloadSpec("RIS", 0.9, (0.9, 0.1), "Read-Intensive Skewed (90/10 r/w, 90/10)")
MU = WorkloadSpec("MU", 0.5, None, "Mixed Uniform (50/50 r/w, uniform)")

#: The paper's four synthetic workloads, in presentation order.
PAPER_WORKLOADS = (MS, WIS, RIS, MU)


def rw_ratio_spec(read_fraction: float) -> WorkloadSpec:
    """A 90/10-locality workload with the given read fraction.

    Used for the read/write-ratio sweeps (Figures 10c, 10d, 10i), where the
    paper varies the ratio from 0/100 (write-only) to 100/0 (read-only) at
    locality 90/10.
    """
    percent_reads = round(read_fraction * 100)
    return WorkloadSpec(
        name=f"{percent_reads}/{100 - percent_reads}",
        read_fraction=read_fraction,
        locality=(0.9, 0.1),
        description=f"{percent_reads}% reads, 90/10 locality",
    )


def generate_trace(
    spec: WorkloadSpec,
    num_pages: int,
    num_ops: int,
    seed: int = 42,
) -> Trace:
    """Generate a page-request trace for ``spec`` over ``num_pages`` pages.

    The hot set is a random subset of the page space (not a contiguous
    prefix), so sequential-prefetch effects do not leak into skew effects.
    Generation is vectorised with numpy and fully determined by ``seed``.
    """
    if num_pages < 2:
        raise ValueError(f"need at least 2 pages: {num_pages}")
    if num_ops < 1:
        raise ValueError(f"need at least 1 operation: {num_ops}")
    rng = np.random.default_rng(seed)

    if spec.locality is None:
        pages = rng.integers(0, num_pages, num_ops)
    else:
        op_fraction, page_fraction = spec.locality
        hot_count = max(1, int(round(num_pages * page_fraction)))
        permutation = rng.permutation(num_pages)
        hot_pages = permutation[:hot_count]
        cold_pages = permutation[hot_count:]
        goes_hot = rng.random(num_ops) < op_fraction
        hot_choices = hot_pages[rng.integers(0, len(hot_pages), num_ops)]
        cold_choices = cold_pages[rng.integers(0, len(cold_pages), num_ops)]
        pages = np.where(goes_hot, hot_choices, cold_choices)

    writes = rng.random(num_ops) >= spec.read_fraction
    return Trace.from_arrays(pages, writes, name=spec.name)
