"""Exception hierarchy for the repro library."""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "ReproError",
    "BufferPoolError",
    "PoolExhaustedError",
    "PageNotBufferedError",
    "SanitizerError",
    "IOFaultError",
    "TornWriteError",
    "CorruptPageError",
    "RetriesExhaustedError",
    "PowerFailure",
    "NodeFailure",
    "ClusterReplayError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class PowerFailure(ReproError):
    """The simulated machine lost power at an I/O boundary.

    Raised by the crash-point engine's schedule hooks
    (:mod:`repro.verify.crashpoints`) and by a torn WAL flush.  This is
    deliberately *not* an :class:`IOFaultError`: power loss is not a device
    fault the retry machinery may absorb — it must unwind the whole run so
    the harness can take a :func:`~repro.bufferpool.recovery.simulate_crash`
    image.

    ``boundary`` is the global write-boundary ordinal at which the power
    failed; ``site`` names the kind of boundary (``"data-write"``,
    ``"wal-flush"``, ``"wal-checkpoint"``, ``"redo-write"``).
    """

    def __init__(self, site: str, boundary: int, message: str = "") -> None:
        self.site = site
        self.boundary = boundary
        detail = f": {message}" if message else ""
        super().__init__(
            f"power failure at {site} boundary {boundary}{detail}"
        )


class BufferPoolError(ReproError):
    """Base class for buffer manager errors."""


class NodeFailure(ReproError):
    """A shard node died and its replica group could not absorb the loss.

    Raised by :mod:`repro.cluster.replication` when a primary crashes and
    no live replica remains to promote — the deterministic end of a
    replica group, not a transient worker accident.  Structured so the
    cluster engine (and callers catching the wrapping
    :class:`ClusterReplayError`) can key off the failure instead of
    parsing a traceback:

    ``shard``/``node``
        The replica-group member that took the group down.
    ``virtual_time_us``
        The shard group's virtual clock when the crash was detected.
    ``cause``
        Short text: what killed the node and why no failover was
        possible.
    ``partial_metrics``
        The shard's :class:`~repro.engine.metrics.RunMetrics` up to the
        last commit boundary (``None`` when nothing committed) — the
        work the cluster verifiably completed before the loss.

    Instances cross the worker process boundary intact: ``__reduce__``
    rebuilds the exception from its structured fields, so the parent
    process sees the same shard/node/cause the worker raised.
    """

    def __init__(
        self,
        shard: int,
        node: int,
        virtual_time_us: float,
        cause: str,
        partial_metrics: object | None = None,
    ) -> None:
        self.shard = shard
        self.node = node
        self.virtual_time_us = virtual_time_us
        self.cause = cause
        self.partial_metrics = partial_metrics
        super().__init__(
            f"node {node} of shard {shard} failed at "
            f"t={virtual_time_us:.0f}us: {cause}"
        )

    def __reduce__(self):
        return (
            type(self),
            (self.shard, self.node, self.virtual_time_us, self.cause,
             self.partial_metrics),
        )


class ClusterReplayError(ReproError):
    """A shard replay failed for good in a cluster run.

    Raised by :mod:`repro.cluster.engine` when a shard job still fails
    after its retry budget (fresh worker pools per round) is spent.  A
    cluster cannot drop a shard and keep reporting merged metrics — the
    aggregates would be silently missing that shard's work — so the
    whole run unwinds.  ``shard`` is the shard id, ``attempts`` the
    tries made, ``error`` the final failure rendered as text (the
    original exception object may not survive the process boundary).

    ``failure`` carries the structured :class:`NodeFailure` when the
    shard died deterministically inside a replica group (no retry can
    change a seeded fault schedule, so those wrap after one attempt);
    it is ``None`` for ordinary worker failures.
    """

    def __init__(
        self,
        shard: int,
        attempts: int,
        error: str,
        failure: NodeFailure | None = None,
    ) -> None:
        self.shard = shard
        self.attempts = attempts
        self.error = error
        self.failure = failure
        super().__init__(
            f"shard {shard} replay failed after {attempts} attempts: {error}"
        )


class PoolExhaustedError(BufferPoolError):
    """Raised when no frame can be freed (every candidate is pinned).

    Structured like :class:`SanitizerError` so tooling and logs can key off
    the failure: ``page`` is the request that could not be served,
    ``capacity`` the pool size, ``pinned`` how many resident pages were
    pinned at the time, and ``candidates_examined`` how many eviction
    candidates the raiser inspected before giving up (when the raiser knows
    them).  The serving layer uses ``pinned``/``capacity`` to decide
    between requeue (transient pin pressure) and shed.
    """

    def __init__(
        self,
        message: str,
        page: int | None = None,
        capacity: int | None = None,
        pinned: int | None = None,
        candidates_examined: int | None = None,
    ) -> None:
        self.page = page
        self.capacity = capacity
        self.pinned = pinned
        self.candidates_examined = candidates_examined
        context = []
        if page is not None:
            context.append(f"requested page {page}")
        if capacity is not None:
            context.append(f"pool capacity {capacity}")
        if pinned is not None:
            context.append(f"{pinned} pinned")
        if candidates_examined is not None:
            context.append(f"{candidates_examined} candidates examined")
        suffix = f" ({', '.join(context)})" if context else ""
        super().__init__(f"{message}{suffix}")


class PageNotBufferedError(BufferPoolError):
    """Raised when an operation requires a page to be resident and it is not."""


class SanitizerError(BufferPoolError):
    """A bufferpool invariant was violated (see ``repro.analyze.sanitizer``).

    Structured so tooling can key off the failure: ``invariant`` names the
    broken invariant, ``operation`` the public manager call after which it
    was detected, and ``page``/``frame`` the entity involved when known.
    """

    def __init__(
        self,
        invariant: str,
        operation: str,
        message: str,
        page: int | None = None,
        frame: int | None = None,
    ) -> None:
        self.invariant = invariant
        self.operation = operation
        self.page = page
        self.frame = frame
        location = ""
        if page is not None:
            location += f" (page {page}"
            location += f", frame {frame})" if frame is not None else ")"
        elif frame is not None:
            location += f" (frame {frame})"
        super().__init__(
            f"[{invariant}] after {operation}{location}: {message}"
        )


class IOFaultError(ReproError):
    """A device I/O operation failed (injected by :mod:`repro.faults`).

    Structured so the retry layer can act on it without string matching:

    ``op``
        ``"read"`` or ``"write"``.
    ``pages``
        The pages the failure applies to (sorted tuple).
    ``acknowledged``
        Pages of the same operation that *did* reach the device before the
        failure — non-empty for torn batches and for batches containing a
        mix of healthy and permanently bad pages.  Acknowledged writes are
        durable; the caller must mark them clean.
    ``permanent``
        ``True`` for media errors that no retry can fix.
    """

    def __init__(
        self,
        op: str,
        pages: Iterable[int],
        message: str,
        acknowledged: Iterable[int] = (),
        permanent: bool = False,
    ) -> None:
        self.op = op
        self.pages = tuple(pages)
        self.acknowledged = tuple(acknowledged)
        self.permanent = permanent
        pages_text = ",".join(map(str, self.pages[:8]))
        if len(self.pages) > 8:
            pages_text += ",..."
        super().__init__(f"{op} fault on page(s) [{pages_text}]: {message}")


class TornWriteError(IOFaultError):
    """A multi-page write batch landed only partially.

    ``acknowledged`` is the prefix of the batch (in submission order) that
    is durable on the device; ``pages`` are the writes that were lost.
    """

    def __init__(
        self,
        pages: Iterable[int],
        acknowledged: Iterable[int],
        message: str = "batch torn; only a prefix was written",
    ) -> None:
        super().__init__(
            "write", pages, message, acknowledged=acknowledged, permanent=False
        )


class CorruptPageError(IOFaultError):
    """A page's stored payload does not match its recorded checksum.

    Raised by a checksum-enabled :class:`~repro.storage.device.SimulatedSSD`
    when a read (or an explicit verify) finds the payload inconsistent with
    the device's out-of-band checksum metadata — the read-time detection
    half of the silent-corruption story.  Permanent by construction: no
    retry re-reads the bytes into health; the page must be *repaired* from
    a WAL redo image (:mod:`repro.bufferpool.repair`).

    ``stored_checksum`` is the checksum the device recorded for the page;
    ``computed_checksum`` is the checksum of the payload actually present.
    """

    def __init__(
        self,
        page: int,
        stored_checksum: int,
        computed_checksum: int,
        message: str = "checksum mismatch (silent corruption detected)",
    ) -> None:
        super().__init__("read", (page,), message, permanent=True)
        self.page = page
        self.stored_checksum = stored_checksum
        self.computed_checksum = computed_checksum


class RetriesExhaustedError(IOFaultError):
    """The retry policy gave up on an I/O operation.

    ``attempts`` is the number of attempts made; ``last_fault`` the final
    :class:`IOFaultError` observed (``None`` when the raiser aggregates
    several failures, e.g. "no clean eviction candidate").
    """

    def __init__(
        self,
        op: str,
        pages: Iterable[int],
        attempts: int,
        message: str,
        last_fault: IOFaultError | None = None,
    ) -> None:
        super().__init__(op, pages, f"{message} (after {attempts} attempts)")
        self.attempts = attempts
        self.last_fault = last_fault
