"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = ["ReproError", "BufferPoolError", "PoolExhaustedError", "PageNotBufferedError"]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class BufferPoolError(ReproError):
    """Base class for buffer manager errors."""


class PoolExhaustedError(BufferPoolError):
    """Raised when no frame can be freed (every page is pinned)."""


class PageNotBufferedError(BufferPoolError):
    """Raised when an operation requires a page to be resident and it is not."""
