"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BufferPoolError",
    "PoolExhaustedError",
    "PageNotBufferedError",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class BufferPoolError(ReproError):
    """Base class for buffer manager errors."""


class PoolExhaustedError(BufferPoolError):
    """Raised when no frame can be freed (every page is pinned)."""


class PageNotBufferedError(BufferPoolError):
    """Raised when an operation requires a page to be resident and it is not."""


class SanitizerError(BufferPoolError):
    """A bufferpool invariant was violated (see ``repro.analyze.sanitizer``).

    Structured so tooling can key off the failure: ``invariant`` names the
    broken invariant, ``operation`` the public manager call after which it
    was detected, and ``page``/``frame`` the entity involved when known.
    """

    def __init__(
        self,
        invariant: str,
        operation: str,
        message: str,
        page: int | None = None,
        frame: int | None = None,
    ) -> None:
        self.invariant = invariant
        self.operation = operation
        self.page = page
        self.frame = frame
        location = ""
        if page is not None:
            location += f" (page {page}"
            location += f", frame {frame})" if frame is not None else ")"
        elif frame is not None:
            location += f" (frame {frame})"
        super().__init__(
            f"[{invariant}] after {operation}{location}: {message}"
        )
