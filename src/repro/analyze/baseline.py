"""Baseline suppression for the lint driver: adopt now, ratchet later.

Turning a new rule on over an old tree surfaces findings nobody can fix
today.  A baseline file records their *fingerprints*; a later run with
``--baseline <file>`` demotes exactly those findings to warnings and
fails only on new ones, so the rule ratchets forward instead of being
watered down or hatched wholesale.

Fingerprints are deliberately line-number-independent: a finding is
identified by ``(path, rule, message, occurrence-index)``, where the
index counts findings with the same path/rule/message triple in report
order.  Pure line motion (an unrelated edit above the finding) does not
invalidate the baseline; changing the offending code does, because the
rule message embeds the specifics.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analyze.lint import Violation

__all__ = [
    "fingerprints",
    "load_baseline",
    "split_by_baseline",
    "write_baseline_file",
]

_VERSION = 1


def fingerprints(violations: Iterable[Violation]) -> list[str]:
    """One stable fingerprint per finding, order-aligned with the input."""
    counts: dict[tuple[str, str, str], int] = {}
    out: list[str] = []
    for violation in violations:
        key = (
            Path(violation.path).as_posix(),
            violation.rule,
            violation.message,
        )
        index = counts.get(key, 0)
        counts[key] = index + 1
        digest = hashlib.sha256(
            "|".join([*key, str(index)]).encode("utf-8")
        ).hexdigest()[:16]
        out.append(digest)
    return out


def write_baseline_file(
    path: str | Path, violations: Sequence[Violation]
) -> None:
    """Record the current findings as the accepted baseline."""
    document = {
        "version": _VERSION,
        "fingerprints": sorted(set(fingerprints(violations))),
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def load_baseline(path: str | Path) -> frozenset[str]:
    """The accepted fingerprints from a baseline file.

    A malformed file raises ``ValueError`` — a silently empty baseline
    would resurface every accepted finding as a hard failure.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != _VERSION
        or not isinstance(document.get("fingerprints"), list)
    ):
        raise ValueError(
            f"baseline {path} is not a version-{_VERSION} baseline document"
        )
    return frozenset(
        fp for fp in document["fingerprints"] if isinstance(fp, str)
    )


def split_by_baseline(
    violations: Sequence[Violation], accepted: frozenset[str]
) -> tuple[list[Violation], list[Violation]]:
    """Partition findings into (new, baselined)."""
    new: list[Violation] = []
    known: list[Violation] = []
    for violation, fingerprint in zip(violations, fingerprints(violations)):
        (known if fingerprint in accepted else new).append(violation)
    return new, known
