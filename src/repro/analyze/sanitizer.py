"""Runtime invariant sanitizer for the bufferpool.

PR 1's hot-path rewrites traded obviousness for speed: the manager keeps
O(1) mirror sets (``_dirty_set``/``_pinned_set``) shadowing the descriptor
bits, policies expose lazily materialised virtual orders, and the request
path caches direct aliases of the table/descriptor containers.  Each of
those is an invariant that a one-line bug can silently break — a stale
mirror entry changes *which pages CFLRU evicts* without failing a single
assertion.

This module is the dynamic counterpart to the :mod:`repro.analyze.rules`
lint pass: an :class:`InvariantSanitizer` attached to a
:class:`~repro.bufferpool.manager.BufferPoolManager` re-validates the full
invariant set after **every public operation** (``read_page``,
``write_page``, ``pin``, ``unpin``, ``flush_page``, ``flush_all``):

* pin counts are non-negative and pinned pages are never evicted;
* the dirty mirror set equals the descriptors' dirty flags exactly
  (and likewise the pinned mirror);
* the free list is disjoint from the buffer table and length-consistent;
* ``resident_pages()`` is consistent with frame occupancy, and the
  replacement policy tracks exactly the resident pages;
* ``eviction_order()`` leaves policy state bit-identical (snapshot /
  consume / compare) and yields resident, unpinned, duplicate-free pages;
* the policy's maintained fast paths (``peek`` / ``next_dirty`` /
  ``next_clean``) return exactly the reference prefixes derived from
  ``eviction_order()``, and its notification-fed pin mirror agrees with
  the manager's — the runtime teeth behind the incremental virtual-order
  engine;
* the WAL's durable record/LSN index (when a WAL is attached) stays
  aligned at its tail — length-consistent, strictly increasing, with
  ``durable_lsn`` equal to the last indexed LSN.

The first violation raises a structured
:class:`~repro.errors.SanitizerError` naming the invariant, the operation,
and the page/frame involved.

Enable it with ``REPRO_SANITIZE=1`` in the environment (picked up by every
manager built afterwards, including inside worker processes) or explicitly
with ``BufferPoolManager(..., sanitize=True)`` /
``StackConfig(..., sanitize=True)``.  It is a debugging tool: expect an
order-of-magnitude slowdown (quantified in ``docs/tuning.md``), which is
why it is opt-in and CI runs the test suite once with it on.
"""

from __future__ import annotations

import functools
import os
from typing import TYPE_CHECKING

from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.bufferpool.manager import BufferPoolManager

__all__ = [
    "ENV_VAR",
    "InvariantSanitizer",
    "SanitizerError",
    "attach",
    "env_enabled",
]

#: Environment switch: any value other than empty/0/false/no/off enables
#: the sanitizer for every manager constructed afterwards.
ENV_VAR = "REPRO_SANITIZE"

_FALSY = frozenset({"", "0", "false", "no", "off"})


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitised managers."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def _snapshot(value: object) -> object:
    """A deep, order-sensitive, hashable image of policy state.

    Cheaper than ``copy.deepcopy`` and directly comparable: dict order is
    captured (a pure ``eviction_order`` may not even reorder an
    ``OrderedDict``), sets compare unordered, unknown objects fall back to
    ``repr``.
    """
    if isinstance(value, (int, float, str, bytes, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return ("dict", tuple((k, _snapshot(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_snapshot(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", frozenset(_snapshot(v) for v in value))
    return ("repr", repr(value))


class InvariantSanitizer:
    """Validates a manager's cross-structure invariants after each op."""

    #: Prefix length compared between the maintained fast paths and the
    #: reference ``eviction_order()`` after every operation.
    FAST_PATH_PREFIX = 8

    #: Public manager operations wrapped by :func:`attach`.
    WRAPPED_OPS = (
        "read_page",
        "write_page",
        "pin",
        "unpin",
        "flush_page",
        "flush_all",
    )

    def __init__(self, manager: "BufferPoolManager") -> None:
        self.manager = manager
        #: Number of post-operation validations performed.
        self.checks_run = 0

    # ------------------------------------------------------------ validate

    def validate(self, operation: str, page: int | None = None) -> None:
        """Run every invariant check; raise ``SanitizerError`` on the first
        violation, naming ``operation`` as the triggering call."""
        self.checks_run += 1
        self._check_pins(operation)
        self._check_dirty_mirror(operation)
        self._check_free_list(operation)
        self._check_residency(operation)
        self._check_virtual_order(operation)
        self._check_fast_paths(operation)
        self._check_wal_index(operation)

    def assert_clean(self) -> None:
        """Validate outside any operation (e.g. at end of a test)."""
        self.validate("assert_clean")

    # ------------------------------------------------------------- checks

    def _check_pins(self, operation: str) -> None:
        manager = self.manager
        frame_of = manager.table._frame_of  # lint: allow-translation
        pinned_pages: set[int] = set()
        for descriptor in manager.pool.descriptors:
            if descriptor.pin_count < 0:
                raise SanitizerError(
                    "pin-count-negative", operation,
                    f"pin count {descriptor.pin_count}",
                    page=descriptor.page, frame=descriptor.frame_id,
                )
            if descriptor.in_use and descriptor.pin_count > 0:
                pinned_pages.add(descriptor.page)
        for page in manager._pinned_set:
            if page not in frame_of:
                raise SanitizerError(
                    "pinned-evicted", operation,
                    "page is in the pinned mirror set but no longer "
                    "resident — a pinned page was evicted",
                    page=page,
                )
        if pinned_pages != manager._pinned_set:
            diff = pinned_pages.symmetric_difference(manager._pinned_set)
            sample = next(iter(diff))
            raise SanitizerError(
                "pinned-mirror", operation,
                f"pinned mirror set disagrees with descriptors on "
                f"{sorted(diff)}",
                page=sample,
            )

    def _check_dirty_mirror(self, operation: str) -> None:
        manager = self.manager
        dirty_pages = {
            descriptor.page
            for descriptor in manager.pool.descriptors
            if descriptor.in_use and descriptor.dirty
        }
        if dirty_pages != manager._dirty_set:
            diff = dirty_pages.symmetric_difference(manager._dirty_set)
            sample = next(iter(diff))
            raise SanitizerError(
                "dirty-mirror", operation,
                f"dirty mirror set disagrees with descriptor dirty flags "
                f"on {sorted(diff)}",
                page=sample,
            )

    def _check_wal_index(self, operation: str) -> None:
        """The WAL's durable index must stay internally consistent.

        Recovery and the bisect-backed ``records_since`` both trust the
        in-memory durable index; a record list that disagrees with its LSN
        index (length mismatch, non-monotone LSNs, or a ``durable_lsn``
        that is not the index tail) would silently corrupt the redo window.
        """
        wal = self.manager.wal
        if wal is None:
            return
        lsns = wal._durable_lsns
        records = wal._durable_records
        if len(lsns) != len(records):
            raise SanitizerError(
                "wal-index", operation,
                f"durable LSN index has {len(lsns)} entries for "
                f"{len(records)} durable records",
            )
        if not lsns:
            return
        # O(1) per op on purpose (the index grows with the run): the tail
        # is where every append lands, so tail corruption is caught on the
        # very operation that introduced it.
        if len(lsns) >= 2 and lsns[-2] >= lsns[-1]:
            raise SanitizerError(
                "wal-index", operation,
                f"durable LSN index tail is not increasing "
                f"({lsns[-2]} >= {lsns[-1]})",
            )
        if records[-1].lsn != lsns[-1]:
            raise SanitizerError(
                "wal-index", operation,
                f"durable index tail {lsns[-1]} disagrees with the last "
                f"durable record's LSN {records[-1].lsn}",
            )
        if wal.durable_lsn != lsns[-1]:
            raise SanitizerError(
                "wal-index", operation,
                f"durable_lsn {wal.durable_lsn} is not the index tail "
                f"{lsns[-1]}",
            )

    def _check_free_list(self, operation: str) -> None:
        manager = self.manager
        pool = manager.pool
        frame_of = manager.table._frame_of  # lint: allow-translation
        free = pool._free
        if len(free) + len(frame_of) != pool.capacity:
            raise SanitizerError(
                "free-list-count", operation,
                f"{len(free)} free + {len(frame_of)} mapped != capacity "
                f"{pool.capacity}",
            )
        occupied = set(frame_of.values())
        for frame_id in free:
            if frame_id in occupied:
                raise SanitizerError(
                    "free-list-overlap", operation,
                    "frame is both on the free list and in the buffer table",
                    frame=frame_id,
                )
            if pool.descriptors[frame_id].in_use:
                raise SanitizerError(
                    "free-frame-in-use", operation,
                    "free-listed frame has an in-use descriptor",
                    page=pool.descriptors[frame_id].page, frame=frame_id,
                )

    def _check_residency(self, operation: str) -> None:
        manager = self.manager
        frame_of = manager.table._frame_of  # lint: allow-translation
        descriptors = manager.pool.descriptors
        for page, frame_id in frame_of.items():
            if descriptors[frame_id].page != page:
                raise SanitizerError(
                    "table-descriptor-mismatch", operation,
                    f"buffer table maps the page to frame {frame_id}, whose "
                    f"descriptor holds page {descriptors[frame_id].page}",
                    page=page, frame=frame_id,
                )
        occupied = {d.page for d in descriptors if d.in_use}
        if occupied != set(frame_of):
            diff = occupied.symmetric_difference(frame_of)
            raise SanitizerError(
                "resident-set", operation,
                f"frame occupancy disagrees with the buffer table on "
                f"{sorted(diff)}",
                page=next(iter(diff)),
            )
        tracked = set(manager.policy.pages())
        if tracked != set(frame_of):
            diff = tracked.symmetric_difference(frame_of)
            raise SanitizerError(
                "policy-membership", operation,
                f"replacement policy tracks a different page set than the "
                f"buffer table; disagreement on {sorted(diff)}",
                page=next(iter(diff)),
            )

    def _check_virtual_order(self, operation: str) -> None:
        manager = self.manager
        policy = manager.policy
        state = vars(policy)
        before = {
            name: _snapshot(value)
            for name, value in state.items()
            if name != "_view"
        }
        order = list(policy.eviction_order())
        after = {
            name: _snapshot(value)
            for name, value in state.items()
            if name != "_view"
        }
        if before != after:
            changed = sorted(
                name for name in before if before[name] != after.get(name)
            )
            raise SanitizerError(
                "virtual-order-purity", operation,
                f"eviction_order() mutated policy state: {changed} "
                f"({type(policy).__name__})",
            )
        resident = manager.table._frame_of  # lint: allow-translation
        seen: set[int] = set()
        for page in order:
            if page in seen:
                raise SanitizerError(
                    "virtual-order-duplicates", operation,
                    "eviction_order() yielded the page twice",
                    page=page,
                )
            seen.add(page)
            if page not in resident:
                raise SanitizerError(
                    "virtual-order-membership", operation,
                    "eviction_order() yielded a non-resident page",
                    page=page,
                )
            if page in manager._pinned_set:
                raise SanitizerError(
                    "virtual-order-pinned", operation,
                    "eviction_order() yielded a pinned page",
                    page=page,
                )

    def _check_fast_paths(self, operation: str) -> None:
        """The maintained bulk reads must match the reference prefixes.

        ``peek``/``next_dirty``/``next_clean`` are each compared against
        the base class's ``_reference_*`` helpers, which derive the same
        prefix directly from ``eviction_order()`` — the definitional
        contract of the incremental virtual-order engine.  When the policy
        is notification-fed, its pin mirror must also agree with the
        manager's (``_check_virtual_order`` already ran, so the reference
        prefixes themselves are trustworthy here).
        """
        manager = self.manager
        policy = manager.policy
        if policy._notified and policy._pinned_pages != manager._pinned_set:
            diff = policy._pinned_pages.symmetric_difference(
                manager._pinned_set
            )
            raise SanitizerError(
                "policy-pin-mirror", operation,
                f"policy pin mirror disagrees with the manager on "
                f"{sorted(diff)} ({type(policy).__name__})",
                page=next(iter(diff)),
            )
        k = self.FAST_PATH_PREFIX
        for label, fast, reference in (
            ("peek", policy.peek, policy._reference_peek),
            ("next_dirty", policy.next_dirty, policy._reference_next_dirty),
            ("next_clean", policy.next_clean, policy._reference_next_clean),
        ):
            got = fast(k)
            expected = reference(k)
            if got != expected:
                raise SanitizerError(
                    f"fast-path-{label}", operation,
                    f"{type(policy).__name__}.{label}({k}) returned {got}, "
                    f"reference order gives {expected}",
                    page=next(
                        iter(set(got).symmetric_difference(expected)), None
                    ),
                )


def _wrap_operation(sanitizer: InvariantSanitizer, name: str, original):
    """A bound-method wrapper: run the op, then validate the full state."""

    @functools.wraps(original)
    def checked(*args: object, **kwargs: object) -> object:
        result = original(*args, **kwargs)
        page = args[0] if args and isinstance(args[0], int) else None
        sanitizer.validate(name, page=page)
        return result

    return checked


def attach(manager: "BufferPoolManager") -> InvariantSanitizer:
    """Attach a sanitizer to ``manager``, wrapping its public operations.

    Idempotent: re-attaching returns the existing sanitizer.  The wrappers
    are instance attributes, so the class (and every unsanitised manager)
    keeps its zero-overhead fast path.
    """
    existing = getattr(manager, "sanitizer", None)
    if existing is not None:
        return existing
    sanitizer = InvariantSanitizer(manager)
    for name in InvariantSanitizer.WRAPPED_OPS:
        original = getattr(manager, name)
        setattr(manager, name, _wrap_operation(sanitizer, name, original))
    manager.sanitizer = sanitizer
    return sanitizer
