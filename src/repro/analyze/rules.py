"""The repo-specific lint rules (R001-R014).

Each rule encodes a contract the simulator depends on but no generic tool
checks.  R001-R007, R013 and R014 are per-file AST rules; R008 is a
whole-program rule over the import graph (:mod:`repro.analyze.graph`),
R009-R011 are flow-sensitive rules built on the CFG/dataflow framework
(:mod:`repro.analyze.cfg`, :mod:`repro.analyze.dataflow`), and R012 is a
cross-file project rule over the parsed ASTs:

R001 *determinism*
    The simulation packages (``repro.core``, ``repro.policies``,
    ``repro.bufferpool``, ``repro.storage``, ``repro.workloads``,
    ``repro.engine``, ``repro.faults``) must be pure functions of their
    inputs: identical
    configs and seeds must replay identically, serially or across the
    parallel fan-out.  Module-level ``random.*`` calls, unseeded RNG
    constructions, wall-clock reads, and environment lookups all break
    that, silently.

R002 *encapsulation*
    Only ``repro.bufferpool`` assigns the descriptor state bits (``dirty``,
    ``pin_count``, ``usage``, ``cold``, ``prefetched``).  Policies observe
    page state through :class:`~repro.policies.base.PageStateView`; a policy
    that writes descriptor fields directly desynchronises the manager's
    O(1) mirror sets.

R003 *virtual-order purity*
    ``eviction_order()`` is the policy's side-effect-free virtual order
    (paper Section III); ACE's Writer and Evictor peek at it on every dirty
    miss.  Any mutation of ``self`` state inside it corrupts the policy as
    a side effect of *reading* it.  Escape hatch for deliberate exceptions:
    ``# lint: allow-mutation`` on the offending line.

R004 *picklability*
    :class:`~repro.bench.parallel.TraceSpec` and ``GridJob`` cross process
    boundaries; lambdas, closures, and function-local classes flowing into
    their construction die inside ``ProcessPoolExecutor`` with an opaque
    pickling error at fan-out time.  This rule moves that failure to lint
    time.

R005 *io-fault-handling*
    With :mod:`repro.faults` in the stack, device I/O can raise
    :class:`~repro.errors.IOFaultError`.  An ``except`` around a device
    read/write that swallows such faults silently converts an injected
    failure into lost work — the exact bug class the fault layer exists to
    surface.  Handlers catching fault(-compatible) exceptions around device
    I/O must re-raise or visibly route through the retry/degradation
    machinery.  Escape hatch: ``# lint: allow-io-swallow``.

R006 *serving-virtual-time*
    ``repro.engine.serving`` admission deadlines, requeue backoffs, and
    breaker cooldowns are virtual-clock quantities; a wall-clock deadline
    would make shed/expire decisions host-dependent and break replay.
    Stricter than R001's call denylist: the package must not import or
    touch the ``time``/``datetime`` modules at all (``time.sleep``
    included).  Escape hatch: ``# lint: allow-wall-clock``.

R007 *translation-encapsulation*
    The page→frame translation structures (``_slots``, ``_frame_of``) are
    owned by :mod:`repro.bufferpool.table`.  Code elsewhere that reaches
    into another object's translation internals (``manager._slots[page]``,
    ``table._frame_of[page]``) bakes in one backend's representation and
    silently diverges when the dict/array backend switches; go through
    ``table.lookup``/``table.pages`` or the manager's resident API.  The
    deliberate hot-path aliases (manager construction, the executor's
    inlined replay, crash bricking, the sanitizer's ground-truth peek)
    carry the escape hatch ``# lint: allow-translation``.

R008 *layering*
    The architecture is a declared DAG of package layers
    (:data:`repro.analyze.graph.LAYER_DEPS`): ``repro.policies`` and
    ``repro.bufferpool`` must never import the engine/bench/serving
    layers above them, ``repro.analyze`` stands alone on
    ``repro.errors``, and no module-scope import cycles may exist at
    module granularity.  ``TYPE_CHECKING`` imports are exempt.  Escape
    hatch: ``# lint: allow-layering``.

R009 *iteration-order determinism*
    Iterating a ``set``/``frozenset`` yields hash order — stable within
    one process, but dependent on insertion history, which is exactly
    the kind of order that silently diverges between "should be
    identical" runs.  Values derived from set iteration must not flow
    into ordered outputs (list appends, ``list()``/``tuple()``
    materialisation, ``yield``, ``str.join``) without an intervening
    ``sorted()``.  Escape hatch: ``# lint: allow-set-order``.

R010 *batched-counter exception safety*
    The executor fast paths accumulate commuting integer deltas in
    locals and flush them into stats/metrics objects once — the
    ``_replay_turbo_baseline`` contract is that a mid-trace exception
    flushes the same totals the per-request path would have recorded.
    Mechanically: a local accumulated with ``+=`` inside a loop and
    flushed into a stats/metrics attribute must reach that flush on
    *every* CFG path to the function exit, including the implicit
    may-raise edges — in practice, the flush belongs in a ``finally``.
    Escape hatch: ``# lint: allow-unflushed-counter``.

R011 *value-level wall-clock taint*
    Generalizes R001/R006 from call denylists to dataflow: any value
    tainted by ``time.*``/``datetime.*``/``os.environ`` must not reach
    simulation state, metrics objects, or control flow anywhere under
    ``repro``.  Reading the wall clock is not the violation — acting on
    it is.  Deliberate host inputs (the perf harness, env-var knobs)
    carry ``# lint: allow-wall-clock`` (or R001's
    ``allow-nondeterminism``) on the *source* line, which kills the
    taint at the seed.

R012 *fault-dispatch exhaustiveness*
    :class:`~repro.faults.plan.FaultKind` members and the
    :class:`~repro.faults.device.FaultyDevice` dispatch that handles them
    live in different files, so adding a fault kind without teaching the
    injector's apply paths about it fails only at runtime — as an
    ``AssertionError`` mid-simulation, or worse, as a silently undrawn
    fault.  Every enum member must be referenced by name
    (``FaultKind.X``) inside a ``FaultyDevice`` class.  Escape hatch on
    the member's definition line: ``# lint: allow-unhandled-fault``.

R013 *worker-shared-state*
    Worker entry points — module-level functions handed to
    ``pool.submit(f, ...)``/``pool.map(f, ...)`` — run in forked or
    spawned processes: a mutation of module-global mutable state (a
    top-level ``list``/``dict``/``set`` binding) made there lands in the
    *worker's* copy of the module, silently diverges between worker
    counts, and never reaches the parent.  The cluster/grid results must
    be pure functions of the submitted job, so the entry point and every
    same-module function it (transitively) calls must not mutate or
    rebind such globals.  Deliberate per-process caches carry
    ``# lint: allow-shared-state`` on the mutating line.

R014 *replica-write-path*
    Replica stacks exist to mirror the durable WAL prefix: the *only*
    writer of a replica's pool/device/WAL is the shipping + apply
    machinery in :mod:`repro.cluster.replication` (and the recovery redo
    path it delegates to).  A direct ``access``/``write``/
    ``write_page``/``write_batch``/``mark_dirty`` call on a replica
    stack anywhere else forks the replica from the shipped prefix, and
    the divergence surfaces only after a failover — as a failed
    promotion audit far from the write.  Deliberate test probes carry
    ``# lint: allow-replica-write`` on the call line.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analyze.cfg import build_cfg
from repro.analyze.dataflow import TaintAnalysis, TaintSpec, assigned_names
from repro.analyze.graph import LAYER_DEPS, ProjectGraph, package_of
from repro.analyze.lint import LintRule, SourceModule, Violation

__all__ = [
    "DEFAULT_RULES",
    "DeterminismRule",
    "EncapsulationRule",
    "FaultDispatchRule",
    "IORetryRule",
    "PicklabilityRule",
    "ReplicaWritePathRule",
    "ServingVirtualTimeRule",
    "TranslationEncapsulationRule",
    "VirtualOrderPurityRule",
    "WorkerSharedStateRule",
]


def _attr_root(node: ast.AST) -> ast.Name | None:
    """The ``Name`` at the root of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _rooted_at_self(node: ast.AST) -> bool:
    root = _attr_root(node)
    return root is not None and root.id == "self"


class _ImportTable:
    """Resolve dotted call targets through ``import``/``from`` aliases."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> canonical dotted module ("np" -> "numpy").
        self.modules: dict[str, str] = {}
        #: local name -> canonical dotted object ("shuffle" -> "random.shuffle").
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an attribute chain / bare name, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.modules:
            prefix = self.modules[base]
        elif base in self.names:
            prefix = self.names[base]
        else:
            return None
        return ".".join([prefix, *reversed(parts)]) if parts else prefix


class DeterminismRule(LintRule):
    """R001: no unseeded randomness, wall clock, or env reads in sim packages."""

    code = "R001"
    name = "determinism"
    description = (
        "simulation packages must not call module-level random functions, "
        "construct unseeded RNGs, read the wall clock, or read the "
        "environment; thread RNGs/seeds through config parameters"
    )
    suppression = "allow-nondeterminism"

    #: Packages whose behaviour must be a pure function of config + seed.
    #: ``tests``/``benchmarks`` are included so the suites that *assert*
    #: determinism cannot themselves smuggle in the wall clock (CI lints
    #: them with ``--select R001,R004,R009``).
    packages = (
        "repro.core",
        "repro.policies",
        "repro.bufferpool",
        "repro.storage",
        "repro.workloads",
        "repro.engine",
        "repro.faults",
        "repro.verify",
        "repro.cluster",
        "tests",
        "benchmarks",
    )

    _random_funcs = frozenset({
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    })
    _numpy_random_funcs = frozenset({
        "choice", "normal", "permutation", "rand", "randint", "randn",
        "random", "random_sample", "seed", "shuffle", "standard_normal",
        "uniform",
    })
    _wall_clock = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today", "uuid.uuid1", "uuid.uuid4",
    })
    #: RNG constructors that are fine *with* a seed argument, flagged bare.
    _seedable = frozenset({"random.Random", "numpy.random.default_rng"})
    _env_reads = frozenset({"os.getenv", "os.environb"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package(*self.packages):
            return
        imports = _ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = imports.resolve(node.func)
                if target is None:
                    continue
                message = self._call_message(target, node)
                if message and not self.allowed(module, node):
                    yield self.violation(module, node, message)
            elif isinstance(node, ast.Attribute):
                target = imports.resolve(node)
                if (
                    target == "os.environ"
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        "environment read (os.environ) makes simulation "
                        "behaviour host-dependent; take the value as a "
                        "config parameter",
                    )

    def _call_message(self, target: str, node: ast.Call) -> str | None:
        if target.startswith("random.") and target[7:] in self._random_funcs:
            return (
                f"module-level {target}() uses the shared unseeded RNG; "
                "thread a seeded random.Random through a seed/rng parameter"
            )
        if (
            target.startswith("numpy.random.")
            and target[13:] in self._numpy_random_funcs
        ):
            return (
                f"{target}() uses numpy's global RNG; use "
                "numpy.random.default_rng(seed) threaded via parameters"
            )
        if target in self._seedable and not node.args and not node.keywords:
            return f"{target}() without a seed is nondeterministic"
        if target == "random.SystemRandom":
            return "random.SystemRandom is nondeterministic by design"
        if target in self._wall_clock:
            return (
                f"{target}() reads the wall clock; simulation time comes "
                "from repro.storage.clock.VirtualClock"
            )
        if target in self._env_reads:
            return (
                f"{target}() makes simulation behaviour host-dependent; "
                "take the value as a config parameter"
            )
        return None


class EncapsulationRule(LintRule):
    """R002: descriptor state bits are assigned only inside repro.bufferpool."""

    code = "R002"
    name = "encapsulation"
    description = (
        "no module outside repro.bufferpool assigns BufferDescriptor state "
        "fields (dirty, pin_count, usage, cold, prefetched); policies go "
        "through PageStateView"
    )
    suppression = "allow-descriptor-write"

    _fields = frozenset({"dirty", "pin_count", "usage", "cold", "prefetched"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if module.in_package("repro.bufferpool"):
            return
        for node in ast.walk(module.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                continue
            for target in self._flatten(targets):
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in self._fields
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        f"assignment to .{target.attr} outside "
                        "repro.bufferpool; descriptor state bits are owned "
                        "by the buffer manager (read them via PageStateView)",
                    )

    @staticmethod
    def _flatten(targets: list[ast.expr]) -> Iterator[ast.expr]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from EncapsulationRule._flatten(list(target.elts))
            else:
                yield target


class VirtualOrderPurityRule(LintRule):
    """R003: ``eviction_order`` bodies must not mutate policy state."""

    code = "R003"
    name = "virtual-order-purity"
    description = (
        "eviction_order() is the side-effect-free virtual order: no "
        "assignments to self state and no calls to mutating methods; "
        "escape hatch: `# lint: allow-mutation`"
    )
    suppression = "allow-mutation"

    #: Policy lifecycle methods that mutate state by contract.
    _mutating_self_methods = frozenset({
        "bind", "insert", "on_access", "remove", "select_victim",
    })
    #: Container mutators that, applied to a self-rooted chain, change state.
    _mutating_container_methods = frozenset({
        "add", "append", "appendleft", "clear", "difference_update",
        "discard", "extend", "insert", "intersection_update", "move_to_end",
        "pop", "popitem", "popleft", "remove", "reverse", "rotate",
        "setdefault", "sort", "symmetric_difference_update", "update",
    })
    #: heapq functions that mutate their first argument in place.
    _heap_mutators = frozenset({
        "heapq.heapify", "heapq.heappop", "heapq.heappush",
        "heapq.heappushpop", "heapq.heapreplace",
    })

    def check(self, module: SourceModule) -> Iterator[Violation]:
        imports = _ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "eviction_order"
            ):
                yield from self._check_body(module, node, imports)

    def _check_body(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: _ImportTable,
    ) -> Iterator[Violation]:
        for node in ast.walk(func):
            if node is func:
                continue
            message = self._mutation_message(node, imports)
            if message and not self.allowed(module, node):
                yield self.violation(
                    module, node, f"eviction_order() {message}"
                )

    def _mutation_message(
        self, node: ast.AST, imports: _ImportTable
    ) -> str | None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if _rooted_at_self(target):
                    return "assigns to policy state (must be side-effect-free)"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if _rooted_at_self(target):
                    return "deletes policy state (must be side-effect-free)"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in self._mutating_self_methods
                ):
                    return f"calls mutating method self.{func.attr}()"
                if (
                    func.attr in self._mutating_container_methods
                    and _rooted_at_self(func.value)
                ):
                    return (
                        f"calls .{func.attr}() on policy state "
                        "(copy to a local first)"
                    )
            target = imports.resolve(func)
            if (
                target in self._heap_mutators
                and node.args
                and _rooted_at_self(node.args[0])
            ):
                return (
                    f"passes policy state to {target}() which mutates it "
                    "in place (heapify a copy)"
                )
        return None


class PicklabilityRule(LintRule):
    """R004: no lambdas/closures/local classes into TraceSpec/GridJob."""

    code = "R004"
    name = "picklability"
    description = (
        "TraceSpec/GridJob cross process boundaries: lambdas, nested "
        "functions, and function-local classes passed into their "
        "construction fail to pickle at fan-out time"
    )
    suppression = "allow-unpicklable"

    _constructors = frozenset({"TraceSpec", "GridJob"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        yield from self._walk_scope(
            module, module.tree, local_defs=frozenset(), in_function=False
        )

    def _walk_scope(
        self,
        module: SourceModule,
        scope: ast.AST,
        local_defs: frozenset[str],
        in_function: bool,
    ) -> Iterator[Violation]:
        """Visit ``scope``, tracking names bound to unpicklable callables.

        ``local_defs`` carries the lambdas, function-local defs, and local
        classes visible at this point.  Module-level ``def``/``class``
        statements pickle by reference and never enter the set; a name
        assigned a lambda is tracked at any level (lambdas never pickle).
        """
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    local_defs = local_defs | {node.name}
                yield from self._walk_scope(
                    module, node, local_defs, in_function=True
                )
                continue
            if isinstance(node, ast.ClassDef):
                if in_function:
                    local_defs = local_defs | {node.name}
                yield from self._walk_scope(
                    module, node, local_defs, in_function
                )
                continue
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_defs = local_defs | {target.id}
            yield from self._check_calls(module, node, local_defs)
            yield from self._walk_scope(module, node, local_defs, in_function)

    def _check_calls(
        self,
        module: SourceModule,
        node: ast.AST,
        local_defs: frozenset[str],
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        name = self._constructor_name(node.func)
        if name is None:
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for inner in ast.walk(value):
                if isinstance(inner, ast.Lambda):
                    if not self.allowed(module, inner):
                        yield self.violation(
                            module, inner,
                            f"lambda flows into {name}(); workers cannot "
                            "pickle it — use a module-level function",
                        )
                elif (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in local_defs
                ):
                    if not self.allowed(module, inner):
                        yield self.violation(
                            module, inner,
                            f"function-local callable {inner.id!r} flows "
                            f"into {name}(); workers cannot pickle it — "
                            "move it to module level",
                        )

    def _constructor_name(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in self._constructors:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in self._constructors:
            return func.attr
        return None


class IORetryRule(LintRule):
    """R005: fault-catching handlers around device I/O must not swallow."""

    code = "R005"
    name = "io-fault-handling"
    description = (
        "an except clause that catches I/O-fault exceptions around device "
        "read/write calls must re-raise or route through the "
        "retry/degradation machinery; silently swallowing an injected "
        "fault loses work"
    )
    suppression = "allow-io-swallow"

    #: Device I/O entry points (SimulatedSSD / FaultyDevice surface).
    _io_methods = frozenset({
        "read_page", "read_batch", "write_page", "write_batch",
    })
    #: Exception names that catch (or subsume) IOFaultError.
    _fault_catchers = frozenset({
        "IOFaultError", "TornWriteError", "RetriesExhaustedError",
        "ReproError", "Exception", "BaseException", "OSError",
    })
    #: Identifier substrings that mark a handler as routing the fault into
    #: the retry/degradation machinery rather than dropping it.
    _handled_markers = ("retry", "retries", "degrad")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        # A try/except *inside* the retry machinery is the machinery: the
        # loop around it is what retries, so its handlers legitimately
        # capture the fault and continue.  Exempt functions whose names
        # carry a handled-marker (e.g. _retry_write_back).
        exempt: set[ast.Try] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if any(marker in lowered for marker in self._handled_markers):
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Try):
                            exempt.add(inner)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try) or node in exempt:
                continue
            if not self._body_does_device_io(node.body):
                continue
            for handler in node.handlers:
                if not self._catches_faults(handler):
                    continue
                if self._handler_handles(handler):
                    continue
                if self.allowed(module, handler):
                    continue
                caught = self._caught_names(handler) or ["(bare except)"]
                yield self.violation(
                    module, handler,
                    f"except {', '.join(caught)} around device I/O neither "
                    "re-raises nor routes through retry/degradation; an "
                    "injected fault would be silently swallowed",
                )

    def _body_does_device_io(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._io_methods
                ):
                    return True
        return False

    def _caught_names(self, handler: ast.ExceptHandler) -> list[str]:
        kind = handler.type
        if kind is None:
            return []
        exprs = list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
        names = []
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.append(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.append(expr.attr)
        return names

    def _catches_faults(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # a bare except catches IOFaultError too
        return any(
            name in self._fault_catchers
            for name in self._caught_names(handler)
        )

    def _handler_handles(self, handler: ast.ExceptHandler) -> bool:
        """Re-raises, or mentions a retry/degradation identifier."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            identifier: str | None = None
            if isinstance(node, ast.Name):
                identifier = node.id
            elif isinstance(node, ast.Attribute):
                identifier = node.attr
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                identifier = node.name
            if identifier is not None:
                lowered = identifier.lower()
                if any(marker in lowered for marker in self._handled_markers):
                    return True
        return False


class ServingVirtualTimeRule(LintRule):
    """R006: ``repro.engine.serving`` must be entirely wall-clock-free."""

    code = "R006"
    name = "serving-virtual-time"
    description = (
        "repro.engine.serving deadlines, backoffs, and breaker cooldowns "
        "are virtual-clock microseconds; the package must not import or "
        "use the time/datetime modules at all (time.sleep included) — "
        "escape hatch: `# lint: allow-wall-clock`"
    )
    suppression = "allow-wall-clock"

    packages = ("repro.engine.serving",)
    _modules = frozenset({"time", "datetime"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package(*self.packages):
            return
        imports = _ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._modules and not self.allowed(module, node):
                        yield self.violation(
                            module, node,
                            f"import {alias.name} in repro.engine.serving; "
                            "deadlines and cooldowns are virtual-clock "
                            "microseconds, never wall-clock values",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (
                    node.module
                    and not node.level
                    and node.module.split(".")[0] in self._modules
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        f"from {node.module} import in repro.engine.serving; "
                        "deadlines and cooldowns are virtual-clock "
                        "microseconds, never wall-clock values",
                    )
            elif isinstance(node, ast.Call):
                target = imports.resolve(node.func)
                if (
                    target is not None
                    and target.split(".")[0] in self._modules
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        f"{target}() call in repro.engine.serving; charge "
                        "waits to the virtual clock instead of sleeping or "
                        "reading host time",
                    )


class TranslationEncapsulationRule(LintRule):
    """R007: page→frame translation internals stay inside the table module."""

    code = "R007"
    name = "translation-encapsulation"
    description = (
        "the page→frame translation structures (_slots, _frame_of) belong "
        "to repro.bufferpool.table; reaching into another object's "
        "translation internals bakes in one backend's representation — go "
        "through table.lookup()/pages() or the manager's resident API; "
        "escape hatch: `# lint: allow-translation`"
    )
    suppression = "allow-translation"

    #: The home module, exempt by definition.
    home = "repro.bufferpool.table"
    _fields = frozenset({"_slots", "_frame_of"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro") or module.module == self.home:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._fields
                # `self._slots` is an object's own state (the table's
                # vector, the manager's declared alias); only reaching
                # into ANOTHER object's translation internals is flagged.
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
                and not self.allowed(module, node)
            ):
                yield self.violation(
                    module, node,
                    f"direct access to translation internal .{node.attr} "
                    "outside repro.bufferpool.table; use table.lookup()/"
                    "pages() or the manager's resident API (deliberate "
                    "hot-path aliases: `# lint: allow-translation`)",
                )


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class LayeringRule(LintRule):
    """R008: whole-program import layering and cycle freedom."""

    code = "R008"
    name = "layering"
    description = (
        "intra-repro imports must follow the declared layer DAG "
        "(repro.analyze.graph.LAYER_DEPS) and form no module-scope import "
        "cycles; TYPE_CHECKING imports are exempt — escape hatch: "
        "`# lint: allow-layering`"
    )
    suppression = "allow-layering"
    #: Marks the rule as whole-program: the driver calls check_graph once
    #: with the assembled ProjectGraph instead of check() per file.
    scope = "graph"

    def check(self, module: SourceModule) -> Iterator[Violation]:
        return iter(())

    def _edge_suppressed(self, tags: frozenset[str]) -> bool:
        return bool(tags & {f"allow-{self.code}", self.suppression})

    @staticmethod
    def _target_package(target: str) -> str:
        """The layer key of an import target.

        Per-alias edges overshoot by one component on symbol imports
        (``from repro import run_lint`` targets ``repro.run_lint``);
        when the direct key is undeclared, fall back to the parent.
        """
        pkg = package_of(target)
        if pkg in LAYER_DEPS or "." not in target:
            return pkg
        parent = package_of(target.rsplit(".", 1)[0])
        return parent if parent in LAYER_DEPS else pkg

    def check_graph(self, graph: ProjectGraph) -> Iterator[Violation]:
        for edge in graph.edges:
            if edge.type_checking or self._edge_suppressed(edge.tags):
                continue
            src_pkg = package_of(edge.src_module)
            if src_pkg not in LAYER_DEPS:
                continue  # not a governed package (scripts, test modules)
            target_pkg = self._target_package(edge.target)
            if target_pkg == src_pkg:
                continue
            if target_pkg not in LAYER_DEPS:
                yield Violation(
                    path=edge.src_path, line=edge.lineno, col=edge.col,
                    rule=self.code,
                    message=(
                        f"{src_pkg} imports {edge.target}, whose package "
                        f"{target_pkg} is not in the declared layer DAG; "
                        "add it to repro.analyze.graph.LAYER_DEPS with its "
                        "allowed dependencies"
                    ),
                )
            elif target_pkg not in LAYER_DEPS[src_pkg]:
                yield Violation(
                    path=edge.src_path, line=edge.lineno, col=edge.col,
                    rule=self.code,
                    message=(
                        f"{src_pkg} must not import {target_pkg} "
                        f"(layer DAG allows only: "
                        f"{', '.join(sorted(LAYER_DEPS[src_pkg])) or 'nothing'})"
                        + ("; deferred imports still count — move the "
                           "dependency down a layer or invert it"
                           if edge.deferred else "")
                    ),
                )
        for cycle in graph.cycles():
            edge = graph.edge_for(cycle[0], cycle[1 % len(cycle)])
            if edge is None or self._edge_suppressed(edge.tags):
                continue
            chain = " -> ".join(cycle + [cycle[0]])
            yield Violation(
                path=edge.src_path, line=edge.lineno, col=edge.col,
                rule=self.code,
                message=(
                    f"module-scope import cycle: {chain}; defer one import "
                    "into the function that needs it or move the shared "
                    "piece down a layer"
                ),
            )


class IterationOrderRule(LintRule):
    """R009: set-iteration order must not leak into ordered outputs."""

    code = "R009"
    name = "iteration-order"
    description = (
        "values derived from iterating a set/frozenset must not flow into "
        "ordered outputs (list appends, list()/tuple(), yield, str.join) "
        "without an intervening sorted() — escape hatch: "
        "`# lint: allow-set-order`"
    )
    suppression = "allow-set-order"

    packages = ("repro", "tests", "benchmarks")

    #: Methods that keep set-ness when called on a set.
    _set_methods = frozenset({
        "union", "intersection", "difference", "symmetric_difference", "copy",
    })
    #: Binary operators that keep set-ness.
    _set_ops = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    #: Consumers for which iteration order genuinely does not matter.
    _order_free_consumers = frozenset({
        "sorted", "set", "frozenset", "sum", "len", "min", "max", "any",
        "all", "Counter", "dict",
    })
    #: Ordered materialisations of an iterable.
    _ordered_builders = frozenset({"list", "tuple"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package(*self.packages):
            return
        for func in _functions(module.tree):
            yield from self._check_function(module, func)

    # -- set-typed inference (flow-insensitive, per function) -------------

    def _set_locals(self, func: ast.AST) -> set[str]:
        """Names assigned a set-typed expression anywhere in the function."""
        sets: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                names = [
                    name for target in node.targets
                    for name in assigned_names(target)
                ]
                if not names:
                    continue
                if self._is_set_expr(node.value, sets):
                    for name in names:
                        if name not in sets:
                            sets.add(name)
                            changed = True
        return sets

    def _is_set_expr(self, expr: ast.expr, sets: set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in sets
        if isinstance(expr, ast.Attribute):
            return expr.attr.endswith("_set") or expr.attr == "_sets"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._set_methods
            ):
                return self._is_set_expr(func.value, sets)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, self._set_ops):
            return (
                self._is_set_expr(expr.left, sets)
                or self._is_set_expr(expr.right, sets)
            )
        if isinstance(expr, ast.IfExp):
            return (
                self._is_set_expr(expr.body, sets)
                or self._is_set_expr(expr.orelse, sets)
            )
        return False

    # -- sinks ------------------------------------------------------------

    def _check_function(
        self, module: SourceModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        sets = self._set_locals(func)
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(func):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        sorted_later = self._sorted_later_names(func)

        # Ordered loop targets: `for x in some_set:` taints x for the body.
        tainted: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, sets):
                    tainted.update(assigned_names(node.target))

        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, sets, tainted, parents, sorted_later
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                yield from self._check_comprehension(
                    module, node, sets, parents, sorted_later
                )
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is None:
                    continue
                hazard = None
                if isinstance(node, ast.YieldFrom) and self._is_set_expr(
                    value, sets
                ):
                    hazard = "yield from a set yields hash order"
                elif self._mentions(value, tainted):
                    hazard = (
                        "yield of a value bound by set iteration emits "
                        "hash order"
                    )
                if hazard and not self.allowed(module, node):
                    yield self.violation(
                        module, node, f"{hazard}; wrap the set in sorted()"
                    )

    def _sorted_later_names(self, func: ast.AST) -> set[str]:
        """Receivers that are later ``.sort()``-ed or passed to sorted()."""
        names: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"
                and isinstance(node.func.value, ast.Name)
            ):
                names.add(node.func.value.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
        return names

    def _assigned_name_of(self, node: ast.AST, parents: dict) -> str | None:
        parent = parents.get(node)
        if isinstance(parent, ast.Assign):
            targets = [
                name for target in parent.targets
                for name in assigned_names(target)
            ]
            if len(targets) == 1:
                return targets[0]
        return None

    def _consumed_order_free(self, node: ast.AST, parents: dict) -> bool:
        parent = parents.get(node)
        if isinstance(parent, ast.Call):
            func = parent.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._order_free_consumers
                and node in parent.args
            ):
                return True
        if isinstance(parent, (ast.Compare,)):
            # Membership / equality against a set is order-free.
            return True
        return False

    @staticmethod
    def _mentions(expr: ast.expr, names: set[str]) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id in names
            for node in ast.walk(expr)
        )

    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        sets: set[str],
        tainted: set[str],
        parents: dict,
        sorted_later: set[str],
    ) -> Iterator[Violation]:
        func = node.func
        # list(S) / tuple(S) over a set materialises hash order.
        if (
            isinstance(func, ast.Name)
            and func.id in self._ordered_builders
            and node.args
            and self._is_set_expr(node.args[0], sets)
        ):
            target = self._assigned_name_of(node, parents)
            if (
                not self._consumed_order_free(node, parents)
                and (target is None or target not in sorted_later)
                and not self.allowed(module, node)
            ):
                yield self.violation(
                    module, node,
                    f"{func.id}() over a set materialises hash order; "
                    "use sorted() (or sort the result before it escapes)",
                )
        # out.append(x) / out.extend(...) with a set-iteration value.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in {"append", "appendleft", "extend", "insert"}
            and node.args
        ):
            receiver = (
                func.value.id if isinstance(func.value, ast.Name) else None
            )
            for arg in node.args:
                if self._mentions(arg, tainted) or (
                    func.attr == "extend" and self._is_set_expr(arg, sets)
                ):
                    if receiver is not None and receiver in sorted_later:
                        continue
                    if not self.allowed(module, node):
                        yield self.violation(
                            module, node,
                            f".{func.attr}() of a value bound by set "
                            "iteration builds an order-dependent sequence; "
                            "iterate sorted(<set>) instead",
                        )
                    break
        # "sep".join(S) over a set.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self._is_set_expr(node.args[0], sets)
            and not self.allowed(module, node)
        ):
            yield self.violation(
                module, node,
                "str.join over a set concatenates in hash order; "
                "join sorted(<set>) instead",
            )

    def _check_comprehension(
        self,
        module: SourceModule,
        node: ast.ListComp | ast.GeneratorExp,
        sets: set[str],
        parents: dict,
        sorted_later: set[str],
    ) -> Iterator[Violation]:
        if not any(
            self._is_set_expr(gen.iter, sets) for gen in node.generators
        ):
            return
        if self._consumed_order_free(node, parents):
            return
        if isinstance(node, ast.GeneratorExp):
            # A generator over a set is only a hazard when its consumer
            # is ordered; unknown consumers are left alone.
            parent = parents.get(node)
            ordered = (
                isinstance(parent, ast.Call)
                and (
                    (isinstance(parent.func, ast.Name)
                     and parent.func.id in self._ordered_builders)
                    or (isinstance(parent.func, ast.Attribute)
                        and parent.func.attr == "join")
                )
            )
            if not ordered:
                return
        target = self._assigned_name_of(node, parents)
        if target is not None and target in sorted_later:
            return
        if not self.allowed(module, node):
            yield self.violation(
                module, node,
                "comprehension over a set produces an order-dependent "
                "sequence; iterate sorted(<set>) instead",
            )


class BatchedCounterFlushRule(LintRule):
    """R010: loop-batched counters must flush on every path to exit."""

    code = "R010"
    name = "batched-counter-flush"
    description = (
        "a local accumulated with += inside a loop and flushed into a "
        "stats/metrics attribute must reach the flush on every CFG path "
        "to the function exit (including may-raise edges): put the flush "
        "in a finally — escape hatch: `# lint: allow-unflushed-counter`"
    )
    suppression = "allow-unflushed-counter"

    _sink_markers = ("stats", "metrics")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        for func in _functions(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: SourceModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        accumulations = self._loop_accumulations(func)
        if not accumulations:
            return
        flushes = self._flushes(func, set(accumulations))
        if not flushes:
            return
        cfg = build_cfg(func, with_exceptions=True)
        reachable = cfg.reachable()
        for counter, stmts in accumulations.items():
            counter_flushes = flushes.get(counter)
            if not counter_flushes:
                continue
            flush_blocks = {
                block.index
                for stmt in counter_flushes
                if (block := cfg.block_of(stmt)) is not None
            }
            if not flush_blocks:
                continue
            for stmt in stmts:
                block = cfg.block_of(stmt)
                if block is None or block.index not in reachable:
                    continue
                if cfg.always_passes_through(block.index, flush_blocks):
                    continue
                if self.allowed(module, stmt):
                    continue
                flush_line = min(s.lineno for s in counter_flushes)
                yield self.violation(
                    module, stmt,
                    f"counter {counter!r} batched here can reach the "
                    f"function exit without the flush at line {flush_line} "
                    "(an exception or early exit would lose the delta); "
                    "flush it in a finally",
                )

    @staticmethod
    def _loop_accumulations(
        func: ast.AST,
    ) -> dict[str, list[ast.AugAssign]]:
        """Locals accumulated with ``+=`` inside a loop, per name."""
        out: dict[str, list[ast.AugAssign]] = {}
        for node in ast.walk(func):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.AugAssign)
                    and isinstance(inner.op, ast.Add)
                    and isinstance(inner.target, ast.Name)
                ):
                    out.setdefault(inner.target.id, []).append(inner)
        return out

    def _flushes(
        self, func: ast.AST, counters: set[str]
    ) -> dict[str, list[ast.AugAssign]]:
        """Statements flushing a counter into a stats/metrics attribute."""
        out: dict[str, list[ast.AugAssign]] = {}
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
            ):
                continue
            if not self._is_sink_chain(node.target):
                continue
            for name_node in ast.walk(node.value):
                if (
                    isinstance(name_node, ast.Name)
                    and name_node.id in counters
                ):
                    out.setdefault(name_node.id, []).append(node)
        return out

    def _is_sink_chain(self, target: ast.Attribute) -> bool:
        """Whether the attribute chain names a stats/metrics object."""
        node: ast.expr = target
        parts: list[str] = []
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                parts.append(node.attr.lower())
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id.lower())
        return any(
            marker in part for part in parts for marker in self._sink_markers
        )


class WallClockTaintRule(LintRule):
    """R011: wall-clock/env-tainted values must not reach state or flow."""

    code = "R011"
    name = "wall-clock-taint"
    description = (
        "any value tainted by time.*/datetime.*/os.environ must not reach "
        "simulation state, metrics objects, or control flow under repro; "
        "deliberate host inputs hatch the *source* line with "
        "`# lint: allow-wall-clock` (or `allow-nondeterminism`)"
    )
    suppression = "allow-wall-clock"

    _env_calls = frozenset({"os.getenv", "os.environb"})

    def allowed(self, module: SourceModule, node: ast.AST) -> bool:
        return module.suppressed(
            getattr(node, "lineno", 0),
            f"allow-{self.code}", self.suppression, "allow-nondeterminism",
        )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        imports = _ImportTable(module.tree)
        for func in _functions(module.tree):
            yield from self._check_function(module, func, imports)

    def _source_reason(
        self, module: SourceModule, imports: _ImportTable, expr: ast.expr
    ) -> str | None:
        if self.allowed(module, expr):
            return None
        if isinstance(expr, ast.Call):
            target = imports.resolve(expr.func)
            if target is not None and (
                target.split(".")[0] in {"time", "datetime"}
                or target in self._env_calls
            ):
                return f"{target}()"
        elif isinstance(expr, ast.Attribute):
            if imports.resolve(expr) == "os.environ":
                return "os.environ"
        return None

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: _ImportTable,
    ) -> Iterator[Violation]:
        spec = TaintSpec(
            source=lambda expr: self._source_reason(module, imports, expr),
            label="wall-clock",
        )
        cfg = build_cfg(func)
        analysis = TaintAnalysis(cfg, spec)
        for stmt, state in analysis.walk_statements():
            yield from self._check_sinks(module, analysis, stmt, state)

    def _check_sinks(
        self,
        module: SourceModule,
        analysis: TaintAnalysis,
        stmt: ast.stmt,
        state: dict,
    ) -> Iterator[Violation]:
        if isinstance(stmt, (ast.If, ast.While)):
            origin = analysis.taint_of(stmt.test, state)
            if origin is not None and not self.allowed(module, stmt):
                yield self.violation(
                    module, stmt,
                    f"control flow depends on a value tainted by "
                    f"{origin[0]} (line {origin[1]}); decide from config "
                    "or the virtual clock instead",
                )
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(stmt.targets)
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            if value is None:
                return
            origin = analysis.taint_of(value, state)
            if origin is None:
                return
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if not self.allowed(module, stmt):
                        yield self.violation(
                            module, stmt,
                            f"value tainted by {origin[0]} (line "
                            f"{origin[1]}) is stored into object state; "
                            "simulation state and metrics must be pure "
                            "functions of config + seed + virtual time",
                        )
                    break
        elif isinstance(stmt, ast.Assert):
            origin = analysis.taint_of(stmt.test, state)
            if origin is not None and not self.allowed(module, stmt):
                yield self.violation(
                    module, stmt,
                    f"assertion depends on a value tainted by {origin[0]} "
                    f"(line {origin[1]})",
                )


class FaultDispatchRule(LintRule):
    """R012: every ``FaultKind`` member is handled by ``FaultyDevice``."""

    code = "R012"
    name = "fault-dispatch"
    description = (
        "every FaultKind member must be referenced (FaultKind.X) inside a "
        "FaultyDevice class so the injector's dispatch stays exhaustive"
    )
    suppression = "allow-unhandled-fault"
    scope = "project"

    #: The enum class name whose members are the contract, and the class
    #: name whose body must mention each of them.
    enum_class = "FaultKind"
    dispatch_class = "FaultyDevice"

    def check_project(self, modules) -> Iterator[Violation]:
        # module name -> [(member name, defining node, SourceModule)]
        enums: dict[str, list[tuple[str, ast.stmt, SourceModule]]] = {}
        # module name -> set of FaultKind.X names referenced in dispatch
        handled: dict[str, set[str]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name == self.enum_class:
                    members = enums.setdefault(module.module, [])
                    members.extend(
                        (name, stmt, module)
                        for name, stmt in self._members(node)
                    )
                elif node.name == self.dispatch_class:
                    refs = handled.setdefault(module.module, set())
                    refs.update(self._references(node))
        if not handled:
            # Nothing dispatches fault kinds in the linted set (e.g. a
            # fixture tree containing only the enum): no contract to check.
            return
        for enum_module, members in enums.items():
            dispatch_module = self._pair(enum_module, handled)
            refs = handled[dispatch_module]
            for name, stmt, module in members:
                if name in refs or self.allowed(module, stmt):
                    continue
                yield self.violation(
                    module, stmt,
                    f"FaultKind.{name} is never handled: add an explicit "
                    f"branch referencing it inside {dispatch_module}'s "
                    f"{self.dispatch_class} (or mark this line "
                    f"'# lint: {self.suppression}')",
                )

    def _members(
        self, node: ast.ClassDef
    ) -> Iterator[tuple[str, ast.stmt]]:
        """``NAME = value`` members of the enum class body."""
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith(
                    "_"
                ):
                    yield target.id, stmt

    def _references(self, node: ast.ClassDef) -> set[str]:
        """Every ``FaultKind.X`` attribute access inside the class body."""
        refs: set[str] = set()
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == self.enum_class
            ):
                refs.add(child.attr)
        return refs

    @staticmethod
    def _pair(enum_module: str, handled: dict[str, set[str]]) -> str:
        """The dispatch module an enum is checked against.

        Same module wins outright; otherwise the dispatch module sharing
        the longest dotted prefix with the enum's module (ties broken
        lexicographically for determinism).  A fixture tree defining both
        classes in one file therefore never pairs against the real
        injector, and vice versa.
        """
        if enum_module in handled:
            return enum_module

        def shared(candidate: str) -> int:
            a, b = enum_module.split("."), candidate.split(".")
            n = 0
            for left, right in zip(a, b):
                if left != right:
                    break
                n += 1
            return n

        return max(sorted(handled), key=shared)


class WorkerSharedStateRule(LintRule):
    """R013: worker entry points must not mutate module-global mutables."""

    code = "R013"
    name = "worker-shared-state"
    description = (
        "functions submitted to worker pools (pool.submit/pool.map), and "
        "every same-module function they transitively call, must not "
        "mutate or rebind module-global mutable bindings — the mutation "
        "lands in the worker process's copy and diverges across worker "
        "counts; escape hatch: `# lint: allow-shared-state`"
    )
    suppression = "allow-shared-state"

    #: Pool fan-out methods whose first argument is a worker entry point.
    _dispatch_methods = frozenset({"submit", "map"})
    #: In-place mutators on lists/dicts/sets/deques and friends.
    _mutating_methods = frozenset({
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "setdefault",
        "update",
    })
    #: Constructor calls that bind a mutable container at module scope.
    _mutable_constructors = frozenset({
        "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list",
        "set",
    })

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        tree = module.tree
        functions = {
            node.name: node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        entries = self._worker_entries(tree, functions)
        if not entries:
            return
        mutables = self._module_mutables(tree)
        for name in sorted(self._reachable(entries, functions)):
            yield from self._check_function(
                module, functions[name], mutables, entries
            )

    # -- discovery --------------------------------------------------------

    def _module_mutables(self, tree: ast.Module) -> frozenset[str]:
        """Top-level names bound to a mutable container expression."""
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if not self._is_mutable_expr(value):
                continue
            for target in targets:
                elements = (
                    list(target.elts)
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                names.update(
                    element.id
                    for element in elements
                    if isinstance(element, ast.Name)
                )
        return frozenset(names)

    def _is_mutable_expr(self, expr: ast.expr) -> bool:
        if isinstance(
            expr,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            return name in self._mutable_constructors
        return False

    def _worker_entries(
        self,
        tree: ast.Module,
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> frozenset[str]:
        """Module-level functions handed to ``.submit()``/``.map()``."""
        entries: set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._dispatch_methods
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in functions
            ):
                entries.add(node.args[0].id)
        return frozenset(entries)

    def _reachable(
        self,
        entries: frozenset[str],
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> set[str]:
        """Entry points plus same-module functions they transitively call."""
        reached = set(entries)
        frontier = list(entries)
        while frontier:
            current = functions[frontier.pop()]
            for node in ast.walk(current):
                if not isinstance(node, ast.Call):
                    continue
                callee: str | None = None
                if isinstance(node.func, ast.Name):
                    callee = node.func.id
                if callee in functions and callee not in reached:
                    reached.add(callee)
                    frontier.append(callee)
        return reached

    # -- mutation scan ----------------------------------------------------

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        mutables: frozenset[str],
        entries: frozenset[str],
    ) -> Iterator[Violation]:
        shadowed = self._shadowed_names(func)
        declared_global = {
            name
            for node in ast.walk(func)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        live = (mutables - shadowed) | (mutables & declared_global)
        if not live and not declared_global:
            return
        where = (
            "worker entry point"
            if func.name in entries
            else "function reachable from a worker entry point"
        )
        for node in ast.walk(func):
            message = self._mutation_message(
                node, live, declared_global, where
            )
            if message and not self.allowed(module, node):
                yield self.violation(module, node, message)

    @staticmethod
    def _shadowed_names(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        """Parameters and plain-name assignments that make a name local."""
        args = func.args
        shadowed = {
            arg.arg
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        declared_global = {
            name
            for node in ast.walk(func)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    shadowed.update(
                        name for name in assigned_names(target)
                        if name not in declared_global
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                shadowed.update(assigned_names(node.target))
        return shadowed

    def _mutation_message(
        self,
        node: ast.AST,
        live: frozenset[str],
        declared_global: set[str],
        where: str,
    ) -> str | None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                root = _attr_root(target)
                if root is None:
                    continue
                if (
                    isinstance(target, (ast.Subscript, ast.Attribute))
                    and root.id in live
                ):
                    return (
                        f"{where} mutates module global {root.id!r}; the "
                        "write lands only in this worker process — return "
                        "the value instead (deliberate per-process caches: "
                        "`# lint: allow-shared-state`)"
                    )
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    return (
                        f"{where} rebinds module global {target.id!r} via "
                        "`global`; worker-process state never reaches the "
                        "parent — return the value instead"
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = _attr_root(target)
                if (
                    root is not None
                    and isinstance(target, (ast.Subscript, ast.Attribute))
                    and root.id in live
                ):
                    return (
                        f"{where} deletes from module global {root.id!r}; "
                        "the change lands only in this worker process"
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._mutating_methods
            ):
                root = _attr_root(func.value)
                if root is not None and root.id in live:
                    return (
                        f"{where} calls .{func.attr}() on module global "
                        f"{root.id!r}; the mutation lands only in this "
                        "worker process — return the value instead"
                    )
        return None


class ReplicaWritePathRule(LintRule):
    """R014: only the replication module writes to replica stacks."""

    code = "R014"
    name = "replica-write-path"
    description = (
        "replica pools/devices/WALs mirror the shipped durable prefix; "
        "mutating one directly (access/write/write_page/write_batch/"
        "mark_dirty on a replica-named receiver) outside "
        "repro.cluster.replication forks it from the primary and breaks "
        "the promotion audit — ship WAL records through the replica "
        "group instead; escape hatch: `# lint: allow-replica-write`"
    )
    suppression = "allow-replica-write"

    #: The home module: the shipping/apply/promotion machinery itself.
    home = "repro.cluster.replication"
    #: State-mutating entry points on a manager/device/WAL stack.
    _mutators = frozenset({
        "access", "mark_dirty", "write", "write_batch", "write_page",
    })

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro") or module.module == self.home:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._mutators
                and self._replica_receiver(node.func.value)
                and not self.allowed(module, node)
            ):
                yield self.violation(
                    module, node,
                    f"direct .{node.func.attr}() on a replica stack outside "
                    "repro.cluster.replication; replicas follow the shipped "
                    "WAL prefix — route the write through the primary's "
                    "replica group (deliberate test probes: "
                    "`# lint: allow-replica-write`)",
                )

    def _replica_receiver(self, node: ast.expr) -> bool:
        """True when the receiver's name chain names a replica.

        Matches any segment of the dotted chain — ``replica.manager``,
        ``self.replicas[1].device``, ``group.replica_wal`` — by the
        substring ``replica`` (case-insensitive), the naming convention
        :mod:`repro.cluster.replication` establishes for replica stacks.
        """
        while True:
            if isinstance(node, ast.Attribute):
                if "replica" in node.attr.lower():
                    return True
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Call):
                node = node.func
            elif isinstance(node, ast.Name):
                return "replica" in node.id.lower()
            else:
                return False


#: The rule set ``python -m repro lint`` runs.
DEFAULT_RULES: tuple[LintRule, ...] = (
    DeterminismRule(),
    EncapsulationRule(),
    VirtualOrderPurityRule(),
    PicklabilityRule(),
    IORetryRule(),
    ServingVirtualTimeRule(),
    TranslationEncapsulationRule(),
    LayeringRule(),
    IterationOrderRule(),
    BatchedCounterFlushRule(),
    WallClockTaintRule(),
    FaultDispatchRule(),
    WorkerSharedStateRule(),
    ReplicaWritePathRule(),
)

#: Code -> rule instance, for ``--select`` and the parallel worker pass.
RULES_BY_CODE: dict[str, LintRule] = {rule.code: rule for rule in DEFAULT_RULES}
