"""The repo-specific lint rules (R001-R007).

Each rule encodes a contract the simulator depends on but no generic tool
checks:

R001 *determinism*
    The simulation packages (``repro.core``, ``repro.policies``,
    ``repro.bufferpool``, ``repro.storage``, ``repro.workloads``,
    ``repro.engine``, ``repro.faults``) must be pure functions of their
    inputs: identical
    configs and seeds must replay identically, serially or across the
    parallel fan-out.  Module-level ``random.*`` calls, unseeded RNG
    constructions, wall-clock reads, and environment lookups all break
    that, silently.

R002 *encapsulation*
    Only ``repro.bufferpool`` assigns the descriptor state bits (``dirty``,
    ``pin_count``, ``usage``, ``cold``, ``prefetched``).  Policies observe
    page state through :class:`~repro.policies.base.PageStateView`; a policy
    that writes descriptor fields directly desynchronises the manager's
    O(1) mirror sets.

R003 *virtual-order purity*
    ``eviction_order()`` is the policy's side-effect-free virtual order
    (paper Section III); ACE's Writer and Evictor peek at it on every dirty
    miss.  Any mutation of ``self`` state inside it corrupts the policy as
    a side effect of *reading* it.  Escape hatch for deliberate exceptions:
    ``# lint: allow-mutation`` on the offending line.

R004 *picklability*
    :class:`~repro.bench.parallel.TraceSpec` and ``GridJob`` cross process
    boundaries; lambdas, closures, and function-local classes flowing into
    their construction die inside ``ProcessPoolExecutor`` with an opaque
    pickling error at fan-out time.  This rule moves that failure to lint
    time.

R005 *io-fault-handling*
    With :mod:`repro.faults` in the stack, device I/O can raise
    :class:`~repro.errors.IOFaultError`.  An ``except`` around a device
    read/write that swallows such faults silently converts an injected
    failure into lost work — the exact bug class the fault layer exists to
    surface.  Handlers catching fault(-compatible) exceptions around device
    I/O must re-raise or visibly route through the retry/degradation
    machinery.  Escape hatch: ``# lint: allow-io-swallow``.

R006 *serving-virtual-time*
    ``repro.engine.serving`` admission deadlines, requeue backoffs, and
    breaker cooldowns are virtual-clock quantities; a wall-clock deadline
    would make shed/expire decisions host-dependent and break replay.
    Stricter than R001's call denylist: the package must not import or
    touch the ``time``/``datetime`` modules at all (``time.sleep``
    included).  Escape hatch: ``# lint: allow-wall-clock``.

R007 *translation-encapsulation*
    The page→frame translation structures (``_slots``, ``_frame_of``) are
    owned by :mod:`repro.bufferpool.table`.  Code elsewhere that reaches
    into another object's translation internals (``manager._slots[page]``,
    ``table._frame_of[page]``) bakes in one backend's representation and
    silently diverges when the dict/array backend switches; go through
    ``table.lookup``/``table.pages`` or the manager's resident API.  The
    deliberate hot-path aliases (manager construction, the executor's
    inlined replay, crash bricking, the sanitizer's ground-truth peek)
    carry the escape hatch ``# lint: allow-translation``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analyze.lint import LintRule, SourceModule, Violation

__all__ = [
    "DEFAULT_RULES",
    "DeterminismRule",
    "EncapsulationRule",
    "IORetryRule",
    "PicklabilityRule",
    "ServingVirtualTimeRule",
    "TranslationEncapsulationRule",
    "VirtualOrderPurityRule",
]


def _attr_root(node: ast.AST) -> ast.Name | None:
    """The ``Name`` at the root of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _rooted_at_self(node: ast.AST) -> bool:
    root = _attr_root(node)
    return root is not None and root.id == "self"


class _ImportTable:
    """Resolve dotted call targets through ``import``/``from`` aliases."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> canonical dotted module ("np" -> "numpy").
        self.modules: dict[str, str] = {}
        #: local name -> canonical dotted object ("shuffle" -> "random.shuffle").
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an attribute chain / bare name, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.modules:
            prefix = self.modules[base]
        elif base in self.names:
            prefix = self.names[base]
        else:
            return None
        return ".".join([prefix, *reversed(parts)]) if parts else prefix


class DeterminismRule(LintRule):
    """R001: no unseeded randomness, wall clock, or env reads in sim packages."""

    code = "R001"
    name = "determinism"
    description = (
        "simulation packages must not call module-level random functions, "
        "construct unseeded RNGs, read the wall clock, or read the "
        "environment; thread RNGs/seeds through config parameters"
    )
    suppression = "allow-nondeterminism"

    #: Packages whose behaviour must be a pure function of config + seed.
    packages = (
        "repro.core",
        "repro.policies",
        "repro.bufferpool",
        "repro.storage",
        "repro.workloads",
        "repro.engine",
        "repro.faults",
    )

    _random_funcs = frozenset({
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    })
    _numpy_random_funcs = frozenset({
        "choice", "normal", "permutation", "rand", "randint", "randn",
        "random", "random_sample", "seed", "shuffle", "standard_normal",
        "uniform",
    })
    _wall_clock = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today", "uuid.uuid1", "uuid.uuid4",
    })
    #: RNG constructors that are fine *with* a seed argument, flagged bare.
    _seedable = frozenset({"random.Random", "numpy.random.default_rng"})
    _env_reads = frozenset({"os.getenv", "os.environb"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package(*self.packages):
            return
        imports = _ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = imports.resolve(node.func)
                if target is None:
                    continue
                message = self._call_message(target, node)
                if message and not self.allowed(module, node):
                    yield self.violation(module, node, message)
            elif isinstance(node, ast.Attribute):
                target = imports.resolve(node)
                if (
                    target == "os.environ"
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        "environment read (os.environ) makes simulation "
                        "behaviour host-dependent; take the value as a "
                        "config parameter",
                    )

    def _call_message(self, target: str, node: ast.Call) -> str | None:
        if target.startswith("random.") and target[7:] in self._random_funcs:
            return (
                f"module-level {target}() uses the shared unseeded RNG; "
                "thread a seeded random.Random through a seed/rng parameter"
            )
        if (
            target.startswith("numpy.random.")
            and target[13:] in self._numpy_random_funcs
        ):
            return (
                f"{target}() uses numpy's global RNG; use "
                "numpy.random.default_rng(seed) threaded via parameters"
            )
        if target in self._seedable and not node.args and not node.keywords:
            return f"{target}() without a seed is nondeterministic"
        if target == "random.SystemRandom":
            return "random.SystemRandom is nondeterministic by design"
        if target in self._wall_clock:
            return (
                f"{target}() reads the wall clock; simulation time comes "
                "from repro.storage.clock.VirtualClock"
            )
        if target in self._env_reads:
            return (
                f"{target}() makes simulation behaviour host-dependent; "
                "take the value as a config parameter"
            )
        return None


class EncapsulationRule(LintRule):
    """R002: descriptor state bits are assigned only inside repro.bufferpool."""

    code = "R002"
    name = "encapsulation"
    description = (
        "no module outside repro.bufferpool assigns BufferDescriptor state "
        "fields (dirty, pin_count, usage, cold, prefetched); policies go "
        "through PageStateView"
    )
    suppression = "allow-descriptor-write"

    _fields = frozenset({"dirty", "pin_count", "usage", "cold", "prefetched"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if module.in_package("repro.bufferpool"):
            return
        for node in ast.walk(module.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                continue
            for target in self._flatten(targets):
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in self._fields
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        f"assignment to .{target.attr} outside "
                        "repro.bufferpool; descriptor state bits are owned "
                        "by the buffer manager (read them via PageStateView)",
                    )

    @staticmethod
    def _flatten(targets: list[ast.expr]) -> Iterator[ast.expr]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from EncapsulationRule._flatten(list(target.elts))
            else:
                yield target


class VirtualOrderPurityRule(LintRule):
    """R003: ``eviction_order`` bodies must not mutate policy state."""

    code = "R003"
    name = "virtual-order-purity"
    description = (
        "eviction_order() is the side-effect-free virtual order: no "
        "assignments to self state and no calls to mutating methods; "
        "escape hatch: `# lint: allow-mutation`"
    )
    suppression = "allow-mutation"

    #: Policy lifecycle methods that mutate state by contract.
    _mutating_self_methods = frozenset({
        "bind", "insert", "on_access", "remove", "select_victim",
    })
    #: Container mutators that, applied to a self-rooted chain, change state.
    _mutating_container_methods = frozenset({
        "add", "append", "appendleft", "clear", "difference_update",
        "discard", "extend", "insert", "intersection_update", "move_to_end",
        "pop", "popitem", "popleft", "remove", "reverse", "rotate",
        "setdefault", "sort", "symmetric_difference_update", "update",
    })
    #: heapq functions that mutate their first argument in place.
    _heap_mutators = frozenset({
        "heapq.heapify", "heapq.heappop", "heapq.heappush",
        "heapq.heappushpop", "heapq.heapreplace",
    })

    def check(self, module: SourceModule) -> Iterator[Violation]:
        imports = _ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "eviction_order"
            ):
                yield from self._check_body(module, node, imports)

    def _check_body(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: _ImportTable,
    ) -> Iterator[Violation]:
        for node in ast.walk(func):
            if node is func:
                continue
            message = self._mutation_message(node, imports)
            if message and not self.allowed(module, node):
                yield self.violation(
                    module, node, f"eviction_order() {message}"
                )

    def _mutation_message(
        self, node: ast.AST, imports: _ImportTable
    ) -> str | None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if _rooted_at_self(target):
                    return "assigns to policy state (must be side-effect-free)"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if _rooted_at_self(target):
                    return "deletes policy state (must be side-effect-free)"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in self._mutating_self_methods
                ):
                    return f"calls mutating method self.{func.attr}()"
                if (
                    func.attr in self._mutating_container_methods
                    and _rooted_at_self(func.value)
                ):
                    return (
                        f"calls .{func.attr}() on policy state "
                        "(copy to a local first)"
                    )
            target = imports.resolve(func)
            if (
                target in self._heap_mutators
                and node.args
                and _rooted_at_self(node.args[0])
            ):
                return (
                    f"passes policy state to {target}() which mutates it "
                    "in place (heapify a copy)"
                )
        return None


class PicklabilityRule(LintRule):
    """R004: no lambdas/closures/local classes into TraceSpec/GridJob."""

    code = "R004"
    name = "picklability"
    description = (
        "TraceSpec/GridJob cross process boundaries: lambdas, nested "
        "functions, and function-local classes passed into their "
        "construction fail to pickle at fan-out time"
    )
    suppression = "allow-unpicklable"

    _constructors = frozenset({"TraceSpec", "GridJob"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        yield from self._walk_scope(
            module, module.tree, local_defs=frozenset(), in_function=False
        )

    def _walk_scope(
        self,
        module: SourceModule,
        scope: ast.AST,
        local_defs: frozenset[str],
        in_function: bool,
    ) -> Iterator[Violation]:
        """Visit ``scope``, tracking names bound to unpicklable callables.

        ``local_defs`` carries the lambdas, function-local defs, and local
        classes visible at this point.  Module-level ``def``/``class``
        statements pickle by reference and never enter the set; a name
        assigned a lambda is tracked at any level (lambdas never pickle).
        """
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    local_defs = local_defs | {node.name}
                yield from self._walk_scope(
                    module, node, local_defs, in_function=True
                )
                continue
            if isinstance(node, ast.ClassDef):
                if in_function:
                    local_defs = local_defs | {node.name}
                yield from self._walk_scope(
                    module, node, local_defs, in_function
                )
                continue
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_defs = local_defs | {target.id}
            yield from self._check_calls(module, node, local_defs)
            yield from self._walk_scope(module, node, local_defs, in_function)

    def _check_calls(
        self,
        module: SourceModule,
        node: ast.AST,
        local_defs: frozenset[str],
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        name = self._constructor_name(node.func)
        if name is None:
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for inner in ast.walk(value):
                if isinstance(inner, ast.Lambda):
                    if not self.allowed(module, inner):
                        yield self.violation(
                            module, inner,
                            f"lambda flows into {name}(); workers cannot "
                            "pickle it — use a module-level function",
                        )
                elif (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in local_defs
                ):
                    if not self.allowed(module, inner):
                        yield self.violation(
                            module, inner,
                            f"function-local callable {inner.id!r} flows "
                            f"into {name}(); workers cannot pickle it — "
                            "move it to module level",
                        )

    def _constructor_name(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in self._constructors:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in self._constructors:
            return func.attr
        return None


class IORetryRule(LintRule):
    """R005: fault-catching handlers around device I/O must not swallow."""

    code = "R005"
    name = "io-fault-handling"
    description = (
        "an except clause that catches I/O-fault exceptions around device "
        "read/write calls must re-raise or route through the "
        "retry/degradation machinery; silently swallowing an injected "
        "fault loses work"
    )
    suppression = "allow-io-swallow"

    #: Device I/O entry points (SimulatedSSD / FaultyDevice surface).
    _io_methods = frozenset({
        "read_page", "read_batch", "write_page", "write_batch",
    })
    #: Exception names that catch (or subsume) IOFaultError.
    _fault_catchers = frozenset({
        "IOFaultError", "TornWriteError", "RetriesExhaustedError",
        "ReproError", "Exception", "BaseException", "OSError",
    })
    #: Identifier substrings that mark a handler as routing the fault into
    #: the retry/degradation machinery rather than dropping it.
    _handled_markers = ("retry", "retries", "degrad")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro"):
            return
        # A try/except *inside* the retry machinery is the machinery: the
        # loop around it is what retries, so its handlers legitimately
        # capture the fault and continue.  Exempt functions whose names
        # carry a handled-marker (e.g. _retry_write_back).
        exempt: set[ast.Try] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if any(marker in lowered for marker in self._handled_markers):
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Try):
                            exempt.add(inner)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try) or node in exempt:
                continue
            if not self._body_does_device_io(node.body):
                continue
            for handler in node.handlers:
                if not self._catches_faults(handler):
                    continue
                if self._handler_handles(handler):
                    continue
                if self.allowed(module, handler):
                    continue
                caught = self._caught_names(handler) or ["(bare except)"]
                yield self.violation(
                    module, handler,
                    f"except {', '.join(caught)} around device I/O neither "
                    "re-raises nor routes through retry/degradation; an "
                    "injected fault would be silently swallowed",
                )

    def _body_does_device_io(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._io_methods
                ):
                    return True
        return False

    def _caught_names(self, handler: ast.ExceptHandler) -> list[str]:
        kind = handler.type
        if kind is None:
            return []
        exprs = list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
        names = []
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.append(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.append(expr.attr)
        return names

    def _catches_faults(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # a bare except catches IOFaultError too
        return any(
            name in self._fault_catchers
            for name in self._caught_names(handler)
        )

    def _handler_handles(self, handler: ast.ExceptHandler) -> bool:
        """Re-raises, or mentions a retry/degradation identifier."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            identifier: str | None = None
            if isinstance(node, ast.Name):
                identifier = node.id
            elif isinstance(node, ast.Attribute):
                identifier = node.attr
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                identifier = node.name
            if identifier is not None:
                lowered = identifier.lower()
                if any(marker in lowered for marker in self._handled_markers):
                    return True
        return False


class ServingVirtualTimeRule(LintRule):
    """R006: ``repro.engine.serving`` must be entirely wall-clock-free."""

    code = "R006"
    name = "serving-virtual-time"
    description = (
        "repro.engine.serving deadlines, backoffs, and breaker cooldowns "
        "are virtual-clock microseconds; the package must not import or "
        "use the time/datetime modules at all (time.sleep included) — "
        "escape hatch: `# lint: allow-wall-clock`"
    )
    suppression = "allow-wall-clock"

    packages = ("repro.engine.serving",)
    _modules = frozenset({"time", "datetime"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package(*self.packages):
            return
        imports = _ImportTable(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._modules and not self.allowed(module, node):
                        yield self.violation(
                            module, node,
                            f"import {alias.name} in repro.engine.serving; "
                            "deadlines and cooldowns are virtual-clock "
                            "microseconds, never wall-clock values",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (
                    node.module
                    and not node.level
                    and node.module.split(".")[0] in self._modules
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        f"from {node.module} import in repro.engine.serving; "
                        "deadlines and cooldowns are virtual-clock "
                        "microseconds, never wall-clock values",
                    )
            elif isinstance(node, ast.Call):
                target = imports.resolve(node.func)
                if (
                    target is not None
                    and target.split(".")[0] in self._modules
                    and not self.allowed(module, node)
                ):
                    yield self.violation(
                        module, node,
                        f"{target}() call in repro.engine.serving; charge "
                        "waits to the virtual clock instead of sleeping or "
                        "reading host time",
                    )


class TranslationEncapsulationRule(LintRule):
    """R007: page→frame translation internals stay inside the table module."""

    code = "R007"
    name = "translation-encapsulation"
    description = (
        "the page→frame translation structures (_slots, _frame_of) belong "
        "to repro.bufferpool.table; reaching into another object's "
        "translation internals bakes in one backend's representation — go "
        "through table.lookup()/pages() or the manager's resident API; "
        "escape hatch: `# lint: allow-translation`"
    )
    suppression = "allow-translation"

    #: The home module, exempt by definition.
    home = "repro.bufferpool.table"
    _fields = frozenset({"_slots", "_frame_of"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro") or module.module == self.home:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._fields
                # `self._slots` is an object's own state (the table's
                # vector, the manager's declared alias); only reaching
                # into ANOTHER object's translation internals is flagged.
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
                and not self.allowed(module, node)
            ):
                yield self.violation(
                    module, node,
                    f"direct access to translation internal .{node.attr} "
                    "outside repro.bufferpool.table; use table.lookup()/"
                    "pages() or the manager's resident API (deliberate "
                    "hot-path aliases: `# lint: allow-translation`)",
                )


#: The rule set ``python -m repro lint`` runs.
DEFAULT_RULES: tuple[LintRule, ...] = (
    DeterminismRule(),
    EncapsulationRule(),
    VirtualOrderPurityRule(),
    PicklabilityRule(),
    IORetryRule(),
    ServingVirtualTimeRule(),
    TranslationEncapsulationRule(),
)
