"""Forward dataflow over the per-function CFG: reaching defs and taint.

Two analyses share one worklist engine:

* :class:`ReachingDefinitions` — which ``(name, lineno)`` definitions can
  reach each block; the classic warm-up analysis, exposed so rules (and
  the fixture battery) can ask "which assignment produced this value".
* :class:`TaintAnalysis` — a small forward taint engine.  A
  :class:`TaintSpec` names the *sources* (expressions that create taint),
  the *sanitizers* (calls that cleanse it), and how taint propagates
  through expressions; the engine computes, per block, the set of
  tainted local names together with the source node that tainted them.

Both are intraprocedural and flow-sensitive but path-insensitive: states
merge by union at joins, which over-approximates (a value tainted on
*either* branch is tainted after the join) — the safe direction for
"this must never flow there" rules.

Compound statements carry only their *header* expressions in the block
that holds them (an ``if`` contributes its test, a ``for`` its iterator
and target binding); their bodies live in separate blocks, so the
transfer functions here must only evaluate headers.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.analyze.cfg import CFG

__all__ = [
    "ReachingDefinitions",
    "TaintAnalysis",
    "TaintSpec",
    "assigned_names",
    "header_expressions",
]


def assigned_names(target: ast.expr) -> Iterator[str]:
    """Local names bound by an assignment target (tuples flattened).

    Attribute/subscript stores bind no local name and are yielded by the
    rules' own sink logic instead.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from assigned_names(target.value)


def header_expressions(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a compound statement evaluates *in its own block*."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [
        node for node in ast.iter_child_nodes(stmt)
        if isinstance(node, ast.expr)
    ]


class _Engine:
    """Round-robin-to-fixpoint forward solver over CFG blocks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    def solve(
        self,
        initial: Callable[[], dict],
        transfer: Callable[[int, dict], dict],
        merge: Callable[[dict, dict], dict],
    ) -> tuple[dict[int, dict], dict[int, dict]]:
        """Returns (in_state, out_state) per block index."""
        order = self.cfg.rpo()
        preds = self.cfg.predecessors()
        in_state: dict[int, dict] = {i: initial() for i in order}
        out_state: dict[int, dict] = {i: initial() for i in order}
        changed = True
        while changed:
            changed = False
            for index in order:
                merged = initial()
                for pred in preds[index]:
                    if pred in out_state:
                        merged = merge(merged, out_state[pred])
                in_state[index] = merged
                new_out = transfer(index, dict(merged))
                if new_out != out_state[index]:
                    out_state[index] = new_out
                    changed = True
        return in_state, out_state


class ReachingDefinitions:
    """Which ``(name, lineno)`` definitions reach each block.

    The state maps a local name to the frozenset of line numbers of
    assignments that may currently define it.  Function parameters are
    definitions at the ``def`` line.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.in_state, self.out_state = _Engine(cfg).solve(
            initial=self._initial, transfer=self._transfer, merge=self._merge
        )

    def _initial(self) -> dict[str, frozenset[int]]:
        return {}

    def _merge(
        self,
        left: dict[str, frozenset[int]],
        right: dict[str, frozenset[int]],
    ) -> dict[str, frozenset[int]]:
        merged = dict(left)
        for name, lines in right.items():
            merged[name] = merged.get(name, frozenset()) | lines
        return merged

    def _transfer(
        self, index: int, state: dict[str, frozenset[int]]
    ) -> dict[str, frozenset[int]]:
        if index == CFG.ENTRY:
            args = self.cfg.func.args
            for arg in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, [args.vararg, args.kwarg]),
            ]:
                state[arg.arg] = frozenset({self.cfg.func.lineno})
        for stmt in self.cfg.blocks[index].statements:
            for name, lineno in self._definitions(stmt):
                state[name] = frozenset({lineno})
        return state

    @staticmethod
    def _definitions(stmt: ast.stmt) -> Iterator[tuple[str, int]]:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name in assigned_names(target):
                    yield name, stmt.lineno
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                return
            for name in assigned_names(stmt.target):
                yield name, stmt.lineno
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in assigned_names(stmt.target):
                yield name, stmt.lineno
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in assigned_names(item.optional_vars):
                        yield name, stmt.lineno
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            yield stmt.name, stmt.lineno

    def reaching(self, block_index: int) -> dict[str, frozenset[int]]:
        """Definitions live on entry to the given block."""
        return self.in_state.get(block_index, {})


@dataclass
class TaintSpec:
    """What taints, what cleanses, and what a rule calls the taint.

    ``source`` inspects one expression node and returns a short reason
    string when that expression *itself* creates taint (independent of
    its operands), or None.  ``sanitizer`` inspects a Call node and
    returns True when the call cleanses its arguments (e.g. ``sorted``).
    """

    source: Callable[[ast.expr], str | None]
    sanitizer: Callable[[ast.Call], bool] = lambda call: False
    label: str = "taint"


class TaintAnalysis:
    """Forward may-taint of local names, per block.

    State: ``name -> (reason, source_lineno)`` for every tainted local.
    An expression is tainted when it is a source, or mentions a tainted
    name outside sanitizer calls.  Assignments propagate; reassignment
    from a clean expression cleanses the name.
    """

    def __init__(self, cfg: CFG, spec: TaintSpec) -> None:
        self.cfg = cfg
        self.spec = spec
        self.in_state, self.out_state = _Engine(cfg).solve(
            initial=dict, transfer=self._transfer, merge=self._merge
        )

    @staticmethod
    def _merge(left: dict, right: dict) -> dict:
        merged = dict(left)
        for name, origin in right.items():
            # Keep the earliest source line for a stable report.
            if name not in merged or origin[1] < merged[name][1]:
                merged[name] = origin
        return merged

    # -- expression-level taint ------------------------------------------

    def taint_of(
        self, expr: ast.expr, state: dict[str, tuple[str, int]]
    ) -> tuple[str, int] | None:
        """The taint origin of an expression under ``state``, if any."""
        for node in self._taint_relevant(expr):
            reason = self.spec.source(node)
            if reason is not None:
                return (reason, node.lineno)
            if isinstance(node, ast.Name) and node.id in state:
                return state[node.id]
        return None

    def _taint_relevant(self, expr: ast.expr) -> Iterator[ast.expr]:
        """Walk an expression, skipping the arguments of sanitizer calls."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if not isinstance(node, ast.expr):
                continue
            if isinstance(node, ast.Call) and self.spec.sanitizer(node):
                # The call result is clean; only its *function* expression
                # could still carry taint (e.g. method on tainted object).
                stack.append(node.func)
                continue
            yield node
            stack.extend(
                child for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            )

    # -- statement-level transfer ----------------------------------------

    def _transfer(
        self, index: int, state: dict[str, tuple[str, int]]
    ) -> dict[str, tuple[str, int]]:
        for stmt in self.cfg.blocks[index].statements:
            self._apply(stmt, state)
        return state

    def _apply(self, stmt: ast.stmt, state: dict[str, tuple[str, int]]) -> None:
        if isinstance(stmt, ast.Assign):
            origin = self.taint_of(stmt.value, state)
            for target in stmt.targets:
                for name in assigned_names(target):
                    if origin is not None:
                        state[name] = origin
                    else:
                        state.pop(name, None)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            origin = self.taint_of(stmt.value, state)
            for name in assigned_names(stmt.target):
                if origin is not None:
                    state[name] = origin
                else:
                    state.pop(name, None)
        elif isinstance(stmt, ast.AugAssign):
            origin = self.taint_of(stmt.value, state)
            if origin is not None:
                for name in assigned_names(stmt.target):
                    state[name] = origin
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origin = self.taint_of(stmt.iter, state)
            for name in assigned_names(stmt.target):
                if origin is not None:
                    state[name] = origin
                else:
                    state.pop(name, None)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is None:
                    continue
                origin = self.taint_of(item.context_expr, state)
                for name in assigned_names(item.optional_vars):
                    if origin is not None:
                        state[name] = origin
                    else:
                        state.pop(name, None)

    # -- conveniences for rules ------------------------------------------

    def state_before(self, block_index: int) -> dict[str, tuple[str, int]]:
        return self.in_state.get(block_index, {})

    def walk_statements(self) -> Iterator[tuple[ast.stmt, dict]]:
        """Every reachable statement with the taint state *at* it.

        The state is advanced statement-by-statement inside each block,
        so sinks later in a block see taint created earlier in it.
        """
        reachable = self.cfg.reachable()
        for block in self.cfg.blocks:
            if block.index not in reachable:
                continue
            state = dict(self.in_state.get(block.index, {}))
            for stmt in block.statements:
                yield stmt, dict(state)
                self._apply(stmt, state)
