"""Per-function control-flow graphs for the dataflow-based lint rules.

The AST answers "what does this statement do"; flow-sensitive rules need
"what can run before/after it".  This module lowers one function body to
basic blocks:

* :class:`BasicBlock` — a maximal straight-line statement run with
  successor edges;
* :func:`build_cfg` — the builder, handling ``if``/``while``/``for``
  (with ``else``), ``break``/``continue``/``return``/``raise``,
  ``try``/``except``/``finally``, and ``with``;
* optional *exceptional* edges (``with_exceptions=True``): any block
  whose statements contain a call or an explicit ``raise`` gains an edge
  to the innermost enclosing ``finally`` (else the function EXIT),
  modelling "anything the interpreter runs may raise".  That is the
  over-approximation rule R010 needs: a path that reaches EXIT without
  passing the counter flush is exactly a lost batch of metrics.

The graph is conservative by design — it may contain paths the program
cannot take (e.g. a ``finally`` block flows both onward and to EXIT) —
which is the safe direction for the *must-pass* queries the rules ask.

Nested function/class definitions are treated as opaque single
statements of the enclosing function; build a separate CFG per function
to analyze their bodies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "CFG", "build_cfg"]


@dataclass
class BasicBlock:
    """A straight-line run of statements with explicit successor edges."""

    index: int
    label: str
    statements: list[ast.stmt] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(s, "lineno", "?") for s in self.statements]
        return (
            f"<block {self.index} {self.label!r} lines={lines} "
            f"-> {sorted(self.successors)}>"
        )


class CFG:
    """The control-flow graph of one function."""

    ENTRY = 0
    EXIT = 1

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[BasicBlock] = []

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.ENTRY]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.EXIT]

    def predecessors(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {b.index: set() for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].add(block.index)
        return preds

    def reachable(self) -> set[int]:
        """Blocks reachable from ENTRY (dead blocks are kept but inert)."""
        seen: set[int] = set()
        work = [self.ENTRY]
        while work:
            index = work.pop()
            if index in seen:
                continue
            seen.add(index)
            work.extend(self.blocks[index].successors)
        return seen

    def block_of(self, stmt: ast.stmt) -> BasicBlock | None:
        for block in self.blocks:
            if any(s is stmt for s in block.statements):
                return block
        return None

    def rpo(self) -> list[int]:
        """Reverse postorder over reachable blocks (forward-analysis order)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(index: int) -> None:
            stack = [(index, iter(sorted(self.blocks[index].successors)))]
            seen.add(index)
            while stack:
                node, children = stack[-1]
                for child in children:
                    if child not in seen:
                        seen.add(child)
                        stack.append(
                            (child, iter(sorted(self.blocks[child].successors)))
                        )
                        break
                else:
                    order.append(node)
                    stack.pop()

        visit(self.ENTRY)
        return list(reversed(order))

    def always_passes_through(
        self, start: int, targets: set[int]
    ) -> bool:
        """Whether every path ``start`` -> EXIT crosses a target block.

        The must-pass query behind R010: can control flow leak from the
        accumulation site to the function exit without a flush?
        Implemented as reachability in the graph with the target blocks
        removed.
        """
        if start in targets:
            return True
        seen = {start}
        work = [start]
        while work:
            index = work.pop()
            if index == self.EXIT:
                return False
            for succ in self.blocks[index].successors:
                if succ not in targets and succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return True


class _LoopFrame:
    def __init__(self, head: int, after: int) -> None:
        self.head = head
        self.after = after


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether the statement can plausibly raise at runtime.

    Calls, subscripts, attribute loads on arbitrary objects, and explicit
    ``raise`` all can; a bare ``pass``/constant cannot.  Over-approximate
    (any of those anywhere in the statement counts), never under.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Subscript, ast.Attribute, ast.BinOp)):
            return True
    return False


class _Builder:
    def __init__(self, cfg: CFG, with_exceptions: bool) -> None:
        self.cfg = cfg
        self.with_exceptions = with_exceptions
        self.loops: list[_LoopFrame] = []
        #: Innermost exceptional landing pads, outermost first.  Each entry
        #: is the block index control transfers to when a statement raises:
        #: a handler-dispatch block or a ``finally`` entry.
        self.exc_targets: list[int] = []

    # -- plumbing ---------------------------------------------------------

    def new_block(self, label: str) -> BasicBlock:
        block = BasicBlock(index=len(self.cfg.blocks), label=label)
        self.cfg.blocks.append(block)
        return block

    def link(self, src: int, dst: int) -> None:
        self.cfg.blocks[src].successors.add(dst)

    def exceptional_target(self) -> int:
        return self.exc_targets[-1] if self.exc_targets else CFG.EXIT

    def add_statement(self, block: BasicBlock, stmt: ast.stmt) -> None:
        block.statements.append(stmt)
        if self.with_exceptions and _may_raise(stmt):
            self.link(block.index, self.exceptional_target())

    # -- statement lowering ----------------------------------------------

    def lower_body(self, body: list[ast.stmt], current: BasicBlock) -> BasicBlock | None:
        """Lower a statement sequence; return the live exit block or None
        when every path out of the sequence has already been routed
        (return/raise/break/continue)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a terminator: park it in a dead
                # block so rules can still see the statements if needed.
                current = self.new_block("dead")
            current = self.lower_statement(stmt, current)
        return current

    def lower_statement(
        self, stmt: ast.stmt, current: BasicBlock
    ) -> BasicBlock | None:
        if isinstance(stmt, ast.Return):
            self.add_statement(current, stmt)
            # A return inside try/finally runs the finally suite first.
            self.link(current.index, self._return_target())
            return None
        if isinstance(stmt, ast.Raise):
            self.add_statement(current, stmt)
            self.link(current.index, self.exceptional_target())
            return None
        if isinstance(stmt, ast.Break):
            self.add_statement(current, stmt)
            if self.loops:
                self.link(current.index, self.loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            self.add_statement(current, stmt)
            if self.loops:
                self.link(current.index, self.loops[-1].head)
            return None
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # The context-manager protocol calls may raise; the body is
            # then lowered inline.
            self.add_statement(current, stmt)
            return self.lower_body(stmt.body, current)
        # Plain statement (including nested def/class, treated opaquely).
        self.add_statement(current, stmt)
        return current

    def _return_target(self) -> int:
        """Where ``return`` transfers control: innermost finally, else EXIT."""
        return self.exc_targets[-1] if self.exc_targets else CFG.EXIT

    def _lower_if(self, stmt: ast.If, current: BasicBlock) -> BasicBlock | None:
        self.add_statement(current, stmt)  # the test lives with the branch
        then_block = self.new_block("then")
        self.link(current.index, then_block.index)
        then_exit = self.lower_body(stmt.body, then_block)
        if stmt.orelse:
            else_block = self.new_block("else")
            self.link(current.index, else_block.index)
            else_exit = self.lower_body(stmt.orelse, else_block)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        join = self.new_block("join")
        if then_exit is not None:
            self.link(then_exit.index, join.index)
        if else_exit is not None:
            self.link(else_exit.index, join.index)
        return join

    def _lower_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: BasicBlock
    ) -> BasicBlock:
        head = self.new_block("loop-head")
        self.link(current.index, head.index)
        self.add_statement(head, stmt)  # the test / iterator lives here
        after = self.new_block("loop-after")
        body = self.new_block("loop-body")
        self.link(head.index, body.index)
        self.loops.append(_LoopFrame(head=head.index, after=after.index))
        body_exit = self.lower_body(stmt.body, body)
        self.loops.pop()
        if body_exit is not None:
            self.link(body_exit.index, head.index)
        if stmt.orelse:
            else_block = self.new_block("loop-else")
            self.link(head.index, else_block.index)
            else_exit = self.lower_body(stmt.orelse, else_block)
            if else_exit is not None:
                self.link(else_exit.index, after.index)
        else:
            self.link(head.index, after.index)
        return after

    def _lower_try(self, stmt: ast.Try, current: BasicBlock) -> BasicBlock | None:
        after = self.new_block("try-after")

        fin_entry: BasicBlock | None = None
        fin_exit: BasicBlock | None = None
        if stmt.finalbody:
            fin_entry = self.new_block("finally")
            outer_exc = self.exceptional_target()
            fin_exit = self.lower_body(stmt.finalbody, fin_entry)
            if fin_exit is not None:
                # The finally suite flows onward on the normal path and
                # re-raises / returns on the exceptional one; model both.
                self.link(fin_exit.index, after.index)
                self.link(fin_exit.index, outer_exc)

        dispatch: BasicBlock | None = None
        if stmt.handlers:
            dispatch = self.new_block("except-dispatch")

        # Statements in the try body raise to the handler dispatch when
        # handlers exist, else straight into the finally.
        landing = dispatch or fin_entry
        if landing is not None:
            self.exc_targets.append(landing.index)
        body_block = self.new_block("try-body")
        self.link(current.index, body_block.index)
        body_exit = self.lower_body(stmt.body, body_block)
        if landing is not None:
            self.exc_targets.pop()

        if stmt.orelse and body_exit is not None:
            body_exit = self.lower_body(stmt.orelse, body_exit)

        normal_out = fin_entry.index if fin_entry is not None else after.index
        if body_exit is not None:
            self.link(body_exit.index, normal_out)

        if dispatch is not None:
            # An unmatched exception propagates past the handlers.
            unmatched = (
                fin_entry.index if fin_entry is not None
                else self.exceptional_target()
            )
            self.link(dispatch.index, unmatched)
            if fin_entry is not None:
                self.exc_targets.append(fin_entry.index)
            for handler in stmt.handlers:
                handler_block = self.new_block("except-body")
                self.link(dispatch.index, handler_block.index)
                handler_exit = self.lower_body(handler.body, handler_block)
                if handler_exit is not None:
                    self.link(handler_exit.index, normal_out)
            if fin_entry is not None:
                self.exc_targets.pop()

        return after


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    with_exceptions: bool = False,
) -> CFG:
    """Lower one function body to a CFG.

    ``with_exceptions=True`` adds the implicit may-raise edges described
    in the module docstring; leave it off for purely shape-based queries
    (reaching definitions over normal control flow).
    """
    cfg = CFG(func)
    builder = _Builder(cfg, with_exceptions)
    entry = builder.new_block("entry")
    assert entry.index == CFG.ENTRY
    exit_block = builder.new_block("exit")
    assert exit_block.index == CFG.EXIT
    first = builder.new_block("body")
    builder.link(entry.index, first.index)
    last = builder.lower_body(func.body, first)
    if last is not None:
        builder.link(last.index, CFG.EXIT)
    return cfg
