"""Static and dynamic correctness tooling for the reproduction.

PR 1 made the simulator's hot paths fast by introducing exactly the kind of
state the type system cannot check: lazily materialised virtual orders,
mirror sets shadowing descriptor bits, picklable job specs for the parallel
fan-out.  This package holds the tooling that keeps those invariants true
as the codebase grows:

:mod:`repro.analyze.lint`
    A custom AST lint framework with repo-specific rules (R001-R011),
    run as ``python -m repro lint``.  The rules encode the contracts prose
    comments used to carry: determinism of the simulation packages,
    descriptor encapsulation, virtual-order purity, picklability of grid
    jobs, and no-silent-swallowing of injected I/O faults.

:mod:`repro.analyze.graph` / :mod:`repro.analyze.cfg` /
:mod:`repro.analyze.dataflow`
    The whole-program side of the linter: the project import graph with
    the declared layer DAG (enforced as R008), and a per-function
    CFG + forward-dataflow framework (reaching definitions, taint)
    backing the flow-sensitive rules R009-R011.

:mod:`repro.analyze.sanitizer`
    A runtime invariant sanitizer for the bufferpool, enabled with
    ``REPRO_SANITIZE=1`` or ``BufferPoolManager(sanitize=True)``.  After
    every public bufferpool operation it cross-checks the buffer table,
    descriptors, mirror sets, free list, and replacement-policy state, and
    raises a structured :class:`~repro.errors.SanitizerError` on the first
    violation.
"""

from repro.analyze.cfg import CFG, BasicBlock, build_cfg
from repro.analyze.dataflow import ReachingDefinitions, TaintAnalysis, TaintSpec
from repro.analyze.graph import LAYER_DEPS, ImportEdge, ProjectGraph
from repro.analyze.lint import LintRule, SourceModule, Violation, run_lint
from repro.analyze.rules import DEFAULT_RULES, RULES_BY_CODE
from repro.analyze.sanitizer import InvariantSanitizer, attach, env_enabled

__all__ = [
    "CFG",
    "BasicBlock",
    "DEFAULT_RULES",
    "ImportEdge",
    "InvariantSanitizer",
    "LAYER_DEPS",
    "LintRule",
    "ProjectGraph",
    "RULES_BY_CODE",
    "ReachingDefinitions",
    "SourceModule",
    "TaintAnalysis",
    "TaintSpec",
    "Violation",
    "attach",
    "env_enabled",
    "build_cfg",
    "run_lint",
]
