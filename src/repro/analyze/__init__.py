"""Static and dynamic correctness tooling for the reproduction.

PR 1 made the simulator's hot paths fast by introducing exactly the kind of
state the type system cannot check: lazily materialised virtual orders,
mirror sets shadowing descriptor bits, picklable job specs for the parallel
fan-out.  This package holds the tooling that keeps those invariants true
as the codebase grows:

:mod:`repro.analyze.lint`
    A custom AST lint framework with repo-specific rules (R001-R005),
    run as ``python -m repro lint``.  The rules encode the contracts prose
    comments used to carry: determinism of the simulation packages,
    descriptor encapsulation, virtual-order purity, picklability of grid
    jobs, and no-silent-swallowing of injected I/O faults.

:mod:`repro.analyze.sanitizer`
    A runtime invariant sanitizer for the bufferpool, enabled with
    ``REPRO_SANITIZE=1`` or ``BufferPoolManager(sanitize=True)``.  After
    every public bufferpool operation it cross-checks the buffer table,
    descriptors, mirror sets, free list, and replacement-policy state, and
    raises a structured :class:`~repro.errors.SanitizerError` on the first
    violation.
"""

from repro.analyze.lint import LintRule, SourceModule, Violation, run_lint
from repro.analyze.rules import DEFAULT_RULES
from repro.analyze.sanitizer import InvariantSanitizer, attach, env_enabled

__all__ = [
    "DEFAULT_RULES",
    "InvariantSanitizer",
    "LintRule",
    "SourceModule",
    "Violation",
    "attach",
    "env_enabled",
    "run_lint",
]
